//! Integration tests for the shared diagnostics spine: every layer's error
//! type converts into `diagnostics::Diagnostic`, spans survive the trip, and
//! the renderer produces annotated snippets for each.

use comprdl::{CheckOptions, CompRdl, TypeChecker};
use diagnostics::{render, Diagnostic, DiagnosticBag, Severity, SourceMap};

#[test]
fn lex_error_converts_with_span() {
    let src = "x = \"unterminated";
    let err = ruby_syntax::lex_strict(src).expect_err("lexing fails");
    let d = Diagnostic::from(err);
    assert_eq!(d.code, "LEX0001");
    assert_eq!(d.severity, Severity::Error);
    assert!(!d.primary_span().is_dummy());
    let rendered = render(&SourceMap::new("t.rb", src), &d);
    assert!(rendered.contains("--> t.rb:1:"), "{rendered}");
    assert!(rendered.contains('^'), "{rendered}");
}

#[test]
fn parse_error_converts_with_span() {
    let src = "def m(\n  1\nend\n";
    let err = ruby_syntax::parse_program_strict(src).expect_err("parsing fails");
    let d = Diagnostic::from(err);
    assert_eq!(d.code, "PARSE0001");
    assert!(!d.primary_span().is_dummy());
    let rendered = render(&SourceMap::new("t.rb", src), &d);
    assert!(rendered.contains("error[PARSE0001]"), "{rendered}");
}

#[test]
fn sig_parse_error_converts_with_offset_span() {
    let err = rdl_types::parse_method_sig("(String -> %bool").expect_err("bad annotation");
    let d = Diagnostic::from(err.clone());
    assert_eq!(d.code, "SIG0001");
    assert_eq!(d.primary_span(), err.span());
    assert!(!d.primary_span().is_dummy());
}

#[test]
fn type_error_info_converts_with_method_context() {
    let mut env = CompRdl::new();
    comprdl::stdlib::register_all(&mut env);
    env.type_sig("Object", "answer", "() -> String", Some("app"));
    let src = "def answer()\n  42\nend\n";
    let program = ruby_syntax::parse_program_strict(src).unwrap();
    let result = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("app");
    let errors = result.errors();
    assert!(!errors.is_empty());
    let d = Diagnostic::from(errors[0].clone());
    assert_eq!(d.code, errors[0].category.code());
    assert!(d.labels[0].message.contains("Object#answer"), "{:?}", d.labels);
    assert_eq!(errors[0].line(), errors[0].span.line);
    let rendered = render(&SourceMap::new("answer.rb", src), &d);
    assert!(rendered.contains("--> answer.rb:1:1"), "{rendered}");
}

#[test]
fn tlc_error_converts_and_keeps_innermost_span() {
    let err = comprdl::TlcError::new("boom");
    assert_eq!(err.span, None);
    let span = diagnostics::Span::new(3, 7, 1);
    let err = err.or_span(span).or_span(diagnostics::Span::new(0, 20, 1));
    assert_eq!(err.span, Some(span), "first attached span must win");
    let d = Diagnostic::from(err);
    assert_eq!(d.code, "TLC0001");
    assert_eq!(d.primary_span(), span);
}

#[test]
fn tlc_eval_failure_carries_a_real_span() {
    // Evaluating type-level code that references an unbound variable fails,
    // and the error's span points into the type-level source.
    let env = CompRdl::new();
    let expr = ruby_syntax::parse_expr("missing_var.foo(1)").unwrap();
    let classes = rdl_types::ClassTable::with_builtins();
    let mut store = rdl_types::TypeStore::new();
    let mut ctx =
        comprdl::TlcCtx::new(&mut store, &classes, &env.helpers, std::collections::HashMap::new());
    let err = ctx.eval(&expr).expect_err("evaluation fails");
    assert!(err.span.is_some(), "eval should attach the failing expression's span: {err}");
}

#[test]
fn effect_violation_converts_with_span() {
    use rdl_types::{PurityEffect, TermEffect};
    let mut effects = comprdl::EffectEnv::new();
    effects.set("each", TermEffect::Terminates, PurityEffect::Pure);
    let checker = comprdl::TerminationChecker::new(effects);
    let expr = ruby_syntax::parse_expr("while true do x end").unwrap();
    let violations = checker.check_expr(&expr);
    assert!(!violations.is_empty());
    let d = Diagnostic::from(violations[0].clone());
    assert_eq!(d.code, "TERM0001");
    assert!(!d.primary_span().is_dummy());
}

#[test]
fn ruby_error_converts_with_kind_code() {
    let program = ruby_syntax::parse_program_strict("raise('boom')\n").unwrap();
    let interp = ruby_interp::Interpreter::new(program);
    let err = interp.eval_program().expect_err("raises");
    let d = Diagnostic::from(err.clone());
    assert_eq!(d.code, err.kind.code());
    assert!(!d.primary_span().is_dummy());
}

#[test]
fn blame_error_carries_explanatory_note() {
    use ruby_syntax::Span;
    let err = ruby_interp::RubyError::new(
        ruby_interp::ErrorKind::Blame,
        "expected Array, got String",
        Span::new(0, 4, 1),
    );
    let d = Diagnostic::from(err);
    assert_eq!(d.code, "RT0001");
    assert!(d.notes.iter().any(|n| n.contains("dynamic check")), "{:?}", d.notes);
}

#[test]
fn sql_errors_convert_with_spans_into_completed_query() {
    use sql_tc::{check_fragment, SqlSchema, SqlType};
    let mut schema = SqlSchema::new();
    schema.add_table("topics", &[("id", SqlType::Integer), ("title", SqlType::Text)]);
    let errors = check_fragment(&schema, &["topics".into()], "title = ?", &[SqlType::Integer]);
    assert_eq!(errors.len(), 1);
    let d = Diagnostic::from(errors[0].clone());
    assert_eq!(d.code, "SQL0002");
    assert!(!d.primary_span().is_dummy(), "comparison errors carry spans");

    let parse_err = sql_tc::parse_select("SELECT FROM").expect_err("bad sql");
    let d = Diagnostic::from(parse_err);
    assert_eq!(d.code, "SQL0001");
}

#[test]
fn corpus_rows_aggregate_diagnostics() {
    let rows = corpus::table2().expect("corpus evaluates");
    for row in &rows {
        assert_eq!(
            row.diagnostics.error_count(),
            row.errors(),
            "all checker diagnostics are errors for {}",
            row.program
        );
    }
    // The paper's corpus finds real bugs: at least one app has errors, and
    // its diagnostics carry checker codes.
    let buggy: Vec<_> = rows.iter().filter(|r| r.errors() > 0).collect();
    assert!(!buggy.is_empty());
    for row in buggy {
        for d in row.diagnostics.iter() {
            assert!(d.code.starts_with("TYP"), "{}: unexpected code {}", row.program, d.code);
        }
    }
    let per_app = corpus::corpus_diagnostics(&rows);
    let summary = corpus::format_diagnostic_summary(&per_app);
    assert!(summary.contains("Total"), "{summary}");
}

#[test]
fn diagnostic_bag_aggregates_across_layers() {
    let mut bag = DiagnosticBag::new();
    bag.push(Diagnostic::from(ruby_syntax::parse_program_strict("def\n").expect_err("bad")));
    bag.push(Diagnostic::from(comprdl::TlcError::new("tlc")));
    bag.push(Diagnostic::warning("TYP0002", "imprecise"));
    assert_eq!(bag.len(), 3);
    assert_eq!(bag.error_count(), 2);
    assert_eq!(bag.warning_count(), 1);
    let codes = bag.counts_by_code();
    assert_eq!(codes["PARSE0001"], 1);
    assert_eq!(codes["TLC0001"], 1);
}
