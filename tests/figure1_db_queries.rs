//! Integration test reproducing Figure 1: precise typing of ActiveRecord
//! queries through comp types, across the whole crate stack
//! (ruby-syntax → rdl-types → comprdl → db-types).

use comprdl::{CheckOptions, CompRdl, ErrorCategory, TypeChecker};
use db_types::{ColumnType, DbRegistry};
use std::sync::Arc;

fn figure1_env() -> CompRdl {
    let mut db = DbRegistry::new();
    db.add_table(
        "users",
        &[
            ("id", ColumnType::Integer),
            ("username", ColumnType::String),
            ("staged", ColumnType::Boolean),
        ],
    );
    db.add_table(
        "emails",
        &[
            ("id", ColumnType::Integer),
            ("email", ColumnType::String),
            ("user_id", ColumnType::Integer),
        ],
    );
    db.add_model("User", "users");
    db.add_model("Email", "emails");
    db.add_association("User", "emails", "emails");

    let mut env = CompRdl::new();
    comprdl::stdlib::register_all(&mut env);
    db_types::register_all(&mut env, Arc::new(db));
    env.type_sig_singleton("User", "reserved?", "(String) -> %bool", None);
    env.type_sig_singleton("User", "available?", "(String, String) -> %bool", Some("model"));
    env
}

const FIGURE1: &str = r#"
class User < ActiveRecord::Base
  def self.available?(name, email)
    return false if reserved?(name)
    return true if !User.exists?({ username: name })
    return User.joins(:emails).exists?({ staged: true, username: name, emails: { email: email } })
  end
end
"#;

#[test]
fn figure1_type_checks_without_casts_or_errors() {
    let env = figure1_env();
    let program = ruby_syntax::parse_program_strict(FIGURE1).unwrap();
    let result = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("model");
    assert_eq!(result.methods_checked(), 1);
    assert!(result.errors().is_empty(), "{:?}", result.errors());
    assert_eq!(result.total_casts(), 0);
    // All three query calls are dynamically checked (library methods).
    let query_checks = result
        .checks()
        .iter()
        .filter(|c| c.description.contains("exists?") || c.description.contains("joins"))
        .count();
    assert!(query_checks >= 3, "{:#?}", result.checks());
}

#[test]
fn wrong_column_value_types_are_rejected() {
    let env = figure1_env();
    let src = r#"
class User < ActiveRecord::Base
  def self.available?(name, email)
    User.exists?({ username: name, staged: 'yes' })
  end
end
"#;
    let program = ruby_syntax::parse_program_strict(src).unwrap();
    let result = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("model");
    assert_eq!(result.errors().len(), 1, "{:?}", result.errors());
    assert_eq!(result.errors()[0].category, ErrorCategory::ArgumentType);
}

#[test]
fn unknown_columns_are_rejected() {
    let env = figure1_env();
    let src = r#"
class User < ActiveRecord::Base
  def self.available?(name, email)
    User.exists?({ user_name: name })
  end
end
"#;
    let program = ruby_syntax::parse_program_strict(src).unwrap();
    let result = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("model");
    assert_eq!(result.errors().len(), 1, "{:?}", result.errors());
}

#[test]
fn joined_schema_covers_both_tables() {
    // After joins(:emails), querying both users and emails columns is fine,
    // but a bogus nested column is rejected.
    let env = figure1_env();
    let ok = r#"
class User < ActiveRecord::Base
  def self.available?(name, email)
    User.joins(:emails).exists?({ username: name, emails: { email: email, user_id: 1 } })
  end
end
"#;
    let program = ruby_syntax::parse_program_strict(ok).unwrap();
    let result = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("model");
    assert!(result.errors().is_empty(), "{:?}", result.errors());

    let bad = r#"
class User < ActiveRecord::Base
  def self.available?(name, email)
    User.joins(:emails).exists?({ username: name, emails: { address: email } })
  end
end
"#;
    let program = ruby_syntax::parse_program_strict(bad).unwrap();
    let result = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("model");
    assert_eq!(result.errors().len(), 1, "{:?}", result.errors());
}

#[test]
fn plain_rdl_mode_does_not_find_the_column_errors() {
    // Without comp types the argument type falls back to Hash<Symbol,
    // Object>, so the unknown-column bug slips through — the imprecision the
    // paper's comparison highlights.
    let env = figure1_env();
    let src = r#"
class User < ActiveRecord::Base
  def self.available?(name, email)
    User.exists?({ user_name: name })
  end
end
"#;
    let program = ruby_syntax::parse_program_strict(src).unwrap();
    let options = CheckOptions { use_comp_types: false, ..CheckOptions::default() };
    let result = TypeChecker::new(&env, &program, options).check_labeled("model");
    assert!(result.errors().is_empty(), "{:?}", result.errors());
}
