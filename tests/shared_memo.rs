//! Seeded property tests for the **shared** run-time check memo
//! ([`comprdl::SharedMemo`]): K threads — each with its own hook and its
//! own [`TypeStore`], all recording into one memo under one namespace —
//! replay a deterministic schedule of checked calls with interleaved
//! `mutate_store` migrations.  Every thread must produce the exact blame
//! sequence (and blame-`Diagnostic` set) of a sequential run: a single
//! stale replayed verdict anywhere would make some thread diverge.
//!
//! Sharing one namespace is sound because every hook of that namespace is a
//! deterministic replay of the same schedule: equal store generations imply
//! equal store states, and the **namespace's epoch** forces re-validation
//! whenever any hook of that namespace's store mutates in between.  The
//! flip side — one namespace's migrations must *not* flush another's warm
//! entries, since namespaces never share keys — is property-tested here
//! too, as are the lock-free read path's failure modes: evictions under
//! capacity pressure and torn reads under concurrent slot rewrites, neither
//! of which may ever change a verdict.

use comprdl::{
    memo_namespace, BlameDiagnostic, CheckConfig, CompRdlHook, ConsistencyCheck, HelperRegistry,
    InsertedCheck, SharedMemo,
};
use diagnostics::Diagnostic;
use rdl_types::{ClassTable, Type, TypeStore};
use ruby_interp::{DynamicCheckHook, Value};
use ruby_syntax::Span;
use std::sync::Arc;
use test_rng::Rng;

fn classes() -> ClassTable {
    let mut ct = ClassTable::with_builtins();
    ct.add_model_class("User", "ActiveRecord::Base");
    ct
}

/// A random value drawn from a small, nestable pool — enough variety that
/// some values inhabit each expected type and some do not.
fn random_value(rng: &mut Rng, depth: u32) -> Value {
    let max = if depth == 0 { 6 } else { 8 };
    match rng.below(max) {
        0 => Value::Nil,
        1 => Value::Bool(rng.below(2) == 0),
        2 => Value::Int(rng.below(5) as i64),
        3 => Value::str(["a", "b", "row"][rng.below(3) as usize]),
        4 => Value::Sym(["id", "name"][rng.below(2) as usize].into()),
        5 => Value::Class("User".into()),
        6 => {
            let n = rng.below(3) as usize;
            Value::array((0..n).map(|_| random_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.below(3) as usize;
            Value::hash(
                (0..n)
                    .map(|i| {
                        (Value::Sym(["id", "name", "k"][i].into()), random_value(rng, depth - 1))
                    })
                    .collect(),
            )
        }
    }
}

/// The named type-level slot the schedule's migrations flip.
const MODE_SLOT: &str = "schema.mode";

/// Two return-checked sites plus one consistency-checked site whose comp
/// type reads the [`MODE_SLOT`] named slot — so a migration deterministically
/// changes its verdict (type checking saw the pre-migration `Integer`).
fn workload() -> (Vec<InsertedCheck>, HelperRegistry) {
    let mut helpers = HelperRegistry::new();
    helpers.register_native("mode_type", |ctx, _args| {
        let ty = ctx.store.named(MODE_SLOT).cloned().unwrap_or_else(|| Type::nominal("Integer"));
        Ok(comprdl::TlcValue::Type(ty))
    });
    let site = |n: usize| Span::new(n * 10, n * 10 + 5, n as u32 + 1);
    let checks = vec![
        InsertedCheck {
            site: site(1),
            description: "Array#map".to_string(),
            expected_return: Type::array(Type::nominal("Integer")),
            consistency: None,
        },
        InsertedCheck {
            site: site(2),
            description: "Hash#[]".to_string(),
            expected_return: Type::union([Type::nominal("String"), Type::nominal("Symbol")]),
            consistency: None,
        },
        InsertedCheck {
            site: site(3),
            description: "Table#where".to_string(),
            expected_return: Type::Top,
            consistency: Some(ConsistencyCheck {
                ret_expr: ruby_syntax::parse_expr("mode_type()").unwrap(),
                binders: vec![Some("targ".to_string())],
                expected: Type::nominal("Integer"),
            }),
        },
    ];
    (checks, helpers)
}

fn config(memoize: bool) -> CheckConfig {
    CheckConfig { memoize, raise_blame: false, ..CheckConfig::default() }
}

fn hook_sharing(memo: &Arc<SharedMemo>, namespace: u64, memoize: bool) -> (CompRdlHook, Vec<Span>) {
    let (checks, helpers) = workload();
    let sites: Vec<Span> = checks.iter().map(|c| c.site).collect();
    let hook = CompRdlHook::with_shared_memo(
        checks,
        TypeStore::new(),
        classes(),
        helpers,
        config(memoize),
        memo.clone(),
        namespace,
    );
    (hook, sites)
}

/// Replays the deterministic schedule derived from `seed` against `hook`:
/// checked calls over the shared sites, with a migration (a `mutate_store`
/// that flips [`MODE_SLOT`] to the next of String / Float / Integer) at the
/// seed-determined step indices.  Returns the recorded blame sequence.
fn run_schedule(
    seed: u64,
    calls: usize,
    hook: &CompRdlHook,
    sites: &[Span],
) -> Vec<BlameDiagnostic> {
    run_schedule_with(seed, calls, hook, sites, true)
}

/// [`run_schedule`] with migrations toggleable: the namespace-isolation
/// tests need the *same* call schedule with the migration steps skipped
/// (the rng is still consumed at them, so the checked calls line up).
fn run_schedule_with(
    seed: u64,
    calls: usize,
    hook: &CompRdlHook,
    sites: &[Span],
    migrate: bool,
) -> Vec<BlameDiagnostic> {
    let mut rng = Rng::new(seed);
    let mut migrations = 0u64;
    for _ in 0..calls {
        if rng.below(25) == 0 {
            let ty = match migrations % 3 {
                0 => Type::nominal("String"),
                1 => Type::nominal("Float"),
                _ => Type::nominal("Integer"),
            };
            migrations += 1;
            if migrate {
                hook.mutate_store(|s| s.set_named(MODE_SLOT, ty));
            }
        }
        let site = sites[rng.below(sites.len() as u64) as usize];
        let recv = random_value(&mut rng, 1);
        let args = vec![random_value(&mut rng, 1)];
        let ret = random_value(&mut rng, 2);
        let _ = hook.before_call(site, &recv, &args);
        let _ = hook.after_call(site, &ret);
    }
    assert!(migrations >= 2, "the seeded schedule must include migration steps");
    hook.take_blames()
}

const CALLS: usize = 300;

/// The sequential baseline for `seed`, checked against the pay-at-every-hit
/// configuration for good measure.
fn baseline(seed: u64) -> Vec<BlameDiagnostic> {
    let memo = Arc::new(SharedMemo::new());
    let (memoized, sites) = hook_sharing(&memo, memo_namespace("baseline"), true);
    let blames = run_schedule(seed, CALLS, &memoized, &sites);
    let (unmemoized, sites) = hook_sharing(&Arc::new(SharedMemo::new()), 0, false);
    assert_eq!(
        blames,
        run_schedule(seed, CALLS, &unmemoized, &sites),
        "seed {seed:#x}: sequential memoized and unmemoized runs must agree"
    );
    assert!(!blames.is_empty(), "seed {seed:#x}: the workload must blame");
    blames
}

#[test]
fn k_threads_with_interleaved_migrations_never_observe_a_stale_verdict() {
    const K: usize = 4;
    for seed in [0x15EEDu64, 0x2C0DE, 0x3FACE] {
        let expected = baseline(seed);
        let memo = Arc::new(SharedMemo::new());
        let namespace = memo_namespace("prop-app");
        let results: Vec<Vec<BlameDiagnostic>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..K)
                .map(|_| {
                    let memo = &memo;
                    scope.spawn(move || {
                        let (hook, sites) = hook_sharing(memo, namespace, true);
                        run_schedule(seed, CALLS, &hook, &sites)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        for (i, blames) in results.iter().enumerate() {
            assert_eq!(
                blames, &expected,
                "seed {seed:#x}: thread {i}'s blame sequence diverged from the sequential run \
                 (a stale verdict was replayed)"
            );
            // The Diagnostic conversion must agree too — same codes, spans
            // and messages through the shared diagnostics spine.
            let diags: Vec<Diagnostic> = blames.iter().cloned().map(Diagnostic::from).collect();
            let expected_diags: Vec<Diagnostic> =
                expected.iter().cloned().map(Diagnostic::from).collect();
            assert_eq!(diags, expected_diags, "seed {seed:#x}: thread {i}");
        }
        let stats = memo.stats();
        assert!(stats.hits > 0, "seed {seed:#x}: concurrent replays must hit: {stats:?}");
        assert!(
            stats.invalidations > 0,
            "seed {seed:#x}: migrations must invalidate shared entries: {stats:?}"
        );
        assert_eq!(
            memo.shard_sizes().iter().sum::<usize>(),
            memo.len(),
            "shard occupancy must account for every entry"
        );
    }
}

#[test]
fn concurrent_namespaces_stay_isolated() {
    // Two *different* programs (different schedules, colliding spans) hammer
    // one memo concurrently under different namespaces: each must still
    // reproduce its own sequential baseline exactly.
    let seed_a = 0xA11CEu64;
    let seed_b = 0xB0B_0B0u64;
    let expected_a = baseline(seed_a);
    let expected_b = baseline(seed_b);
    let memo = Arc::new(SharedMemo::new());
    let (got_a, got_b) = std::thread::scope(|scope| {
        let memo_a = &memo;
        let a = scope.spawn(move || {
            let (hook, sites) = hook_sharing(memo_a, memo_namespace("app-a"), true);
            run_schedule(seed_a, CALLS, &hook, &sites)
        });
        let memo_b = &memo;
        let b = scope.spawn(move || {
            let (hook, sites) = hook_sharing(memo_b, memo_namespace("app-b"), true);
            run_schedule(seed_b, CALLS, &hook, &sites)
        });
        (a.join().expect("a"), b.join().expect("b"))
    });
    assert_eq!(got_a, expected_a, "namespace a leaked verdicts");
    assert_eq!(got_b, expected_b, "namespace b leaked verdicts");
}

#[test]
fn one_apps_migration_churn_leaves_other_namespaces_hit_rate_intact() {
    // Per-namespace epochs: app A churns through migrations while app B
    // concurrently replays a migration-free schedule on the same memo.
    // B's hit / miss / invalidation counters — not just its blame
    // sequence — must be *identical* to a solo run against a private memo:
    // A's epoch bumps must not cost B a single warm entry.
    let seed_a = 0xC0FFEEu64;
    let seed_b = 0x0DDB17u64;

    let solo_memo = Arc::new(SharedMemo::new());
    let (solo, sites) = hook_sharing(&solo_memo, memo_namespace("app-b"), true);
    let solo_blames = run_schedule_with(seed_b, CALLS, &solo, &sites, false);
    let solo_stats = solo.memo_stats();
    assert!(solo_stats.hits > 0, "the schedule must exercise warm replays: {solo_stats:?}");
    assert_eq!(solo_stats.invalidations, 0, "no migrations, no invalidations");

    let memo = Arc::new(SharedMemo::new());
    let (got_a, (got_b, b_stats)) = std::thread::scope(|scope| {
        let memo_a = &memo;
        let a = scope.spawn(move || {
            let (hook, sites) = hook_sharing(memo_a, memo_a.register_namespace("app-a"), true);
            run_schedule(seed_a, CALLS, &hook, &sites)
        });
        let memo_b = &memo;
        let b = scope.spawn(move || {
            let (hook, sites) = hook_sharing(memo_b, memo_b.register_namespace("app-b"), true);
            let blames = run_schedule_with(seed_b, CALLS, &hook, &sites, false);
            (blames, hook.memo_stats())
        });
        (a.join().expect("a"), b.join().expect("b"))
    });
    assert!(!got_a.is_empty(), "the migrating app must blame");
    assert_eq!(got_b, solo_blames, "app B's blame sequence must be unaffected by A's churn");
    assert_eq!(
        b_stats, solo_stats,
        "app A's migrations flushed app B's warm entries (per-namespace epoch isolation broken)"
    );
    assert!(
        memo.namespace_epoch(memo_namespace("app-a")) >= 2,
        "A's schedule must have bumped its own epoch"
    );
    assert_eq!(memo.namespace_epoch(memo_namespace("app-b")), 0, "B's epoch must stay untouched");
    // The per-namespace stat rows attribute the churn to A alone.
    let rows = memo.namespace_stats();
    let row_a = rows.iter().find(|r| r.label == "app-a").expect("registered row for app-a");
    let row_b = rows.iter().find(|r| r.label == "app-b").expect("registered row for app-b");
    assert!(row_a.stats.invalidations > 0, "{row_a:?}");
    assert_eq!(row_b.stats.invalidations, 0, "{row_b:?}");
}

#[test]
fn capacity_pressure_evicts_mid_read_without_changing_any_verdict() {
    // A deliberately tiny memo (one shard at the minimum slot count) under
    // K hammering threads: inserts constantly displace entries mid-read.
    // Eviction may cost hits, never correctness — every thread must still
    // produce the sequential baseline's exact blame sequence, and the
    // table must never exceed its capacity.
    const K: usize = 4;
    let seed = 0x5CA1Eu64;
    let expected = baseline(seed);
    let memo = Arc::new(SharedMemo::with_settings(1, 8, false));
    assert_eq!(memo.capacity(), 8);
    let namespace = memo_namespace("prop-app");
    let results: Vec<Vec<BlameDiagnostic>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..K)
            .map(|_| {
                let memo = &memo;
                scope.spawn(move || {
                    let (hook, sites) = hook_sharing(memo, namespace, true);
                    run_schedule(seed, CALLS, &hook, &sites)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    for (i, blames) in results.iter().enumerate() {
        assert_eq!(
            blames, &expected,
            "thread {i}: an eviction or torn read changed a verdict at capacity"
        );
    }
    assert!(memo.len() <= memo.capacity(), "capacity is a hard bound");
    let stats = memo.stats();
    assert!(stats.evictions > 0, "the tiny table must have evicted under pressure: {stats:?}");
}

#[test]
fn concurrent_rewrites_of_one_slot_never_tear_a_read() {
    // Torn-read regression: reader threads hammer a single (site, value)
    // key — one slot — while a migrator thread keeps bumping the
    // namespace epoch, so the slot is invalidated and rewritten under the
    // readers continuously.  A torn read that survived validation would
    // surface as a bogus blame (the value always inhabits the expected
    // type) or a panic; neither may happen.
    let memo = Arc::new(SharedMemo::with_settings(1, 8, false));
    let namespace = memo_namespace("torn");
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let memo = &memo;
            scope.spawn(move || {
                let (hook, sites) = hook_sharing(memo, namespace, true);
                // Inhabits site 1's `Array<Integer>` return type, so a
                // correct run never blames.  (Values hold `Rc`s, so each
                // thread builds its own — the fingerprints still agree.)
                let value = Value::array(vec![Value::Int(1), Value::Int(2)]);
                for i in 0..2_000usize {
                    // Each reader periodically migrates its own store too:
                    // every such bump stales the shared entry while the
                    // bumping thread still has calls left, so *some*
                    // thread's next lookup must count an invalidation —
                    // making the memo-level assertion below independent of
                    // how the OS schedules the dedicated migrator thread.
                    if i > 0 && i % 700 == 0 {
                        let ty = if (i / 700) % 2 == 0 {
                            Type::nominal("String")
                        } else {
                            Type::nominal("Float")
                        };
                        hook.mutate_store(|s| s.set_named(MODE_SLOT, ty));
                    }
                    assert!(hook.after_call(sites[0], &value).is_ok());
                }
                assert_eq!(hook.blame_count(), 0, "a torn read produced a bogus verdict");
            });
        }
        let memo = &memo;
        scope.spawn(move || {
            let (hook, _sites) = hook_sharing(memo, namespace, true);
            for i in 0..500 {
                let ty = if i % 2 == 0 { Type::nominal("String") } else { Type::nominal("Float") };
                hook.mutate_store(|s| s.set_named(MODE_SLOT, ty));
                std::hint::spin_loop();
            }
        });
    });
    assert!(memo.stats().invalidations > 0, "the churn must invalidate: {:?}", memo.stats());
}
