//! Seeded property tests for the run-time dynamic-check memo: driving
//! [`comprdl::CompRdlHook`] over randomized workloads, the memoized hook
//! must be observationally identical to the pay-at-every-hit baseline —
//! byte-identical blame sets, identical verdict sequences — and a store
//! mutation (generation bump) between calls must invalidate the memo
//! rather than replay a stale verdict.

use comprdl::{
    value_fingerprint, CheckConfig, CompRdlHook, ConsistencyCheck, HelperRegistry, InsertedCheck,
};
use rdl_types::{ClassTable, HashKey, Type, TypeStore};
use ruby_interp::{DynamicCheckHook, Value};
use ruby_syntax::Span;
use test_rng::Rng;

fn classes() -> ClassTable {
    let mut ct = ClassTable::with_builtins();
    ct.add_model_class("User", "ActiveRecord::Base");
    ct
}

/// A random value drawn from a small, nestable pool — enough variety that
/// some values inhabit each expected type and some do not.
fn random_value(rng: &mut Rng, depth: u32) -> Value {
    let max = if depth == 0 { 6 } else { 8 };
    match rng.below(max) {
        0 => Value::Nil,
        1 => Value::Bool(rng.below(2) == 0),
        2 => Value::Int(rng.below(5) as i64),
        3 => Value::str(["a", "b", "row"][rng.below(3) as usize]),
        4 => Value::Sym(["id", "name"][rng.below(2) as usize].into()),
        5 => Value::Class("User".into()),
        6 => {
            let n = rng.below(3) as usize;
            Value::array((0..n).map(|_| random_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.below(3) as usize;
            Value::hash(
                (0..n)
                    .map(|i| {
                        (Value::Sym(["id", "name", "k"][i].into()), random_value(rng, depth - 1))
                    })
                    .collect(),
            )
        }
    }
}

/// The checks used by the randomized workloads: three return-checked sites
/// (one per expected type) and one consistency-checked site whose comp type
/// answers `Integer` only for class receivers.
fn workload_checks() -> (Vec<InsertedCheck>, HelperRegistry) {
    let mut helpers = HelperRegistry::new();
    helpers.register_native("recv_kind", |ctx, _args| {
        let is_class = matches!(
            ctx.bindings.get("tself"),
            Some(comprdl::TlcValue::Type(Type::Singleton(rdl_types::SingVal::Class(_))))
        );
        let t = if is_class { Type::nominal("Integer") } else { Type::nominal("String") };
        Ok(comprdl::TlcValue::Type(t))
    });
    let ret_site = |file: u32, n: usize| Span::in_file(file, n * 10, n * 10 + 5, n as u32 + 1);
    let checks = vec![
        InsertedCheck {
            site: ret_site(0, 1),
            description: "Array#map".to_string(),
            expected_return: Type::array(Type::nominal("Integer")),
            consistency: None,
        },
        InsertedCheck {
            site: ret_site(0, 2),
            description: "Hash#[]".to_string(),
            expected_return: Type::union([Type::nominal("String"), Type::nominal("Symbol")]),
            consistency: None,
        },
        InsertedCheck {
            site: ret_site(1, 1), // same offsets as site 1 but in file 1
            description: "String#size".to_string(),
            expected_return: Type::nominal("Integer"),
            consistency: None,
        },
        InsertedCheck {
            site: ret_site(0, 3),
            description: "Table#where".to_string(),
            expected_return: Type::Top,
            consistency: Some(ConsistencyCheck {
                ret_expr: ruby_syntax::parse_expr("recv_kind()").unwrap(),
                // The binder makes every call intern its argument's type —
                // the store-growth path the memo must keep bounded.
                binders: vec![Some("targ".to_string())],
                expected: Type::nominal("Integer"),
            }),
        },
    ];
    (checks, helpers)
}

fn hook_with(memoize: bool) -> (CompRdlHook, Vec<Span>) {
    let (checks, helpers) = workload_checks();
    let sites: Vec<Span> = checks.iter().map(|c| c.site).collect();
    let hook = CompRdlHook::new(
        checks,
        TypeStore::new(),
        classes(),
        helpers,
        CheckConfig { memoize, raise_blame: false, ..CheckConfig::default() },
    );
    (hook, sites)
}

#[test]
fn memoized_blame_sets_are_byte_identical_on_randomized_workloads() {
    for seed in [0xA11CE, 0xB0B, 0xC0FFEE] {
        let (memoized, sites) = hook_with(true);
        let (unmemoized, _) = hook_with(false);
        let mut rng = Rng::new(seed);
        for _ in 0..400 {
            let site = sites[rng.below(sites.len() as u64) as usize];
            let recv = random_value(&mut rng, 1);
            let args = vec![random_value(&mut rng, 1)];
            let ret = random_value(&mut rng, 2);
            let before_m = memoized.before_call(site, &recv, &args);
            let before_u = unmemoized.before_call(site, &recv, &args);
            assert_eq!(before_m, before_u, "seed {seed:#x}: before_call verdicts diverged");
            let after_m = memoized.after_call(site, &ret);
            let after_u = unmemoized.after_call(site, &ret);
            assert_eq!(after_m, after_u, "seed {seed:#x}: after_call verdicts diverged");
        }
        assert_eq!(
            &*memoized.blames(),
            &*unmemoized.blames(),
            "seed {seed:#x}: blame sequences must be byte-identical"
        );
        assert!(!memoized.blames().is_empty(), "seed {seed:#x}: workload produced no blames");
        let stats = memoized.memo_stats();
        assert!(
            stats.hits > stats.misses,
            "seed {seed:#x}: a 400-call workload over a small value pool must mostly hit: \
             {stats:?}"
        );
        assert_eq!(unmemoized.memo_stats(), comprdl::CacheStats::default());
    }
}

#[test]
fn memoized_store_interning_is_not_amplified_by_repeated_hits() {
    let (memoized, sites) = hook_with(true);
    let (unmemoized, _) = hook_with(false);
    let consistency_site = sites[3];
    let recv = Value::Class("User".into());
    let args = vec![Value::hash(vec![(Value::Sym("id".into()), Value::Int(1))])];
    for _ in 0..200 {
        memoized.before_call(consistency_site, &recv, &args).unwrap();
        unmemoized.before_call(consistency_site, &recv, &args).unwrap();
    }
    assert!(
        memoized.store_size() < unmemoized.store_size() / 10,
        "200 identical hits must not keep interning: memoized {} vs unmemoized {}",
        memoized.store_size(),
        unmemoized.store_size()
    );
}

/// Builds a hook whose consistency check consults mutable store state: the
/// comp type evaluates to `Integer@width` where `width` is the number of
/// entries in a pre-seeded schema hash, and type checking saw width 1.
fn schema_hook(memoize: bool) -> (CompRdlHook, Type) {
    let mut store = TypeStore::new();
    let schema = store.new_finite_hash(vec![(HashKey::Sym("id".into()), Type::nominal("Integer"))]);
    let schema_for_helper = schema.clone();
    let mut helpers = HelperRegistry::new();
    helpers.register_native("schema_width", move |ctx, _args| {
        let Type::FiniteHash(id) = &schema_for_helper else { unreachable!() };
        let width = ctx.store.finite_hash(*id).entries.len() as i64;
        Ok(comprdl::TlcValue::Type(Type::int(width)))
    });
    let check = InsertedCheck {
        site: Span::new(1, 2, 1),
        description: "Table#insert".to_string(),
        expected_return: Type::Top,
        consistency: Some(ConsistencyCheck {
            ret_expr: ruby_syntax::parse_expr("schema_width()").unwrap(),
            binders: vec![],
            expected: Type::int(1),
        }),
    };
    let hook = CompRdlHook::new(
        vec![check],
        store,
        classes(),
        helpers,
        CheckConfig { memoize, raise_blame: false, ..CheckConfig::default() },
    );
    (hook, schema)
}

#[test]
fn schema_mutation_between_calls_invalidates_the_runtime_memo() {
    let site = Span::new(1, 2, 1);
    let recv = Value::Class("User".into());
    let (memoized, schema_m) = schema_hook(true);
    let (unmemoized, schema_u) = schema_hook(false);

    let mut rng = Rng::new(0xD15EA5E);
    let mut widened = false;
    for round in 0..120 {
        memoized.before_call(site, &recv, &[]).unwrap();
        unmemoized.before_call(site, &recv, &[]).unwrap();
        assert_eq!(
            &*memoized.blames(),
            &*unmemoized.blames(),
            "round {round}: memoized run replayed a stale verdict across a schema change"
        );
        // At a random point, "run a migration": widen the schema hash in
        // both hooks' stores.  Every call after it must blame (width 2 is
        // not compatible with the statically-computed width 1).
        if !widened && rng.below(10) == 0 {
            for (hook, schema) in [(&memoized, &schema_m), (&unmemoized, &schema_u)] {
                hook.mutate_store(|s| {
                    let Type::FiniteHash(id) = schema else { unreachable!() };
                    s.weak_update_hash(*id, HashKey::Sym("name".into()), Type::nominal("String"));
                });
            }
            widened = true;
        }
    }
    assert!(widened, "the seeded schedule must include the migration");
    assert!(!memoized.blames().is_empty(), "post-migration calls must blame");
    let stats = memoized.memo_stats();
    assert_eq!(stats.invalidations, 1, "exactly one generation bump: {stats:?}");
    assert!(stats.hits > 0, "pre- and post-migration repeats must still hit: {stats:?}");
}

#[test]
fn mutation_during_evaluation_is_not_replayed_as_valid() {
    // Comp-type helpers hold `&mut TypeStore`, so an evaluation can mutate
    // the store *while computing its own verdict*.  This helper answers
    // Integer while the marker const string is unpromoted — and promotes it
    // as a side effect — then answers String forever after.  The first
    // verdict is therefore computed against a store state that no longer
    // exists when the call returns; replaying it would diverge from the
    // pay-at-every-hit baseline, which blames from the second call on.
    let build = |memoize: bool| {
        let mut store = TypeStore::new();
        let marker = store.new_const_string("users");
        let marker_for_helper = marker.clone();
        let mut helpers = HelperRegistry::new();
        helpers.register_native("flaky_schema", move |ctx, _args| {
            let Type::ConstString(id) = &marker_for_helper else { unreachable!() };
            let t = if ctx.store.const_string_value(*id).is_some() {
                ctx.store.promote_const_string(*id);
                Type::nominal("Integer")
            } else {
                Type::nominal("String")
            };
            Ok(comprdl::TlcValue::Type(t))
        });
        let check = InsertedCheck {
            site: Span::new(1, 2, 1),
            description: "Table#migrate".to_string(),
            expected_return: Type::Top,
            consistency: Some(ConsistencyCheck {
                ret_expr: ruby_syntax::parse_expr("flaky_schema()").unwrap(),
                binders: vec![],
                expected: Type::nominal("Integer"),
            }),
        };
        CompRdlHook::new(
            vec![check],
            store,
            classes(),
            helpers,
            CheckConfig { memoize, raise_blame: false, ..CheckConfig::default() },
        )
    };
    let site = Span::new(1, 2, 1);
    let recv = Value::Class("User".into());
    let memoized = build(true);
    let unmemoized = build(false);
    for round in 0..4 {
        memoized.before_call(site, &recv, &[]).unwrap();
        unmemoized.before_call(site, &recv, &[]).unwrap();
        assert_eq!(
            &*memoized.blames(),
            &*unmemoized.blames(),
            "round {round}: a verdict whose evaluation mutated the store was replayed"
        );
    }
    assert_eq!(memoized.blames().len(), 3, "calls 2..4 must blame");
    // A verdict whose evaluation mutated the store must not be *recorded*
    // at all (not merely recorded-as-stale): a pre-bump stale entry could
    // match a sibling hook's earlier-sampled epoch stamp and replay,
    // skipping the evaluation's side effect.  Call 1 therefore records
    // nothing (miss, no entry), call 2 misses cleanly (no stale entry to
    // evict) and records the settled verdict, calls 3..4 hit it.
    let stats = memoized.memo_stats();
    assert_eq!(
        (stats.misses, stats.hits, stats.invalidations),
        (2, 2, 0),
        "a mutating evaluation must leave no memo entry behind: {stats:?}"
    );
}

#[test]
fn value_fingerprints_agree_with_interpreter_values_across_files() {
    // The file id participates in check identity end to end: two hooks
    // keyed at colliding offsets in different files never cross-fire, and
    // fingerprints are independent of the site entirely.
    let (hook, sites) = hook_with(true);
    let in_file_0 = sites[0];
    let in_file_1 = sites[2];
    assert_eq!((in_file_0.start, in_file_0.end), (in_file_1.start, in_file_1.end));
    assert_ne!(in_file_0, in_file_1);
    // `[1]` is an Array<Integer> (passes site 0's check) but not an Integer
    // (fails site 2's) — same offsets, different files, different verdicts.
    let v = Value::array(vec![Value::Int(1)]);
    assert!(hook.after_call(in_file_0, &v).is_ok());
    assert!(hook.after_call(in_file_1, &v).is_ok(), "raise_blame off records instead");
    assert_eq!(hook.blames().len(), 1, "only the file-1 site blames: {:?}", hook.blames());
    assert!(hook.blames()[0].message.contains("String#size"));
    assert_eq!(value_fingerprint(&v), value_fingerprint(&Value::array(vec![Value::Int(1)])));
}

#[test]
fn replayed_blames_interleave_with_fresh_ones_in_execution_order() {
    // Satellite regression: with `raise_blame` off, memoized replays must
    // not just record the same blame *set* as the pay-at-every-hit baseline
    // — the *sequence* must be byte-identical, even when replayed blames
    // interleave with fresh evaluations and with passing calls.  (A memo
    // that recorded blames at insert time instead of delivery time, or that
    // batched replays, would pass a set comparison and fail this one.)
    let (memoized, sites) = hook_with(true);
    let (unmemoized, _) = hook_with(false);
    let int_site = sites[2]; // String#size: expects Integer
    let arr_site = sites[0]; // Array#map: expects Array<Integer>

    let bad_a = Value::str("a"); // fails both sites
    let bad_b = Value::str("b"); // fails both sites, different message
    let good_int = Value::Int(3);
    let good_arr = Value::array(vec![Value::Int(1)]);
    // fresh A, fresh B, replay A, pass, fresh (arr) A, replay B, replay
    // (arr) A, pass, replay A — a deliberate shuffle of fresh/replayed
    // failures across two sites.
    let schedule = [
        (int_site, &bad_a),
        (int_site, &bad_b),
        (int_site, &bad_a),
        (int_site, &good_int),
        (arr_site, &bad_a),
        (int_site, &bad_b),
        (arr_site, &bad_a),
        (arr_site, &good_arr),
        (int_site, &bad_a),
    ];
    for (site, value) in schedule {
        assert!(memoized.after_call(site, value).is_ok(), "raise_blame off");
        assert!(unmemoized.after_call(site, value).is_ok(), "raise_blame off");
    }
    let memoized_blames = memoized.take_blames();
    assert_eq!(
        memoized_blames,
        unmemoized.take_blames(),
        "memoized blame sequence must equal the baseline's execution order, not just its set"
    );
    assert_eq!(memoized_blames.len(), 7);
    // Spot-check the interleaving shape: messages alternate between the two
    // sites exactly as scheduled.
    let descs: Vec<&str> = memoized_blames
        .iter()
        .map(|b| if b.message.starts_with("String#size") { "int" } else { "arr" })
        .collect();
    assert_eq!(descs, ["int", "int", "int", "arr", "int", "arr", "int"]);
    assert!(memoized.memo_stats().hits >= 4, "{:?}", memoized.memo_stats());
}
