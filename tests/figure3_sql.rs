//! Integration test reproducing Figure 3: raw SQL strings inside `where` are
//! type checked against the schema, and the injected bug is reported.

use comprdl::{CheckOptions, CompRdl, ErrorCategory, TypeChecker};
use db_types::{ColumnType, DbRegistry};
use std::sync::Arc;

fn figure3_env() -> CompRdl {
    let mut db = DbRegistry::new();
    db.add_table("posts", &[("id", ColumnType::Integer), ("topic_id", ColumnType::Integer)]);
    db.add_table("topics", &[("id", ColumnType::Integer), ("title", ColumnType::String)]);
    db.add_table(
        "topic_allowed_groups",
        &[("group_id", ColumnType::Integer), ("topic_id", ColumnType::Integer)],
    );
    db.add_model("Post", "posts");
    db.add_model("Topic", "topics");
    db.add_association("Post", "topic", "topics");
    let mut env = CompRdl::new();
    comprdl::stdlib::register_all(&mut env);
    db_types::register_all(&mut env, Arc::new(db));
    env.type_sig_singleton("Post", "allowed", "(Integer) -> Object", Some("model"));
    env
}

fn check(env: &CompRdl, src: &str) -> Vec<comprdl::TypeErrorInfo> {
    let program = ruby_syntax::parse_program_strict(src).unwrap();
    TypeChecker::new(env, &program, CheckOptions::default())
        .check_labeled("model")
        .errors()
        .into_iter()
        .cloned()
        .collect()
}

#[test]
fn the_injected_bug_is_reported_as_a_sql_error() {
    let env = figure3_env();
    let errors = check(
        &env,
        r#"
class Post < ActiveRecord::Base
  def self.allowed(group_id)
    Post.includes(:topic)
      .where('topics.title IN (SELECT topic_id FROM topic_allowed_groups WHERE group_id = ?)', group_id)
  end
end
"#,
    );
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert_eq!(errors[0].category, ErrorCategory::Sql);
    assert!(errors[0].message.contains("topics.title"));
}

#[test]
fn the_corrected_query_type_checks() {
    let env = figure3_env();
    let errors = check(
        &env,
        r#"
class Post < ActiveRecord::Base
  def self.allowed(group_id)
    Post.includes(:topic)
      .where('topics.id IN (SELECT topic_id FROM topic_allowed_groups WHERE group_id = ?)', group_id)
  end
end
"#,
    );
    assert!(errors.is_empty(), "{errors:?}");
}

#[test]
fn unknown_columns_in_sql_are_reported() {
    let env = figure3_env();
    let errors = check(
        &env,
        r#"
class Post < ActiveRecord::Base
  def self.allowed(group_id)
    Post.where('missing_column = ?', group_id)
  end
end
"#,
    );
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert!(errors[0].message.contains("missing_column"));
}

#[test]
fn non_sql_hash_conditions_still_check_structurally() {
    let env = figure3_env();
    let errors = check(
        &env,
        r#"
class Post < ActiveRecord::Base
  def self.allowed(group_id)
    Post.where({ topic_id: 'not an integer' })
  end
end
"#,
    );
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert_eq!(errors[0].category, ErrorCategory::ArgumentType);
}
