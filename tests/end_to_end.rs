//! End-to-end integration test over the whole corpus: every subject app
//! parses, type checks with exactly the expected (seeded) errors, needs
//! fewer casts with comp types than without, and its test suite runs under
//! the inserted dynamic checks, with runtime blame limited to the Sequel
//! app's deliberate mid-suite migration.

#[test]
fn full_corpus_evaluation_matches_the_paper_shape() {
    let rows = corpus::table2().expect("harness runs");
    // The paper's six apps plus the call-site-dense Redmine analogue and
    // the migrating Sequel subject.
    assert_eq!(rows.len(), 8);

    // Three confirmed errors across the corpus: one in Code.org, two in
    // Journey (paper §5.3).
    let errors: usize = rows.iter().map(|r| r.errors()).sum();
    assert_eq!(errors, 3);

    // Comp types need substantially fewer casts than plain RDL.
    let casts: usize = rows.iter().map(|r| r.casts).sum();
    let casts_rdl: usize = rows.iter().map(|r| r.casts_rdl).sum();
    assert!(casts_rdl > casts);

    // Every app ran its suite with checks enabled; only the migrating
    // Sequel app records runtime blame (as span-carrying diagnostics).
    for row in &rows {
        assert!(row.dynamic_checks_run > 0, "{}", row.program);
        if row.program == "Sequel" {
            assert_eq!(row.runtime_blames.len(), 3, "post-migration consistency blames");
        } else {
            assert!(row.runtime_blames.is_empty(), "{} must not blame", row.program);
        }
    }
}

#[test]
fn table1_totals_are_in_the_papers_ballpark() {
    let (rows, helpers) = corpus::table1();
    let total: usize = rows.iter().map(|r| r.comp_type_definitions).sum();
    // The paper reports 586 comp type definitions and 83 helper methods; we
    // assert the same order of magnitude rather than exact numbers.
    assert!((450..=800).contains(&total), "total annotations {total}");
    assert!((20..=150).contains(&helpers), "helpers {helpers}");
}

#[test]
fn disabling_consistency_checks_still_catches_return_violations() {
    use comprdl::{CheckConfig, CheckOptions, CompRdl, TypeChecker};
    use ruby_interp::Interpreter;

    let mut env = CompRdl::new();
    comprdl::stdlib::register_all(&mut env);
    env.type_sig("Object", "data", "() -> { count: Integer }", None);
    env.type_sig("Object", "reads", "() -> Integer", Some("app"));
    let src = "def data()\n  { count: 41 }\nend\ndef reads()\n  data()[:count] + 1\nend\nassert_equal(42, reads())\n";
    let program = ruby_syntax::parse_program_strict(src).unwrap();
    let result = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("app");
    assert!(result.errors().is_empty());

    for config in [
        CheckConfig { return_checks: true, consistency_checks: true, ..CheckConfig::default() },
        CheckConfig { return_checks: true, consistency_checks: false, ..CheckConfig::default() },
        CheckConfig { return_checks: false, consistency_checks: false, ..CheckConfig::default() },
    ] {
        let hook = comprdl::make_hook(
            result.checks(),
            result.store.clone(),
            env.classes.clone(),
            env.helpers.clone(),
            config,
        );
        let mut interp = Interpreter::new(program.clone());
        interp.set_hook(hook);
        interp.eval_program().expect("suite passes under every check configuration");
    }
}
