//! Integration test for §4 / Figure 6: the termination and purity checking
//! of type-level code, exercised through the public checker API.

use comprdl::{CheckOptions, CompRdl, ErrorCategory, TypeChecker};
use rdl_types::{PurityEffect, TermEffect};

#[test]
fn figure6_scenarios() {
    let checker = comprdl::TerminationChecker::with_builtins();
    // Line 14: a pure block over an iterator is allowed.
    let ok = ruby_syntax::parse_expr("array.map { |val| val + 1 }").unwrap();
    assert!(checker.check_expr(&ok).is_empty());
    // Line 15: an impure block (push mutates the receiver) is rejected.
    let bad = ruby_syntax::parse_expr("array.map { |val| array.push(4) }").unwrap();
    assert!(!checker.check_expr(&bad).is_empty());
    // Line 11: loops are rejected.
    let looping = ruby_syntax::parse_expr("while x\n 1\nend").unwrap();
    assert!(!checker.check_expr(&looping).is_empty());
}

#[test]
fn comp_types_calling_nonterminating_helpers_are_rejected_during_checking() {
    let mut env = CompRdl::new();
    comprdl::stdlib::register_all(&mut env);
    // A library method whose comp type calls a helper annotated `:-`
    // (may diverge): the checker reports a termination error at the call.
    env.type_sig_with_effects(
        "Object",
        "spin",
        "() -> Object",
        TermEffect::MayDiverge,
        PurityEffect::Impure,
    );
    env.type_sig("Object", "risky", "(t<:Object) -> «spin()»", None);
    env.type_sig("Object", "caller_method", "() -> Object", Some("app"));

    let program =
        ruby_syntax::parse_program_strict("def caller_method()\n  risky(1)\nend\n").unwrap();
    let result = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("app");
    assert!(
        result.errors().iter().any(|e| e.category == ErrorCategory::Termination),
        "{:?}",
        result.errors()
    );
}

#[test]
fn well_behaved_comp_types_pass_the_termination_check() {
    let mut env = CompRdl::new();
    comprdl::stdlib::register_all(&mut env);
    env.type_sig("Object", "pick_first", "(t<:Array) -> «first_elem(t)»", None);
    env.type_sig("Object", "caller_method", "() -> Integer", Some("app"));
    let program =
        ruby_syntax::parse_program_strict("def caller_method()\n  pick_first([1, 2, 3])\nend\n")
            .unwrap();
    let result = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("app");
    assert!(result.errors().is_empty(), "{:?}", result.errors());
}
