//! Seeded property tests for the comp-type evaluation cache and the
//! parallel checker: across the full corpus, under randomized option
//! combinations, app orders and thread counts, the cached / parallel
//! checker must produce **byte-identical** diagnostic bags to the
//! uncached / sequential baseline.

use comprdl::{CheckOptions, TypeChecker};
use diagnostics::DiagnosticBag;
use test_rng::Rng;

/// Canonical byte rendering of a check result's diagnostics (code, message
/// and exact span of every error, in canonical order) plus its cast
/// accounting — everything a Table 2 row derives from the checker.
fn fingerprint(result: &comprdl::ProgramCheckResult) -> String {
    let mut bag: DiagnosticBag =
        result.errors().into_iter().cloned().map(diagnostics::Diagnostic::from).collect();
    bag.sort_by_span_then_code();
    let mut out = String::new();
    for d in bag.iter() {
        let s = d.primary_span();
        out.push_str(&format!("{}|{}|{}..{}@{}\n", d.code, d.message, s.start, s.end, s.line));
    }
    out.push_str(&format!(
        "casts={}/{} methods={} checks={}\n",
        result.explicit_casts(),
        result.implicit_casts(),
        result.methods_checked(),
        result.checks().len()
    ));
    out
}

fn shuffled(rng: &mut Rng, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.below((i + 1) as u64) as usize;
        order.swap(i, j);
    }
    order
}

#[test]
fn cached_checking_is_byte_identical_to_uncached_across_the_corpus() {
    let apps = corpus::apps::all();
    let mut rng = Rng::new(0xCAFE01);
    for round in 0..4 {
        let options = CheckOptions {
            count_implicit_casts: rng.below(2) == 0,
            check_termination: rng.below(2) == 0,
            ..CheckOptions::default()
        };
        for &i in &shuffled(&mut rng, apps.len()) {
            let app = &apps[i];
            let env = app.build_env();
            let program =
                ruby_syntax::parse_program_strict(&app.full_source()).expect("corpus app parses");
            let cached = TypeChecker::new(&env, &program, options).check_labeled("app");
            let uncached =
                TypeChecker::new(&env, &program, CheckOptions { use_eval_cache: false, ..options })
                    .check_labeled("app");
            assert_eq!(
                fingerprint(&cached),
                fingerprint(&uncached),
                "round {round}: cached and uncached diagnostics diverged for {} \
                 (options {options:?})",
                app.name
            );
        }
    }
}

#[test]
fn parallel_checking_is_byte_identical_to_sequential_across_the_corpus() {
    let apps = corpus::apps::all();
    let mut rng = Rng::new(0xBEEF02);
    for round in 0..3 {
        for &i in &shuffled(&mut rng, apps.len()) {
            let app = &apps[i];
            let threads = 2 + rng.below(5) as usize; // 2..=6 workers
            let env = app.build_env();
            let program =
                ruby_syntax::parse_program_strict(&app.full_source()).expect("corpus app parses");
            let sequential =
                TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("app");
            let parallel = TypeChecker::check_labeled_parallel(
                &env,
                &program,
                CheckOptions::default(),
                "app",
                threads,
            );
            assert_eq!(
                fingerprint(&sequential),
                fingerprint(&parallel),
                "round {round}: parallel ({threads} workers) diverged for {}",
                app.name
            );
        }
    }
}

#[test]
fn evaluate_app_rows_render_identically_for_any_thread_count() {
    // The harness-level guarantee behind `table2_parallel`: a Table 2 row's
    // deterministic columns and sorted diagnostics do not depend on how
    // many threads checked the app.
    let apps = corpus::apps::all();
    // Journey: the app with two seeded bugs.
    let app = apps.iter().find(|a| a.name == "Journey").expect("journey app");
    let base = corpus::evaluate_app(app).expect("evaluate");
    for threads in [2, 4, 8] {
        let row = corpus::evaluate_app_with(app, threads).expect("evaluate");
        assert_eq!(
            corpus::stable_report(std::slice::from_ref(&base)),
            corpus::stable_report(std::slice::from_ref(&row)),
            "thread count {threads} changed the rendered row"
        );
    }
}
