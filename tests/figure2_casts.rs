//! Integration test reproducing Figure 2: comp types for Hash/Array remove
//! the need for type casts, and the rewritten program runs correctly under
//! the inserted dynamic checks.

use comprdl::{CheckConfig, CheckOptions, CompRdl, TypeChecker};
use ruby_interp::Interpreter;

fn wiki_env() -> CompRdl {
    let mut env = CompRdl::new();
    comprdl::stdlib::register_all(&mut env);
    env.add_class("WikiPage", "Object");
    env.type_sig("WikiPage", "page", "() -> { info: Array<String>, title: String }", None);
    env.type_sig("WikiPage", "image_url", "() -> String", Some("app"));
    env
}

const SOURCE: &str = r#"
class WikiPage
  def page()
    { info: ['https://img/Ruby.png', 'en'], title: 'Ruby' }
  end

  def image_url()
    page()[:info].first
  end
end

w = WikiPage.new()
assert_equal('https://img/Ruby.png', w.image_url())
"#;

#[test]
fn comp_types_need_no_cast_but_plain_rdl_does() {
    let env = wiki_env();
    let program = ruby_syntax::parse_program_strict(SOURCE).unwrap();

    let comp = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("app");
    assert!(comp.errors().is_empty(), "{:?}", comp.errors());
    assert_eq!(comp.total_casts(), 0);

    let rdl = TypeChecker::new(
        &env,
        &program,
        CheckOptions { use_comp_types: false, ..CheckOptions::default() },
    )
    .check_labeled("app");
    assert!(rdl.total_casts() >= 1, "plain RDL should need a cast: {rdl:?}");
}

#[test]
fn rewritten_program_runs_and_checks_pass() {
    let env = wiki_env();
    let program = ruby_syntax::parse_program_strict(SOURCE).unwrap();
    let result = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("app");
    let hook = comprdl::make_hook(
        result.checks(),
        result.store.clone(),
        env.classes.clone(),
        env.helpers.clone(),
        CheckConfig::default(),
    );
    let mut interp = Interpreter::new(program);
    interp.set_hook(hook);
    interp.eval_program().expect("no blame");
    assert!(interp.checks_performed() >= 2, "Hash#[] and Array#first should both be checked");
}

#[test]
fn a_library_method_that_lies_is_blamed_at_runtime() {
    // The fixture claims page() returns { info: Array<String> } but the
    // "library" (here: a monkey-patched fixture) actually returns a String
    // under :info — the dynamic check catches the mismatch at the Hash#[]
    // call site, mirroring §2.4's soundness argument.
    let env = wiki_env();
    let lying = r#"
class WikiPage
  def page()
    { info: 'not-an-array', title: 'Ruby' }
  end

  def image_url()
    page()[:info].first
  end
end

w = WikiPage.new()
w.image_url()
"#;
    let annotated_view = r#"
class WikiPage
  def page()
    { info: ['https://img/Ruby.png'], title: 'Ruby' }
  end

  def image_url()
    page()[:info].first
  end
end
"#;
    // Type check against the honest view to compute the checks...
    let honest_program = ruby_syntax::parse_program_strict(annotated_view).unwrap();
    let result =
        TypeChecker::new(&env, &honest_program, CheckOptions::default()).check_labeled("app");
    assert!(result.errors().is_empty());
    // ...then run the lying implementation under those checks: the return
    // value check for Hash#[] (expected Array<String>) must raise blame.
    let lying_program = ruby_syntax::parse_program_strict(lying).unwrap();
    let hook = comprdl::make_hook(
        result.checks(),
        result.store.clone(),
        env.classes.clone(),
        env.helpers.clone(),
        CheckConfig::default(),
    );
    let mut interp = Interpreter::new(lying_program);
    interp.set_hook(hook);
    let err = interp.eval_program();
    // Either the blame fires at the checked call site (same spans) or the
    // call fails with NoMethod on `first`; the former is what we expect when
    // spans line up, which they do because only the hash literal differs.
    assert!(err.is_err(), "expected the run to fail");
}
