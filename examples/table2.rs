//! Reproduces the paper's evaluation tables using the threaded corpus
//! harness: Table 1 (library comp-type definitions), Table 2 (per-app type
//! checking results, one scoped thread per app with per-method work
//! stealing inside each), and the per-app diagnostic aggregation.
//!
//! ```sh
//! cargo run --example table2
//! ```

fn main() {
    let (rows, helpers) = corpus::table1();
    println!("{}", corpus::format_table1(&rows, helpers));

    let rows = corpus::table2_parallel().unwrap_or_else(|e| panic!("harness failed: {e}"));
    println!("{}", corpus::format_table2(&rows));
    println!("{}", corpus::format_diagnostic_summary(&corpus::corpus_diagnostics(&rows)));

    // The deterministic view: every column above except the wall-clock
    // timings, byte-identical between sequential and parallel runs.
    println!("Deterministic summary (timing-free):\n{}", corpus::stable_report(&rows));
}
