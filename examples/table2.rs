//! Reproduces the paper's evaluation tables using the threaded corpus
//! harness: Table 1 (library comp-type definitions), Table 2 (per-app type
//! checking results, one scoped thread per app with per-method work
//! stealing inside each, all dynamic-check hooks sharing one concurrent
//! runtime memo), the Table 2 dynamic-check **overhead** comparison (no
//! hook / unmemoized hook / memoized hook cold and warm, with its
//! blame-sequence correctness gates), and the per-app diagnostic
//! aggregation — including runtime blame rendered as annotated snippets.
//!
//! ```sh
//! cargo run --example table2
//! ```

use std::sync::Arc;

fn main() {
    let (rows, helpers) = corpus::table1();
    println!("{}", corpus::format_table1(&rows, helpers));

    // One shared memo serves every app thread; its stats show the
    // cross-thread hit rate, per-shard occupancy against the bounded
    // capacity, and one row per app — whose epoch column shows the Sequel
    // app's mid-suite migration bumping *its own* namespace epoch while
    // every other app's stays at zero (per-namespace isolation).
    let memo = Arc::new(comprdl::SharedMemo::new());
    let rows =
        corpus::table2_parallel_shared(&memo).unwrap_or_else(|e| panic!("harness failed: {e}"));
    println!("{}", corpus::format_table2(&rows));
    println!("{}", corpus::format_diagnostic_summary(&corpus::corpus_diagnostics(&rows)));
    println!("{}", corpus::format_memo_stats(&memo));

    // Runtime blame flows through the same diagnostics spine as static
    // errors: span-carrying diagnostics rendered as annotated snippets.
    for app in corpus::apps::all() {
        let row = rows.iter().find(|r| r.program == app.name).expect("row per app");
        let rendered = corpus::render_runtime_blames(&app, row);
        if !rendered.is_empty() {
            println!("Runtime blame in {} (expected: its suite migrates mid-run):", app.name);
            println!("{rendered}");
        }
    }

    // The run-time check overhead: each app's suite unchecked, checked the
    // paper's way (pay at every hit), checked through a cold shared memo,
    // and re-run warm.  The harness itself enforces that every checked run
    // executes the same checks and produces byte-identical blame sequences.
    let overhead = corpus::table2_overhead().unwrap_or_else(|e| panic!("overhead gate: {e}"));
    println!("{}", corpus::format_overhead(&overhead));

    // The deterministic view: every column above except the wall-clock
    // timings, byte-identical between sequential and parallel runs.
    println!("Deterministic summary (timing-free):\n{}", corpus::stable_report(&rows));
}
