//! Reproduces the paper's evaluation tables using the threaded corpus
//! harness: Table 1 (library comp-type definitions), Table 2 (per-app type
//! checking results, one scoped thread per app with per-method work
//! stealing inside each), the Table 2 dynamic-check **overhead** comparison
//! (no hook / unmemoized hook / memoized hook, with its blame-set
//! correctness gate), and the per-app diagnostic aggregation.
//!
//! ```sh
//! cargo run --example table2
//! ```

fn main() {
    let (rows, helpers) = corpus::table1();
    println!("{}", corpus::format_table1(&rows, helpers));

    let rows = corpus::table2_parallel().unwrap_or_else(|e| panic!("harness failed: {e}"));
    println!("{}", corpus::format_table2(&rows));
    println!("{}", corpus::format_diagnostic_summary(&corpus::corpus_diagnostics(&rows)));

    // The run-time check overhead: each app's suite unchecked, checked the
    // paper's way (pay at every hit), and checked through the memo.  The
    // harness itself enforces that both checked runs execute the same
    // checks and produce byte-identical blame sets.
    let overhead = corpus::table2_overhead().unwrap_or_else(|e| panic!("overhead gate: {e}"));
    println!("{}", corpus::format_overhead(&overhead));

    // The deterministic view: every column above except the wall-clock
    // timings, byte-identical between sequential and parallel runs.
    println!("Deterministic summary (timing-free):\n{}", corpus::stable_report(&rows));
}
