//! Reproduces Figure 1 of the paper: precise type checking of ActiveRecord
//! database queries (`exists?`, `joins`) via comp types and `schema_type`.
//!
//! Run with `cargo run --example db_queries`.

use comprdl::{CheckOptions, CompRdl, TypeChecker};
use db_types::{ColumnType, DbRegistry};
use diagnostics::{render, Diagnostic, SourceMap};
use std::sync::Arc;

fn discourse_env() -> CompRdl {
    let mut db = DbRegistry::new();
    db.add_table(
        "users",
        &[
            ("id", ColumnType::Integer),
            ("username", ColumnType::String),
            ("staged", ColumnType::Boolean),
        ],
    );
    db.add_table(
        "emails",
        &[
            ("id", ColumnType::Integer),
            ("email", ColumnType::String),
            ("user_id", ColumnType::Integer),
        ],
    );
    db.add_model("User", "users");
    db.add_association("User", "emails", "emails");

    let mut env = CompRdl::new();
    comprdl::stdlib::register_all(&mut env);
    db_types::register_all(&mut env, Arc::new(db));
    env.type_sig_singleton("User", "reserved?", "(String) -> %bool", None);
    env.type_sig_singleton("User", "available?", "(String, String) -> %bool", Some("model"));
    env
}

fn check(env: &CompRdl, source: &str) {
    let program = ruby_syntax::parse_program_strict(source).expect("parses");
    let result = TypeChecker::new(env, &program, CheckOptions::default()).check_labeled("model");
    println!("  methods checked: {}", result.methods_checked());
    println!("  casts needed   : {}", result.total_casts());
    if result.errors().is_empty() {
        println!("  no type errors");
    }
    // Each checker error converts into a shared `Diagnostic` and renders as a
    // span-annotated snippet against the model source.
    let sm = SourceMap::new("model.rb", source);
    for err in result.errors() {
        print!("{}", render(&sm, &Diagnostic::from(err.clone())));
    }
    println!();
}

fn main() {
    let env = discourse_env();

    println!("Figure 1: Discourse's User.available? type checks precisely:");
    check(
        &env,
        r#"
class User < ActiveRecord::Base
  def self.available?(name, email)
    return false if reserved?(name)
    return true if !User.exists?({ username: name })
    return User.joins(:emails).exists?({ staged: true, username: name, emails: { email: email } })
  end
end
"#,
    );

    println!("The same query with a wrong column type (staged: 'yes') is rejected:");
    check(
        &env,
        r#"
class User < ActiveRecord::Base
  def self.available?(name, email)
    User.joins(:emails).exists?({ staged: 'yes', username: name, emails: { email: email } })
  end
end
"#,
    );

    println!("Querying a column that does not exist is rejected:");
    check(
        &env,
        r#"
class User < ActiveRecord::Base
  def self.available?(name, email)
    User.exists?({ user_name: name })
  end
end
"#,
    );

    println!("Joining through an undeclared association is rejected:");
    check(
        &env,
        r#"
class User < ActiveRecord::Base
  def self.available?(name, email)
    User.joins(:apartments).exists?({ username: name })
  end
end
"#,
    );
}
