//! Reproduces Figure 3 of the paper: type checking raw SQL strings embedded
//! in `where(...)` calls, including the injected Discourse bug (searching a
//! string column in an integer set).
//!
//! Run with `cargo run --example sql_strings`.

use comprdl::{CheckOptions, CompRdl, TypeChecker};
use db_types::{ColumnType, DbRegistry};
use diagnostics::{render, Diagnostic, SourceMap};
use sql_tc::{check_fragment, SqlType};
use std::sync::Arc;

fn main() {
    // The three tables of Figure 3.
    let mut db = DbRegistry::new();
    db.add_table("posts", &[("id", ColumnType::Integer), ("topic_id", ColumnType::Integer)]);
    db.add_table("topics", &[("id", ColumnType::Integer), ("title", ColumnType::String)]);
    db.add_table(
        "topic_allowed_groups",
        &[("group_id", ColumnType::Integer), ("topic_id", ColumnType::Integer)],
    );
    db.add_model("Post", "posts");
    db.add_model("Topic", "topics");
    db.add_association("Post", "topic", "topics");

    // 1. The standalone SQL fragment checker (what `sql_typecheck` calls).
    println!("-- standalone fragment check ------------------------------------");
    let schema = db.to_sql_schema();
    let buggy = "topics.title IN (SELECT topic_id FROM topic_allowed_groups WHERE group_id = ?)";
    let errors = check_fragment(
        &schema,
        &["posts".to_string(), "topics".to_string()],
        buggy,
        &[SqlType::Integer],
    );
    println!("fragment: {buggy}");
    // `check_fragment` maps error spans back through the query completion
    // into *fragment* coordinates, so they render as annotated snippets
    // directly against the raw fragment string.
    let sm = SourceMap::new("<sql fragment>", buggy);
    for e in &errors {
        print!("{}", render(&sm, &Diagnostic::from(e.clone())));
    }

    // 2. The same check reached through the comp type of `where` during
    //    ordinary type checking of a model method.
    println!("\n-- through the `where` comp type ---------------------------------");
    let mut env = CompRdl::new();
    comprdl::stdlib::register_all(&mut env);
    db_types::register_all(&mut env, Arc::new(db));
    env.type_sig_singleton("Post", "allowed", "(Integer) -> Object", Some("model"));

    let buggy_src = r#"
class Post < ActiveRecord::Base
  def self.allowed(group_id)
    Post.includes(:topic)
      .where('topics.title IN (SELECT topic_id FROM topic_allowed_groups WHERE group_id = ?)', group_id)
  end
end
"#;
    let program = ruby_syntax::parse_program_strict(buggy_src).unwrap();
    let result = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("model");
    println!("buggy query:");
    let sm = SourceMap::new("post.rb", buggy_src);
    for err in result.errors() {
        print!("{}", render(&sm, &Diagnostic::from(err.clone())));
    }

    let fixed_src = buggy_src.replace("topics.title IN", "topics.id IN");
    let program = ruby_syntax::parse_program_strict(&fixed_src).unwrap();
    let result = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("model");
    println!("corrected query: {} errors", result.errors().len());
}
