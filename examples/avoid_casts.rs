//! Reproduces Figure 2 of the paper: the `image_url` method from the
//! Wikipedia client type checks without casts when comp types are enabled,
//! but needs a cast under plain RDL.
//!
//! Run with `cargo run --example avoid_casts`.

use comprdl::{CheckOptions, CompRdl, TypeChecker};
use diagnostics::{render, Diagnostic, SourceMap};

fn env() -> CompRdl {
    let mut env = CompRdl::new();
    comprdl::stdlib::register_all(&mut env);
    env.type_sig("Object", "page", "() -> { info: Array<String>, title: String }", None);
    env.type_sig("Object", "image_url", "() -> String", Some("app"));
    env
}

fn report(label: &str, use_comp_types: bool, source: &str) {
    let env = env();
    let program = ruby_syntax::parse_program_strict(source).expect("parses");
    let options = CheckOptions { use_comp_types, ..CheckOptions::default() };
    let result = TypeChecker::new(&env, &program, options).check_labeled("app");
    println!(
        "{label:<34} errors: {}  casts needed: {}",
        result.errors().len(),
        result.total_casts()
    );
    let sm = SourceMap::new("image_url.rb", source);
    for err in result.errors() {
        print!("{}", render(&sm, &Diagnostic::from(err.clone())));
    }
}

fn main() {
    // Figure 2, lines 5-9.
    let without_cast = r#"
def image_url()
  page()[:info].first
end
"#;
    let with_cast = r#"
def image_url()
  RDL.type_cast(page()[:info], "Array<String>").first
end
"#;

    println!("page : () -> {{ info: Array<String>, title: String }}\n");
    report("CompRDL, no cast in the source", true, without_cast);
    report("plain RDL, no cast in the source", false, without_cast);
    report("plain RDL, with the manual cast", false, with_cast);
    println!(
        "\nWith comp types, Hash#[] on the finite hash type returns Array<String>\n\
         precisely, so `.first` type checks without any cast; plain RDL promotes\n\
         the hash and requires the cast shown in Figure 2, line 8."
    );

    // With implicit-cast counting off, the precision loss under plain RDL is
    // reported as a hard error — rendered here through the shared
    // diagnostics pipeline.
    println!("\nPlain RDL with implicit-cast counting disabled:\n");
    let env = env();
    let program = ruby_syntax::parse_program_strict(without_cast).expect("parses");
    let options =
        CheckOptions { use_comp_types: false, count_implicit_casts: false, ..Default::default() };
    let result = TypeChecker::new(&env, &program, options).check_labeled("app");
    let sm = SourceMap::new("image_url.rb", without_cast);
    for err in result.errors() {
        print!("{}", render(&sm, &Diagnostic::from(err.clone())));
    }
}
