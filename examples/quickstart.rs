//! Quickstart: register comp-type annotations, type check a small program,
//! and run it with the inserted dynamic checks.
//!
//! Run with `cargo run --example quickstart`.

use comprdl::{CheckConfig, CheckOptions, CompRdl, TypeChecker};
use diagnostics::{render, Diagnostic, SourceMap};
use ruby_interp::Interpreter;

fn main() {
    // 1. Build the CompRDL environment: core-library comp types plus the
    //    annotations for our own methods.
    let mut env = CompRdl::new();
    comprdl::stdlib::register_all(&mut env);
    env.add_class("Greeter", "Object");
    env.type_sig("Greeter", "config", "() -> { greeting: String, names: Array<String> }", None);
    env.type_sig("Greeter", "greet_first", "() -> String", Some("app"));
    env.type_sig("Greeter", "greet_all", "() -> Array<String>", Some("app"));

    // 2. The program under check (a Ruby subset).
    let source = r#"
class Greeter
  def config()
    { greeting: 'Hello', names: ['Ada', 'Grace', 'Barbara'] }
  end

  def greet_first()
    config()[:greeting] + ', ' + config()[:names].first
  end

  def greet_all()
    config()[:names].map { |n| config()[:greeting] + ', ' + n }
  end
end

g = Greeter.new()
puts(g.greet_first())
g.greet_all().each { |line| puts(line) }
"#;
    let program = ruby_syntax::parse_program_strict(source).expect("program parses");

    // 3. Type check.  `config()[:greeting]` gets the precise type String via
    //    the Hash#[] comp type, so no casts are needed.
    let result = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("app");
    println!("methods checked : {}", result.methods_checked());
    println!("type errors     : {}", result.errors().len());
    println!("casts needed    : {}", result.total_casts());
    println!("dynamic checks  : {}", result.checks().len());
    for err in result.errors() {
        println!("  error: {err}");
    }

    // 4. Run the program with the inserted dynamic checks enforcing the
    //    computed types at the library call sites.
    let hook = comprdl::make_hook(
        result.checks(),
        result.store.clone(),
        env.classes.clone(),
        env.helpers.clone(),
        CheckConfig::default(),
    );
    let mut interp = Interpreter::new(program);
    interp.set_hook(hook);
    interp.eval_program().expect("runs without blame");
    for line in interp.output() {
        println!("> {line}");
    }
    println!("checks executed : {}", interp.checks_performed());

    // 5. Diagnostics: a broken variant of the program, with every layer's
    //    errors rendered as span-annotated snippets through the shared
    //    `diagnostics` pipeline.
    let broken = r#"
class Greeter
  def config()
    { greeting: 'Hello', names: ['Ada', 'Grace', 'Barbara'] }
  end

  def greet_first()
    config()[:greeting] + config()[:names]
  end
end
"#;
    println!("\nA broken variant, rendered through the diagnostics pipeline:\n");
    let sm = SourceMap::new("greeter.rb", broken);
    let program = ruby_syntax::parse_program_strict(broken).expect("program parses");
    let result = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("app");
    for err in result.errors() {
        print!("{}", render(&sm, &Diagnostic::from(err.clone())));
    }

    // 6. The same rows the paper reports in Table 1, for the core libraries.
    let (rows, helpers) = corpus::table1();
    println!("\n{}", corpus::format_table1(&rows, helpers));
}
