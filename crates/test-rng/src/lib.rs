//! A tiny seeded PRNG for deterministic property tests.
//!
//! The build container has no crates.io access, so the workspace's property
//! tests (`rdl-types`, `lambda-c`) use this instead of `proptest`: draw a
//! few thousand random structures from a fixed seed and assert the same
//! algebraic properties a shrinking property tester would.

#![warn(missing_docs)]

/// xorshift64* with a fixed seed; deterministic across runs and platforms.
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a non-zero seed.
    pub fn new(seed: u64) -> Self {
        assert_ne!(seed, 0, "xorshift seed must be non-zero");
        Rng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform-ish value in `[0, n)` (modulo bias is irrelevant for the tiny
    /// `n` used in test generators).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(5) < 5);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_seed_rejected() {
        Rng::new(0);
    }
}
