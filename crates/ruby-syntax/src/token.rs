//! Tokens produced by the [`Lexer`](crate::lexer::Lexer).

use crate::span::Span;
use std::fmt;

/// Reserved words of the Ruby subset.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kw {
    Def,
    End,
    Class,
    Module,
    If,
    Elsif,
    Else,
    Unless,
    While,
    Do,
    Then,
    Return,
    SelfKw,
    Nil,
    True,
    False,
    And,
    Or,
    Not,
    Yield,
    Case,
    When,
    Break,
    Next,
}

impl Kw {
    /// Looks up a keyword by its source spelling.
    pub fn from_source(s: &str) -> Option<Kw> {
        Some(match s {
            "def" => Kw::Def,
            "end" => Kw::End,
            "class" => Kw::Class,
            "module" => Kw::Module,
            "if" => Kw::If,
            "elsif" => Kw::Elsif,
            "else" => Kw::Else,
            "unless" => Kw::Unless,
            "while" => Kw::While,
            "do" => Kw::Do,
            "then" => Kw::Then,
            "return" => Kw::Return,
            "self" => Kw::SelfKw,
            "nil" => Kw::Nil,
            "true" => Kw::True,
            "false" => Kw::False,
            "and" => Kw::And,
            "or" => Kw::Or,
            "not" => Kw::Not,
            "yield" => Kw::Yield,
            "case" => Kw::Case,
            "when" => Kw::When,
            "break" => Kw::Break,
            "next" => Kw::Next,
            _ => return None,
        })
    }

    /// The source spelling of the keyword.
    pub fn as_str(&self) -> &'static str {
        match self {
            Kw::Def => "def",
            Kw::End => "end",
            Kw::Class => "class",
            Kw::Module => "module",
            Kw::If => "if",
            Kw::Elsif => "elsif",
            Kw::Else => "else",
            Kw::Unless => "unless",
            Kw::While => "while",
            Kw::Do => "do",
            Kw::Then => "then",
            Kw::Return => "return",
            Kw::SelfKw => "self",
            Kw::Nil => "nil",
            Kw::True => "true",
            Kw::False => "false",
            Kw::And => "and",
            Kw::Or => "or",
            Kw::Not => "not",
            Kw::Yield => "yield",
            Kw::Case => "case",
            Kw::When => "when",
            Kw::Break => "break",
            Kw::Next => "next",
        }
    }
}

impl fmt::Display for Kw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The kind of a lexed token.
///
/// Punctuation variants are named after their symbol and carry no payload.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A lower-case identifier (method or local variable name), possibly
    /// ending in `?` or `!`.
    Ident(String),
    /// An upper-case constant name.
    Const(String),
    /// An instance variable such as `@page`.
    IVar(String),
    /// A global variable such as `$schema`.
    GVar(String),
    /// A symbol literal such as `:emails`.
    Symbol(String),
    /// A hash label such as `name:` in `{ name: "Alice" }`.
    Label(String),
    /// An integer literal.
    Int(i64),
    /// A floating point literal.
    Float(f64),
    /// A string literal (single or double quoted; no interpolation).
    Str(String),
    /// A reserved word.
    Keyword(Kw),

    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Pow,
    EqEq,
    NotEq,
    Lt,
    Gt,
    Le,
    Ge,
    Spaceship,
    AndAnd,
    OrOr,
    Bang,
    Assign,
    PlusAssign,
    MinusAssign,
    OrOrAssign,
    /// `=>` used in hash literals.
    FatArrow,
    /// `->` used for lambda literals.
    Arrow,
    ColonColon,
    Comma,
    Dot,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Pipe,
    Amp,
    Question,
    Colon,
    /// Statement separator: newline(s) or `;`.
    Newline,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// True for tokens that terminate a statement.
    pub fn is_terminator(&self) -> bool {
        matches!(self, TokenKind::Newline | TokenKind::Eof)
    }

    /// A short human readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Const(s) => format!("constant `{s}`"),
            TokenKind::IVar(s) => format!("instance variable `@{s}`"),
            TokenKind::GVar(s) => format!("global variable `${s}`"),
            TokenKind::Symbol(s) => format!("symbol `:{s}`"),
            TokenKind::Label(s) => format!("label `{s}:`"),
            TokenKind::Int(i) => format!("integer `{i}`"),
            TokenKind::Float(x) => format!("float `{x}`"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::Keyword(k) => format!("keyword `{k}`"),
            TokenKind::Newline => "end of line".to_string(),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol_str()),
        }
    }

    fn symbol_str(&self) -> &'static str {
        match self {
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Pow => "**",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Gt => ">",
            TokenKind::Le => "<=",
            TokenKind::Ge => ">=",
            TokenKind::Spaceship => "<=>",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Bang => "!",
            TokenKind::Assign => "=",
            TokenKind::PlusAssign => "+=",
            TokenKind::MinusAssign => "-=",
            TokenKind::OrOrAssign => "||=",
            TokenKind::FatArrow => "=>",
            TokenKind::Arrow => "->",
            TokenKind::ColonColon => "::",
            TokenKind::Comma => ",",
            TokenKind::Dot => ".",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::Pipe => "|",
            TokenKind::Amp => "&",
            TokenKind::Question => "?",
            TokenKind::Colon => ":",
            _ => "?",
        }
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it came from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip() {
        for kw in [Kw::Def, Kw::End, Kw::If, Kw::Return, Kw::SelfKw, Kw::Yield] {
            assert_eq!(Kw::from_source(kw.as_str()), Some(kw));
        }
        assert_eq!(Kw::from_source("frobnicate"), None);
    }

    #[test]
    fn describe_is_informative() {
        assert!(TokenKind::Ident("foo".into()).describe().contains("foo"));
        assert!(TokenKind::Symbol("emails".into()).describe().contains("emails"));
        assert_eq!(TokenKind::Plus.describe(), "`+`");
    }

    #[test]
    fn terminator_classification() {
        assert!(TokenKind::Newline.is_terminator());
        assert!(TokenKind::Eof.is_terminator());
        assert!(!TokenKind::Comma.is_terminator());
    }
}
