//! Pretty printer: renders AST nodes back to Ruby-subset source.
//!
//! The printer is used for error messages ("in the call `User.joins(:emails)`
//! ..."), for the dynamic-check rewriter's debug output, and by property tests
//! that check print→parse round-trips.

use crate::ast::*;

/// Renders a whole program.
pub fn print_program(prog: &Program) -> String {
    let mut out = String::new();
    for item in &prog.items {
        print_item(item, 0, &mut out);
    }
    out
}

/// Renders a single expression on one line.
pub fn print_expr(e: &Expr) -> String {
    let mut out = String::new();
    expr(e, &mut out);
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_item(item: &Item, level: usize, out: &mut String) {
    match item {
        Item::Class(c) => {
            indent(level, out);
            out.push_str("class ");
            out.push_str(&c.name);
            if let Some(sup) = &c.superclass {
                out.push_str(" < ");
                out.push_str(sup);
            }
            out.push('\n');
            for i in &c.body {
                print_item(i, level + 1, out);
            }
            indent(level, out);
            out.push_str("end\n");
        }
        Item::Method(m) => {
            indent(level, out);
            out.push_str("def ");
            if m.singleton {
                out.push_str("self.");
            }
            out.push_str(&m.name);
            out.push('(');
            for (i, p) in m.params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                if p.block {
                    out.push('&');
                }
                out.push_str(&p.name);
                if let Some(d) = &p.default {
                    out.push_str(" = ");
                    expr(d, out);
                }
            }
            out.push_str(")\n");
            for e in &m.body {
                indent(level + 1, out);
                expr(e, out);
                out.push('\n');
            }
            indent(level, out);
            out.push_str("end\n");
        }
        Item::Expr(e) => {
            indent(level, out);
            expr(e, out);
            out.push('\n');
        }
    }
}

fn body_inline(body: &[Expr], out: &mut String) {
    for (i, e) in body.iter().enumerate() {
        if i > 0 {
            out.push_str("; ");
        }
        expr(e, out);
    }
}

fn lvalue(lv: &LValue, out: &mut String) {
    match lv {
        LValue::Local(n) => out.push_str(n),
        LValue::IVar(n) => {
            out.push('@');
            out.push_str(n);
        }
        LValue::GVar(n) => {
            out.push('$');
            out.push_str(n);
        }
        LValue::Const(n) => out.push_str(n),
        LValue::Index { recv, index } => {
            expr(recv, out);
            out.push('[');
            expr(index, out);
            out.push(']');
        }
        LValue::Attr { recv, name } => {
            expr(recv, out);
            out.push('.');
            out.push_str(name);
        }
    }
}

fn quote_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
}

fn expr(e: &Expr, out: &mut String) {
    match &e.kind {
        ExprKind::Nil => out.push_str("nil"),
        ExprKind::True => out.push_str("true"),
        ExprKind::False => out.push_str("false"),
        ExprKind::Int(i) => out.push_str(&i.to_string()),
        ExprKind::Float(f) => {
            let s = format!("{f}");
            out.push_str(&s);
            if !s.contains('.') && !s.contains('e') {
                out.push_str(".0");
            }
        }
        ExprKind::Str(s) => quote_str(s, out),
        ExprKind::Sym(s) => {
            out.push(':');
            out.push_str(s);
        }
        ExprKind::Array(items) => {
            out.push('[');
            for (i, x) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(x, out);
            }
            out.push(']');
        }
        ExprKind::Hash(pairs) => {
            out.push_str("{ ");
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(k, out);
                out.push_str(" => ");
                expr(v, out);
            }
            out.push_str(" }");
        }
        ExprKind::SelfExpr => out.push_str("self"),
        ExprKind::Ident(n) => out.push_str(n),
        ExprKind::IVar(n) => {
            out.push('@');
            out.push_str(n);
        }
        ExprKind::GVar(n) => {
            out.push('$');
            out.push_str(n);
        }
        ExprKind::Const(path) => out.push_str(&path.join("::")),
        ExprKind::Assign { target, value } => {
            lvalue(target, out);
            out.push_str(" = ");
            expr(value, out);
        }
        ExprKind::OpAssign { target, op, value } => {
            lvalue(target, out);
            out.push(' ');
            out.push_str(op);
            out.push_str("= ");
            expr(value, out);
        }
        ExprKind::Call { recv, name, args, block } => {
            const INFIX: &[&str] =
                &["+", "-", "*", "/", "%", "**", "==", "<", ">", "<=", ">=", "<=>"];
            if recv.is_some()
                && args.len() == 1
                && block.is_none()
                && INFIX.contains(&name.as_str())
            {
                out.push('(');
                expr(recv.as_ref().unwrap(), out);
                out.push(' ');
                out.push_str(name);
                out.push(' ');
                expr(&args[0], out);
                out.push(')');
            } else if name == "[]" && recv.is_some() {
                expr(recv.as_ref().unwrap(), out);
                out.push('[');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    expr(a, out);
                }
                out.push(']');
            } else {
                if let Some(r) = recv {
                    let needs_parens = matches!(
                        r.kind,
                        ExprKind::BoolOp { .. } | ExprKind::Not(_) | ExprKind::Assign { .. }
                    );
                    if needs_parens {
                        out.push('(');
                    }
                    expr(r, out);
                    if needs_parens {
                        out.push(')');
                    }
                    out.push('.');
                }
                out.push_str(name);
                if !args.is_empty() {
                    out.push('(');
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        expr(a, out);
                    }
                    out.push(')');
                } else if recv.is_none() && block.is_none() {
                    out.push_str("()");
                }
            }
            if let Some(b) = block {
                out.push_str(" { ");
                if !b.params.is_empty() {
                    out.push('|');
                    out.push_str(&b.params.join(", "));
                    out.push_str("| ");
                }
                body_inline(&b.body, out);
                out.push_str(" }");
            }
        }
        ExprKind::BoolOp { op, lhs, rhs } => {
            out.push('(');
            expr(lhs, out);
            out.push_str(match op {
                BinOp::And => " && ",
                BinOp::Or => " || ",
            });
            expr(rhs, out);
            out.push(')');
        }
        ExprKind::Not(inner) => {
            out.push_str("!(");
            expr(inner, out);
            out.push(')');
        }
        ExprKind::If { arms, else_body } => {
            for (i, arm) in arms.iter().enumerate() {
                out.push_str(if i == 0 { "if " } else { " elsif " });
                expr(&arm.cond, out);
                out.push_str(" then ");
                body_inline(&arm.body, out);
            }
            if !else_body.is_empty() {
                out.push_str(" else ");
                body_inline(else_body, out);
            }
            out.push_str(" end");
        }
        ExprKind::Case { subject, arms, else_body } => {
            out.push_str("case ");
            expr(subject, out);
            for arm in arms {
                out.push_str(" when ");
                expr(&arm.cond, out);
                out.push_str(" then ");
                body_inline(&arm.body, out);
            }
            if !else_body.is_empty() {
                out.push_str(" else ");
                body_inline(else_body, out);
            }
            out.push_str(" end");
        }
        ExprKind::While { cond, body } => {
            out.push_str("while ");
            expr(cond, out);
            out.push_str(" do ");
            body_inline(body, out);
            out.push_str(" end");
        }
        ExprKind::Return(v) => {
            out.push_str("return");
            if let Some(v) = v {
                out.push(' ');
                expr(v, out);
            }
        }
        ExprKind::Yield(args) => {
            out.push_str("yield");
            if !args.is_empty() {
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    expr(a, out);
                }
                out.push(')');
            }
        }
        ExprKind::Break => out.push_str("break"),
        ExprKind::Next => out.push_str("next"),
        ExprKind::Lambda(b) => {
            out.push_str("->(");
            out.push_str(&b.params.join(", "));
            out.push_str(") { ");
            body_inline(&b.body, out);
            out.push_str(" }");
        }
        ExprKind::TypeCast { expr: inner, ty } => {
            out.push_str("RDL.type_cast(");
            expr(inner, out);
            out.push_str(", ");
            quote_str(ty, out);
            out.push(')');
        }
        // An unparsable region: print a marker comment-call that cannot be
        // mistaken for user code.  It does not round-trip (the original
        // bytes are gone), which is fine — poisoned bodies are never
        // reprinted as input.
        ExprKind::Error => out.push_str("__syntax_error__"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program_strict};

    #[test]
    fn prints_simple_expressions() {
        let e = parse_expr("page[:info].first").unwrap();
        assert_eq!(print_expr(&e), "page[:info].first");
        let e = parse_expr("User.joins(:emails)").unwrap();
        assert_eq!(print_expr(&e), "User.joins(:emails)");
    }

    #[test]
    fn printed_expression_reparses() {
        let sources = [
            "a = 1 + 2 * 3",
            "User.exists?({ username: name })",
            "if a then 1 else 2 end",
            "array.map { |x| x + 1 }",
            "x[0] = \"one\"",
            "while i < 3 do i = i + 1 end",
            "return a && !(b)",
            "{ :a => 1, :b => [2, 3] }",
        ];
        for src in sources {
            let e1 = parse_expr(src).unwrap();
            let printed = print_expr(&e1);
            let e2 = parse_expr(&printed).unwrap_or_else(|err| {
                panic!("reparse of {printed:?} failed: {err}");
            });
            assert_eq!(print_expr(&e2), printed, "printing not stable for {src}");
        }
    }

    #[test]
    fn prints_program_structure() {
        let prog = parse_program_strict("class A < B\n def m(x)\n x\n end\nend\n").unwrap();
        let printed = print_program(&prog);
        assert!(printed.contains("class A < B"));
        assert!(printed.contains("def m(x)"));
        let reparsed = parse_program_strict(&printed).unwrap();
        assert_eq!(reparsed.classes()[0].name, "A");
    }

    #[test]
    fn error_nodes_print_as_a_marker() {
        use crate::ast::{Expr, ExprKind};
        use crate::span::Span;
        let e = Expr::new(ExprKind::Error, Span::new(0, 0, 1));
        assert_eq!(print_expr(&e), "__syntax_error__");
    }
}
