//! A hand written lexer for the Ruby subset.
//!
//! The lexer is line oriented: logical statement boundaries are reported as
//! [`TokenKind::Newline`] tokens. Newlines are suppressed inside parentheses
//! and brackets, after binary operators and commas (line continuations), and
//! before a leading-dot method chain, which matches how Ruby treats those
//! positions.
//!
//! Lexing is **error-resilient**: malformed input never aborts the token
//! stream.  Each error site records a span-carrying `LEX0001`
//! [`diagnostics::Diagnostic`] and substitutes a placeholder (or skips the
//! offending byte), so the parser always receives a complete,
//! `Eof`-terminated stream.  Use [`lex_strict`] when the first error should
//! fail hard instead.

use crate::span::Span;
use crate::token::{Kw, Token, TokenKind};
use diagnostics::Diagnostic;
use std::fmt;

/// An error produced while lexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human readable description.
    pub message: String,
    /// Where the error occurred.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

impl From<LexError> for diagnostics::Diagnostic {
    fn from(e: LexError) -> Self {
        diagnostics::Diagnostic::error("LEX0001", e.message.clone())
            .with_label(e.span, "lexed here")
    }
}

/// Converts Ruby subset source text into a token stream.
pub struct Lexer<'src> {
    src: &'src str,
    bytes: &'src [u8],
    pos: usize,
    line: u32,
    file: u32,
    paren_depth: i32,
    bracket_depth: i32,
    tokens: Vec<Token>,
    diags: Vec<Diagnostic>,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `src` (file id `0`, the single-file default).
    pub fn new(src: &'src str) -> Self {
        Lexer::in_file(src, 0)
    }

    /// Creates a lexer over `src` stamping every token span with `file`, so
    /// multi-file programs keep their spans distinguishable (see
    /// [`diagnostics::Span::file`]).
    pub fn in_file(src: &'src str, file: u32) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            file,
            paren_depth: 0,
            bracket_depth: 0,
            tokens: Vec::new(),
            diags: Vec::new(),
        }
    }

    fn error(&mut self, message: impl Into<String>, span: Span) {
        self.diags.push(Diagnostic::error("LEX0001", message).with_label(span, "lexed here"));
    }

    fn span_from(&self, start: usize, line: u32) -> Span {
        Span::in_file(self.file, start, self.pos, line)
    }

    /// Lexes the entire input, returning the token stream (terminated by
    /// [`TokenKind::Eof`]) together with every recovery diagnostic recorded
    /// along the way.  The stream is always complete: each malformed
    /// construct is replaced by a placeholder token (or skipped) and lexing
    /// continues, so one bad byte never hides the rest of the file.
    pub fn tokenize(mut self) -> (Vec<Token>, Vec<Diagnostic>) {
        while self.pos < self.bytes.len() {
            self.skip_spaces_and_comments();
            if self.pos >= self.bytes.len() {
                break;
            }
            let start = self.pos;
            let line = self.line;
            let c = self.bytes[self.pos];
            match c {
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    self.maybe_push_newline(start, line);
                }
                b';' => {
                    self.pos += 1;
                    self.push(TokenKind::Newline, start, line);
                }
                b'"' | b'\'' => self.lex_string(c),
                b'0'..=b'9' => self.lex_number(),
                b'@' => self.lex_ivar(),
                b'$' => self.lex_gvar(),
                b':' => self.lex_colon(),
                b'a'..=b'z' | b'_' => self.lex_ident(),
                b'A'..=b'Z' => self.lex_const(),
                _ => self.lex_operator(),
            }
        }
        // Ensure the final statement is terminated before EOF.
        if !matches!(self.tokens.last().map(|t| &t.kind), Some(TokenKind::Newline) | None) {
            let span = self.span_from(self.pos, self.line);
            self.tokens.push(Token::new(TokenKind::Newline, span));
        }
        let span = self.span_from(self.pos, self.line);
        self.tokens.push(Token::new(TokenKind::Eof, span));
        (self.tokens, self.diags)
    }

    fn skip_spaces_and_comments(&mut self) {
        loop {
            match self.bytes.get(self.pos) {
                Some(b' ') | Some(b'\t') | Some(b'\r') => self.pos += 1,
                Some(b'\\') if self.bytes.get(self.pos + 1) == Some(&b'\n') => {
                    // Explicit line continuation.
                    self.pos += 2;
                    self.line += 1;
                }
                Some(b'#') => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn maybe_push_newline(&mut self, start: usize, line: u32) {
        if self.paren_depth > 0 || self.bracket_depth > 0 {
            return;
        }
        // Suppress after tokens that cannot end a statement.
        let suppress_after = match self.tokens.last().map(|t| &t.kind) {
            None | Some(TokenKind::Newline) => true,
            Some(k) => matches!(
                k,
                TokenKind::Plus
                    | TokenKind::Minus
                    | TokenKind::Star
                    | TokenKind::Slash
                    | TokenKind::Percent
                    | TokenKind::Pow
                    | TokenKind::EqEq
                    | TokenKind::NotEq
                    | TokenKind::Lt
                    | TokenKind::Gt
                    | TokenKind::Le
                    | TokenKind::Ge
                    | TokenKind::AndAnd
                    | TokenKind::OrOr
                    | TokenKind::Assign
                    | TokenKind::PlusAssign
                    | TokenKind::MinusAssign
                    | TokenKind::OrOrAssign
                    | TokenKind::FatArrow
                    | TokenKind::Arrow
                    | TokenKind::Comma
                    | TokenKind::Dot
                    | TokenKind::ColonColon
                    | TokenKind::LParen
                    | TokenKind::LBracket
                    | TokenKind::LBrace
                    | TokenKind::Pipe
                    | TokenKind::Label(_)
                    | TokenKind::Keyword(Kw::And)
                    | TokenKind::Keyword(Kw::Or)
                    | TokenKind::Keyword(Kw::Not)
                    | TokenKind::Keyword(Kw::Then)
                    | TokenKind::Keyword(Kw::Do)
                    | TokenKind::Keyword(Kw::Else)
            ),
        };
        if suppress_after {
            return;
        }
        // Suppress before a leading-dot method chain on the next line.
        let mut look = self.pos;
        loop {
            match self.bytes.get(look) {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => look += 1,
                Some(b'#') => {
                    while look < self.bytes.len() && self.bytes[look] != b'\n' {
                        look += 1;
                    }
                }
                _ => break,
            }
        }
        if self.bytes.get(look) == Some(&b'.') && self.bytes.get(look + 1) != Some(&b'.') {
            return;
        }
        self.push(TokenKind::Newline, start, line);
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        let span = self.span_from(start, line);
        self.tokens.push(Token::new(kind, span));
    }

    fn lex_string(&mut self, quote: u8) {
        let start = self.pos;
        let line = self.line;
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => {
                    // Recovery: keep what was collected as the literal's
                    // content so the rest of the (empty) input still lexes.
                    let span = self.span_from(start, line);
                    self.error("unterminated string literal", span);
                    break;
                }
                Some(&c) if c == quote => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') if quote == b'"' => {
                    let esc = self.bytes.get(self.pos + 1).copied();
                    match esc {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'0') => out.push('\0'),
                        Some(b'e') => out.push('\u{1b}'),
                        Some(b's') => out.push(' '),
                        Some(b'\\') => out.push('\\'),
                        Some(b'"') => out.push('"'),
                        Some(b'\'') => out.push('\''),
                        // A backslash before a real newline elides it (line
                        // continuation inside the literal), but the line
                        // counter must still advance or every span after the
                        // literal reports the wrong line.
                        Some(b'\n') => self.line += 1,
                        Some(other) => {
                            out.push('\\');
                            out.push(other as char);
                        }
                        None => out.push('\\'),
                    }
                    self.pos += 2;
                }
                Some(b'\\') if self.bytes.get(self.pos + 1) == Some(&b'\'') => {
                    out.push('\'');
                    self.pos += 2;
                }
                Some(&b'\n') => {
                    out.push('\n');
                    self.line += 1;
                    self.pos += 1;
                }
                Some(&c) => {
                    // Collect a full UTF-8 character.
                    let ch_start = self.pos;
                    let ch_len = utf8_len(c);
                    self.pos += ch_len;
                    out.push_str(&self.src[ch_start..self.pos.min(self.src.len())]);
                }
            }
        }
        self.push(TokenKind::Str(out), start, line);
    }

    fn lex_number(&mut self) {
        let start = self.pos;
        let line = self.line;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9') | Some(b'_')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'.')
            && matches!(self.bytes.get(self.pos + 1), Some(b'0'..=b'9'))
        {
            is_float = true;
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9') | Some(b'_')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e') | Some(b'E'))
            && matches!(self.bytes.get(self.pos + 1), Some(b'0'..=b'9') | Some(b'-') | Some(b'+'))
        {
            is_float = true;
            self.pos += 2;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text: String = self.src[start..self.pos].chars().filter(|c| *c != '_').collect();
        let kind = if is_float {
            match text.parse::<f64>() {
                Ok(v) => TokenKind::Float(v),
                Err(_) => {
                    let span = self.span_from(start, line);
                    self.error(format!("invalid float literal `{text}`"), span);
                    TokenKind::Float(0.0)
                }
            }
        } else {
            match text.parse::<i64>() {
                Ok(v) => TokenKind::Int(v),
                Err(_) => {
                    let span = self.span_from(start, line);
                    self.error(format!("invalid integer literal `{text}`"), span);
                    TokenKind::Int(0)
                }
            }
        };
        self.push(kind, start, line);
    }

    fn ident_tail(&mut self) -> String {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'a'..=b'z') | Some(b'A'..=b'Z') | Some(b'0'..=b'9') | Some(b'_')
        ) {
            self.pos += 1;
        }
        self.src[start..self.pos].to_string()
    }

    fn lex_ivar(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.pos += 1;
        let name = self.ident_tail();
        if name.is_empty() {
            // Recovery: drop the bare sigil and continue with the next byte.
            let span = self.span_from(start, line);
            self.error("expected instance variable name after `@`", span);
            return;
        }
        self.push(TokenKind::IVar(name), start, line);
    }

    fn lex_gvar(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.pos += 1;
        let name = self.ident_tail();
        if name.is_empty() {
            let span = self.span_from(start, line);
            self.error("expected global variable name after `$`", span);
            return;
        }
        self.push(TokenKind::GVar(name), start, line);
    }

    fn lex_colon(&mut self) {
        let start = self.pos;
        let line = self.line;
        if self.bytes.get(self.pos + 1) == Some(&b':') {
            self.pos += 2;
            self.push(TokenKind::ColonColon, start, line);
            return;
        }
        // A symbol: `:` immediately followed by an identifier (possibly
        // ending in ? or !) or an operator name like :[] or :+.
        match self.bytes.get(self.pos + 1) {
            Some(b'a'..=b'z') | Some(b'A'..=b'Z') | Some(b'_') => {
                self.pos += 1;
                let mut name = self.ident_tail();
                if matches!(self.bytes.get(self.pos), Some(b'?') | Some(b'!')) {
                    name.push(self.bytes[self.pos] as char);
                    self.pos += 1;
                }
                if self.bytes.get(self.pos) == Some(&b'=')
                    && self.bytes.get(self.pos + 1) != Some(&b'=')
                    && self.bytes.get(self.pos + 1) != Some(&b'>')
                {
                    // attribute-writer symbols such as :name=
                    name.push('=');
                    self.pos += 1;
                }
                self.push(TokenKind::Symbol(name), start, line);
            }
            Some(b'[') if self.bytes.get(self.pos + 2) == Some(&b']') => {
                if self.bytes.get(self.pos + 3) == Some(&b'=') {
                    self.pos += 4;
                    self.push(TokenKind::Symbol("[]=".to_string()), start, line);
                } else {
                    self.pos += 3;
                    self.push(TokenKind::Symbol("[]".to_string()), start, line);
                }
            }
            // Operator symbols such as :+, :**, :<=, :==, :<=>.
            Some(b'+') | Some(b'-') | Some(b'*') | Some(b'/') | Some(b'%') | Some(b'<')
            | Some(b'>') | Some(b'=') => {
                let rest = &self.src[self.pos + 1..];
                let op = ["<=>", "**", "<=", ">=", "==", "+", "-", "*", "/", "%", "<", ">"]
                    .iter()
                    .find(|op| rest.starts_with(**op))
                    .copied();
                match op {
                    Some(op) => {
                        self.pos += 1 + op.len();
                        self.push(TokenKind::Symbol(op.to_string()), start, line);
                    }
                    None => {
                        self.pos += 1;
                        self.push(TokenKind::Colon, start, line);
                    }
                }
            }
            _ => {
                self.pos += 1;
                self.push(TokenKind::Colon, start, line);
            }
        }
    }

    fn lex_ident(&mut self) {
        let start = self.pos;
        let line = self.line;
        let mut name = self.ident_tail();
        if matches!(self.bytes.get(self.pos), Some(b'?') | Some(b'!')) {
            name.push(self.bytes[self.pos] as char);
            self.pos += 1;
        }
        // A label `name:` (not followed by another `:`).
        if self.bytes.get(self.pos) == Some(&b':')
            && self.bytes.get(self.pos + 1) != Some(&b':')
            && !name.ends_with('?')
            && !name.ends_with('!')
            && Kw::from_source(&name).is_none()
        {
            self.pos += 1;
            self.push(TokenKind::Label(name), start, line);
            return;
        }
        let kind = match Kw::from_source(&name) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(name),
        };
        self.push(kind, start, line);
    }

    fn lex_const(&mut self) {
        let start = self.pos;
        let line = self.line;
        let name = self.ident_tail();
        if self.bytes.get(self.pos) == Some(&b':') && self.bytes.get(self.pos + 1) != Some(&b':') {
            self.pos += 1;
            self.push(TokenKind::Label(name), start, line);
            return;
        }
        self.push(TokenKind::Const(name), start, line);
    }

    fn lex_operator(&mut self) {
        let start = self.pos;
        let line = self.line;
        let c = self.bytes[self.pos];
        let next = self.bytes.get(self.pos + 1).copied();
        let next2 = self.bytes.get(self.pos + 2).copied();
        let (kind, len) = match (c, next, next2) {
            (b'*', Some(b'*'), _) => (TokenKind::Pow, 2),
            (b'=', Some(b'='), _) => (TokenKind::EqEq, 2),
            (b'=', Some(b'>'), _) => (TokenKind::FatArrow, 2),
            (b'!', Some(b'='), _) => (TokenKind::NotEq, 2),
            (b'<', Some(b'='), Some(b'>')) => (TokenKind::Spaceship, 3),
            (b'<', Some(b'='), _) => (TokenKind::Le, 2),
            (b'>', Some(b'='), _) => (TokenKind::Ge, 2),
            (b'&', Some(b'&'), _) => (TokenKind::AndAnd, 2),
            (b'|', Some(b'|'), Some(b'=')) => (TokenKind::OrOrAssign, 3),
            (b'|', Some(b'|'), _) => (TokenKind::OrOr, 2),
            (b'+', Some(b'='), _) => (TokenKind::PlusAssign, 2),
            (b'-', Some(b'='), _) => (TokenKind::MinusAssign, 2),
            (b'-', Some(b'>'), _) => (TokenKind::Arrow, 2),
            (b'=', _, _) => (TokenKind::Assign, 1),
            (b'+', _, _) => (TokenKind::Plus, 1),
            (b'-', _, _) => (TokenKind::Minus, 1),
            (b'*', _, _) => (TokenKind::Star, 1),
            (b'/', _, _) => (TokenKind::Slash, 1),
            (b'%', _, _) => (TokenKind::Percent, 1),
            (b'<', _, _) => (TokenKind::Lt, 1),
            (b'>', _, _) => (TokenKind::Gt, 1),
            (b'!', _, _) => (TokenKind::Bang, 1),
            (b',', _, _) => (TokenKind::Comma, 1),
            (b'.', _, _) => (TokenKind::Dot, 1),
            (b'(', _, _) => {
                self.paren_depth += 1;
                (TokenKind::LParen, 1)
            }
            (b')', _, _) => {
                self.paren_depth -= 1;
                (TokenKind::RParen, 1)
            }
            (b'[', _, _) => {
                self.bracket_depth += 1;
                (TokenKind::LBracket, 1)
            }
            (b']', _, _) => {
                self.bracket_depth -= 1;
                (TokenKind::RBracket, 1)
            }
            (b'{', _, _) => (TokenKind::LBrace, 1),
            (b'}', _, _) => (TokenKind::RBrace, 1),
            (b'|', _, _) => (TokenKind::Pipe, 1),
            (b'&', _, _) => (TokenKind::Amp, 1),
            (b'?', _, _) => (TokenKind::Question, 1),
            _ => {
                // Recovery: report the stray byte and skip past the full
                // UTF-8 character it starts, emitting no token.
                self.error(
                    format!("unexpected character `{}`", c as char),
                    Span::in_file(self.file, start, start + 1, line),
                );
                self.pos += utf8_len(c);
                return;
            }
        };
        self.pos += len;
        self.push(kind, start, line);
    }
}

fn utf8_len(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first >> 5 == 0b110 {
        2
    } else if first >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

/// Convenience wrapper: lexes `src` into tokens plus recovery diagnostics.
/// The token stream is always complete (malformed constructs become
/// placeholders); the diagnostics are empty exactly when the input was
/// well formed.
///
/// # Examples
///
/// ```
/// let (toks, diags) = ruby_syntax::lex("a = 1 + 2");
/// assert!(toks.len() > 4);
/// assert!(diags.is_empty());
/// ```
pub fn lex(src: &str) -> (Vec<Token>, Vec<Diagnostic>) {
    Lexer::new(src).tokenize()
}

/// Like [`lex`], but stamps every token span (and any diagnostic span) with
/// the given source-file id, for multi-file programs.
pub fn lex_in_file(src: &str, file: u32) -> (Vec<Token>, Vec<Diagnostic>) {
    Lexer::in_file(src, file).tokenize()
}

/// Fail-stop lexing: like [`lex`], but the first malformed construct is
/// returned as a [`LexError`] instead of being recovered from.
///
/// # Errors
///
/// Returns a [`LexError`] describing the first recovery diagnostic.
pub fn lex_strict(src: &str) -> Result<Vec<Token>, LexError> {
    lex_in_file_strict(src, 0)
}

/// [`lex_strict`] with an explicit source-file id.
///
/// # Errors
///
/// See [`lex_strict`].
pub fn lex_in_file_strict(src: &str, file: u32) -> Result<Vec<Token>, LexError> {
    let (tokens, diags) = Lexer::in_file(src, file).tokenize();
    match diags.into_iter().next() {
        None => Ok(tokens),
        Some(d) => Err(LexError { message: d.message.clone(), span: d.primary_span() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<T> {
        let (toks, diags) = lex(src);
        assert!(diags.is_empty(), "{diags:?}");
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        let k = kinds("a = 1 + 2");
        assert_eq!(
            k,
            vec![
                T::Ident("a".into()),
                T::Assign,
                T::Int(1),
                T::Plus,
                T::Int(2),
                T::Newline,
                T::Eof
            ]
        );
    }

    #[test]
    fn lexes_symbols_and_labels() {
        let k = kinds("{ name: 'Alice', age: 30 }");
        assert!(k.contains(&T::Label("name".into())));
        assert!(k.contains(&T::Label("age".into())));
        let k = kinds("joins(:emails)");
        assert!(k.contains(&T::Symbol("emails".into())));
    }

    #[test]
    fn lexes_operator_symbols() {
        let k = kinds(":[] :[]= :+ :-");
        assert!(k.contains(&T::Symbol("[]".into())));
        assert!(k.contains(&T::Symbol("[]=".into())));
        assert!(k.contains(&T::Symbol("+".into())));
        assert!(k.contains(&T::Symbol("-".into())));
    }

    #[test]
    fn lexes_ivar_gvar() {
        let k = kinds("@page = $schema");
        assert_eq!(k[0], T::IVar("page".into()));
        assert_eq!(k[2], T::GVar("schema".into()));
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let k = kinds(r#"x = "a\nb" + 'c'"#);
        assert!(k.contains(&T::Str("a\nb".into())));
        assert!(k.contains(&T::Str("c".into())));
    }

    #[test]
    fn decodes_the_full_escape_set() {
        let k = kinds(r#""a\\b" "q\"q" "z\0\e\sz" "keep\qkeep""#);
        assert!(k.contains(&T::Str("a\\b".into())), "{k:?}");
        assert!(k.contains(&T::Str("q\"q".into())), "{k:?}");
        assert!(k.contains(&T::Str("z\0\u{1b} z".into())), "{k:?}");
        // Unknown escapes pass through backslash-verbatim, as before.
        assert!(k.contains(&T::Str("keep\\qkeep".into())), "{k:?}");
    }

    #[test]
    fn escaped_newline_in_string_elides_it_and_keeps_lines_correct() {
        let toks = lex_strict("x = \"a\\\nb\"\ny").unwrap();
        let str_tok = toks.iter().find(|t| matches!(t.kind, T::Str(_))).unwrap();
        assert_eq!(str_tok.kind, T::Str("ab".into()), "backslash-newline is a continuation");
        // `y` sits on line 3 of the source; before the fix the lexer lost
        // the count at the escaped newline and reported line 2.
        let y = toks.iter().find(|t| t.kind == T::Ident("y".into())).unwrap();
        assert_eq!(y.span.line, 3, "{toks:?}");
    }

    #[test]
    fn raw_newline_in_string_still_counts_lines() {
        let toks = lex_strict("x = \"a\nb\"\ny").unwrap();
        let y = toks.iter().find(|t| t.kind == T::Ident("y".into())).unwrap();
        assert_eq!(y.span.line, 3, "{toks:?}");
    }

    #[test]
    fn file_id_is_stamped_on_every_token() {
        let (toks, diags) = lex_in_file("a = 1", 3);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(toks.iter().all(|t| t.span.file == 3), "{toks:?}");
        let err = lex_in_file_strict("x = 'oops", 5).unwrap_err();
        assert_eq!(err.span.file, 5);
    }

    #[test]
    fn unterminated_string_recovers_with_a_diagnostic() {
        let (toks, diags) = lex("x = 'oops");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "LEX0001");
        assert!(diags[0].message.contains("unterminated string"), "{diags:?}");
        // The collected content survives as a placeholder literal and the
        // stream is still Newline+Eof terminated.
        assert!(toks.iter().any(|t| t.kind == T::Str("oops".into())), "{toks:?}");
        assert_eq!(toks.last().unwrap().kind, T::Eof);
        assert!(lex_strict("x = 'oops").is_err());
    }

    #[test]
    fn stray_bytes_recover_and_keep_lexing() {
        let (toks, diags) = lex("a = 1 ~ ` @\nb = 2");
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.code == "LEX0001"));
        // Everything after the junk still lexes.
        assert!(toks.iter().any(|t| t.kind == T::Ident("b".into())), "{toks:?}");
        assert!(toks.iter().any(|t| t.kind == T::Int(2)));
    }

    #[test]
    fn overflowing_integer_recovers_with_a_placeholder() {
        let (toks, diags) = lex("x = 99999999999999999999999999");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("invalid integer literal"), "{diags:?}");
        assert!(toks.iter().any(|t| t.kind == T::Int(0)), "{toks:?}");
    }

    #[test]
    fn lexes_floats_and_ints() {
        let k = kinds("1 2.5 1_000 3e2");
        assert_eq!(k[0], T::Int(1));
        assert_eq!(k[1], T::Float(2.5));
        assert_eq!(k[2], T::Int(1000));
        assert_eq!(k[3], T::Float(300.0));
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("a # a comment\nb");
        assert_eq!(
            k,
            vec![T::Ident("a".into()), T::Newline, T::Ident("b".into()), T::Newline, T::Eof]
        );
    }

    #[test]
    fn newline_suppressed_inside_parens_and_after_comma() {
        let k = kinds("foo(1,\n 2)\n");
        assert!(!k[..k.len() - 3].contains(&T::Newline));
        let k = kinds("a = [1,\n2,\n3]");
        let newline_count = k.iter().filter(|t| **t == T::Newline).count();
        assert_eq!(newline_count, 1);
    }

    #[test]
    fn newline_suppressed_before_leading_dot() {
        let k = kinds("Post.includes(:topic)\n  .where(x)\n");
        let newline_count = k.iter().filter(|t| **t == T::Newline).count();
        assert_eq!(newline_count, 1, "{k:?}");
    }

    #[test]
    fn keywords_are_recognized() {
        let k = kinds("if x then y else z end");
        assert_eq!(k[0], T::Keyword(Kw::If));
        assert_eq!(k[2], T::Keyword(Kw::Then));
        assert_eq!(k[4], T::Keyword(Kw::Else));
        assert_eq!(k[6], T::Keyword(Kw::End));
    }

    #[test]
    fn question_mark_methods() {
        let k = kinds("User.exists?(x)");
        assert!(k.contains(&T::Ident("exists?".into())));
    }

    #[test]
    fn lexes_double_colon_paths() {
        let k = kinds("ActiveRecord::Base");
        assert_eq!(
            k[..3],
            [T::Const("ActiveRecord".into()), T::ColonColon, T::Const("Base".into())]
        );
    }

    #[test]
    fn spaceship_and_pow() {
        let k = kinds("a <=> b ** c");
        assert!(k.contains(&T::Spaceship));
        assert!(k.contains(&T::Pow));
    }
}
