//! Abstract syntax tree for the Ruby subset.
//!
//! The subset covers the language features exercised by CompRDL's examples
//! and evaluation: literals, symbols, arrays and hashes, local / instance /
//! global variables, constants, method definitions (instance and `self.`
//! class methods), classes, conditionals, `while` loops, boolean operators,
//! method calls with optional blocks, assignments (including index and
//! attribute assignment) and `return`.

use crate::span::Span;

/// A whole source file: a sequence of top-level items.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Program {
    /// An empty program.
    pub fn empty() -> Self {
        Program { items: Vec::new() }
    }

    /// Iterates over every class definition (recursively, in source order).
    pub fn classes(&self) -> Vec<&ClassDef> {
        fn walk<'a>(items: &'a [Item], out: &mut Vec<&'a ClassDef>) {
            for item in items {
                if let Item::Class(c) = item {
                    out.push(c);
                    walk(&c.body, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.items, &mut out);
        out
    }

    /// Iterates over every method definition along with the name of its
    /// enclosing class (`"Object"` for top-level methods).
    pub fn methods(&self) -> Vec<(String, &MethodDef)> {
        fn walk<'a>(owner: &str, items: &'a [Item], out: &mut Vec<(String, &'a MethodDef)>) {
            for item in items {
                match item {
                    Item::Method(m) => out.push((owner.to_string(), m)),
                    Item::Class(c) => walk(&c.name, &c.body, out),
                    Item::Expr(_) => {}
                }
            }
        }
        let mut out = Vec::new();
        walk("Object", &self.items, &mut out);
        out
    }

    /// Finds a method definition by owner class and name.
    pub fn find_method(&self, owner: &str, name: &str) -> Option<&MethodDef> {
        self.methods().into_iter().find(|(o, m)| o == owner && m.name == name).map(|(_, m)| m)
    }

    /// Appends `other`'s items after this program's, producing the combined
    /// program of a multi-file source (e.g. an app followed by its test
    /// suite).  Parse each file with
    /// [`crate::parser::parse_program_in_file`] and a distinct file id first,
    /// or byte-offset spans from different files become indistinguishable.
    #[must_use]
    pub fn merge(mut self, other: Program) -> Program {
        self.items.extend(other.items);
        self
    }
}

/// A top-level or class-body item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A class definition.
    Class(ClassDef),
    /// A method definition.
    Method(MethodDef),
    /// A bare expression (e.g. an annotation call or a test assertion).
    Expr(Expr),
}

/// A class definition `class Name < Super ... end`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDef {
    /// The class name.
    pub name: String,
    /// The optional superclass path (joined with `::`).
    pub superclass: Option<String>,
    /// The class body.
    pub body: Vec<Item>,
    /// Source span of the `class` keyword through `end`.
    pub span: Span,
}

/// A method definition `def name(params) ... end`.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDef {
    /// The method name (may end in `?`, `!` or `=`).
    pub name: String,
    /// Whether this is a class-level (`def self.name`) method.
    pub singleton: bool,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// The method body.
    pub body: Vec<Expr>,
    /// Source span of the definition.
    pub span: Span,
    /// True when recovery poisoned this method: its body failed to parse,
    /// the parser emitted one `PARSE` diagnostic for it and resynchronized
    /// at the matching `end`, and [`MethodDef::body`] holds only a single
    /// [`ExprKind::Error`] placeholder.  Consumers (checker, lints, effect
    /// summaries) skip poisoned methods; the semantic hash covers this flag
    /// so a poisoned method can never replay a stale cached verdict.
    pub poisoned: bool,
}

impl MethodDef {
    /// Number of required parameters (those without defaults).
    pub fn required_arity(&self) -> usize {
        self.params.iter().filter(|p| p.default.is_none() && !p.block).count()
    }
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Optional default value expression.
    pub default: Option<Expr>,
    /// Whether this is a block parameter (`&blk`).
    pub block: bool,
}

impl Param {
    /// A plain required parameter.
    pub fn required(name: impl Into<String>) -> Self {
        Param { name: name.into(), default: None, block: false }
    }
}

/// An assignment target.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A local variable.
    Local(String),
    /// An instance variable `@x`.
    IVar(String),
    /// A global variable `$x`.
    GVar(String),
    /// A constant.
    Const(String),
    /// An index assignment `recv[index] = value` (desugars to `[]=`).
    Index { recv: Box<Expr>, index: Box<Expr> },
    /// An attribute assignment `recv.name = value` (desugars to `name=`).
    Attr { recv: Box<Expr>, name: String },
}

/// A block argument attached to a method call.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Block parameter names.
    pub params: Vec<String>,
    /// Block body.
    pub body: Vec<Expr>,
}

/// Binary operators that are *not* method calls in the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `&&` / `and`
    And,
    /// `||` / `or`
    Or,
}

/// One `elsif`/`when` style arm of a conditional.
#[derive(Debug, Clone, PartialEq)]
pub struct CondArm {
    /// The test expression.
    pub cond: Expr,
    /// The body to evaluate when the test is truthy.
    pub body: Vec<Expr>,
}

/// An expression node.
///
/// Struct-variant fields follow the obvious reading (`recv`/`name`/`args`
/// for calls, `cond`/`body` for loops, and so on).
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// `nil`
    Nil,
    /// `true`
    True,
    /// `false`
    False,
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Symbol literal `:name`.
    Sym(String),
    /// Array literal.
    Array(Vec<Expr>),
    /// Hash literal; keys are arbitrary expressions (symbols for labels).
    Hash(Vec<(Expr, Expr)>),
    /// `self`
    SelfExpr,
    /// A bare lower-case identifier: a local variable if one is in scope,
    /// otherwise a call to a method on `self`.
    Ident(String),
    /// An instance variable read.
    IVar(String),
    /// A global variable read.
    GVar(String),
    /// A constant read; segments of `A::B::C`.
    Const(Vec<String>),
    /// An assignment.
    Assign { target: LValue, value: Box<Expr> },
    /// An `x op= v` assignment kept in sugared form (`+=`, `-=`, `||=`).
    OpAssign { target: LValue, op: String, value: Box<Expr> },
    /// A method call `recv.name(args) { |params| body }`.
    Call {
        /// Explicit receiver; `None` means a call on `self`.
        recv: Option<Box<Expr>>,
        /// Method name.
        name: String,
        /// Positional arguments.
        args: Vec<Expr>,
        /// Optional literal block.
        block: Option<Block>,
    },
    /// Short-circuit boolean operation.
    BoolOp { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Logical negation `!e` / `not e`.
    Not(Box<Expr>),
    /// Conditional with zero or more `elsif` arms.
    If {
        /// The arms: the first is the `if`, subsequent ones are `elsif`s.
        arms: Vec<CondArm>,
        /// The `else` body (empty when absent).
        else_body: Vec<Expr>,
    },
    /// A `case subject when v ... else ... end` expression.
    Case {
        /// The scrutinee.
        subject: Box<Expr>,
        /// `when` arms; each condition is compared with `==`.
        arms: Vec<CondArm>,
        /// The `else` body.
        else_body: Vec<Expr>,
    },
    /// A `while` loop.
    While { cond: Box<Expr>, body: Vec<Expr> },
    /// `return e` / `return`.
    Return(Option<Box<Expr>>),
    /// `yield(args)`.
    Yield(Vec<Expr>),
    /// `break`.
    Break,
    /// `next`.
    Next,
    /// A stabby lambda `->(x) { body }`.
    Lambda(Block),
    /// A type cast `RDL.type_cast(e, "T")`, preserved specially so the
    /// checker can count casts.  `ty` is the annotation source text.
    TypeCast { expr: Box<Expr>, ty: String },
    /// A placeholder for source that failed to parse.  The parser emits one
    /// of these (with the span of the unparsable region) after recording a
    /// recovery diagnostic, so downstream passes see an explicit marker
    /// instead of silently dropped code.  It is a leaf: it evaluates to
    /// `nil` in the interpreter and is skipped by analyses.
    Error,
}

/// An expression together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression itself.
    pub kind: ExprKind,
    /// Where it appeared.
    pub span: Span,
}

impl Expr {
    /// Creates an expression with the given span.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Creates an expression with a dummy span (used for synthesized nodes).
    pub fn synth(kind: ExprKind) -> Self {
        Expr { kind, span: Span::dummy() }
    }

    /// Convenience constructor for a call on an explicit receiver.
    pub fn call(recv: Expr, name: impl Into<String>, args: Vec<Expr>) -> Self {
        Expr::synth(ExprKind::Call {
            recv: Some(Box::new(recv)),
            name: name.into(),
            args,
            block: None,
        })
    }

    /// Convenience constructor for a symbol literal.
    pub fn sym(name: impl Into<String>) -> Self {
        Expr::synth(ExprKind::Sym(name.into()))
    }

    /// Convenience constructor for a string literal.
    pub fn str(text: impl Into<String>) -> Self {
        Expr::synth(ExprKind::Str(text.into()))
    }

    /// Convenience constructor for an integer literal.
    pub fn int(value: i64) -> Self {
        Expr::synth(ExprKind::Int(value))
    }

    /// True if the expression is a literal `nil`/`true`/`false`/number/
    /// string/symbol.
    pub fn is_literal(&self) -> bool {
        matches!(
            self.kind,
            ExprKind::Nil
                | ExprKind::True
                | ExprKind::False
                | ExprKind::Int(_)
                | ExprKind::Float(_)
                | ExprKind::Str(_)
                | ExprKind::Sym(_)
        )
    }

    /// Walks the expression tree, invoking `f` on every node (pre-order).
    pub fn walk(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        let walk_all = |exprs: &[Expr], f: &mut dyn FnMut(&Expr)| {
            for e in exprs {
                e.walk(f);
            }
        };
        match &self.kind {
            ExprKind::Array(items) => walk_all(items, f),
            ExprKind::Hash(pairs) => {
                for (k, v) in pairs {
                    k.walk(f);
                    v.walk(f);
                }
            }
            ExprKind::Assign { target, value } | ExprKind::OpAssign { target, value, .. } => {
                match target {
                    LValue::Index { recv, index } => {
                        recv.walk(f);
                        index.walk(f);
                    }
                    LValue::Attr { recv, .. } => recv.walk(f),
                    _ => {}
                }
                value.walk(f);
            }
            ExprKind::Call { recv, args, block, .. } => {
                if let Some(r) = recv {
                    r.walk(f);
                }
                walk_all(args, f);
                if let Some(b) = block {
                    walk_all(&b.body, f);
                }
            }
            ExprKind::BoolOp { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            ExprKind::Not(e) => e.walk(f),
            ExprKind::If { arms, else_body } => {
                for arm in arms {
                    arm.cond.walk(f);
                    walk_all(&arm.body, f);
                }
                walk_all(else_body, f);
            }
            ExprKind::Case { subject, arms, else_body } => {
                subject.walk(f);
                for arm in arms {
                    arm.cond.walk(f);
                    walk_all(&arm.body, f);
                }
                walk_all(else_body, f);
            }
            ExprKind::While { cond, body } => {
                cond.walk(f);
                walk_all(body, f);
            }
            ExprKind::Return(Some(e)) => e.walk(f),
            ExprKind::Yield(args) => walk_all(args, f),
            ExprKind::Lambda(b) => walk_all(&b.body, f),
            ExprKind::TypeCast { expr, .. } => expr.walk(f),
            _ => {}
        }
    }

    /// Counts the number of nodes in the expression tree.
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        Program {
            items: vec![Item::Class(ClassDef {
                name: "User".into(),
                superclass: Some("ActiveRecord::Base".into()),
                body: vec![Item::Method(MethodDef {
                    name: "available?".into(),
                    singleton: true,
                    params: vec![Param::required("name"), Param::required("email")],
                    body: vec![Expr::synth(ExprKind::True)],
                    span: Span::dummy(),
                    poisoned: false,
                })],
                span: Span::dummy(),
            })],
        }
    }

    #[test]
    fn program_navigation() {
        let p = sample_program();
        assert_eq!(p.classes().len(), 1);
        let methods = p.methods();
        assert_eq!(methods.len(), 1);
        assert_eq!(methods[0].0, "User");
        assert!(p.find_method("User", "available?").is_some());
        assert!(p.find_method("User", "missing").is_none());
    }

    #[test]
    fn required_arity_ignores_defaults_and_blocks() {
        let m = MethodDef {
            name: "m".into(),
            singleton: false,
            params: vec![
                Param::required("a"),
                Param { name: "b".into(), default: Some(Expr::int(1)), block: false },
                Param { name: "blk".into(), default: None, block: true },
            ],
            body: vec![],
            span: Span::dummy(),
            poisoned: false,
        };
        assert_eq!(m.required_arity(), 1);
    }

    #[test]
    fn walk_visits_nested_nodes() {
        let e =
            Expr::call(Expr::synth(ExprKind::Ident("page".into())), "[]", vec![Expr::sym("info")]);
        assert_eq!(e.node_count(), 3);
    }

    #[test]
    fn literals_are_literals() {
        assert!(Expr::int(3).is_literal());
        assert!(Expr::sym("x").is_literal());
        assert!(!Expr::synth(ExprKind::Ident("x".into())).is_literal());
    }
}
