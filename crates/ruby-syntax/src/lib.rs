//! # ruby-syntax
//!
//! Lexer, parser, AST and pretty printer for the Ruby subset used throughout
//! the CompRDL-rs reproduction of *"Type-Level Computations for Ruby
//! Libraries"* (PLDI 2019).
//!
//! The subset is deliberately small but covers everything the paper's
//! examples and evaluation exercise: classes, instance and singleton method
//! definitions, literals (including symbols, arrays and hashes), instance /
//! global variables, constants, conditionals (`if` / `unless` / `case`),
//! `while` loops, blocks (`{ |x| ... }` and `do ... end`), boolean operators,
//! assignments (local, instance, global, index and attribute) and `return`.
//!
//! ## Quick start
//!
//! ```
//! use ruby_syntax::{parse_program, parse_expr, print_expr};
//!
//! let (prog, diags) = parse_program("class User\n  def self.admin?(name)\n    name == \"root\"\n  end\nend\n");
//! assert!(diags.is_empty());
//! assert_eq!(prog.classes()[0].name, "User");
//!
//! let e = parse_expr("User.joins(:emails)").unwrap();
//! assert_eq!(print_expr(&e), "User.joins(:emails)");
//! ```
//!
//! ## Error resilience
//!
//! `parse_program` never fails: malformed input produces a best-effort
//! [`Program`] plus a list of [`diagnostics::Diagnostic`]s. A broken
//! statement becomes an [`ExprKind::Error`] placeholder and parsing resumes
//! at the next line; a broken method definition is *poisoned*
//! ([`MethodDef::poisoned`]) and the parser resynchronizes at its matching
//! `end`, so one bad method never hides the rest of the file.
//!
//! ```
//! let (prog, diags) = ruby_syntax::parse_program("def bad()\n  1 +\nend\ndef good()\n  2\nend\n");
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].code, "PARSE0002");
//! assert!(prog.methods()[0].1.poisoned);
//! assert!(!prog.methods()[1].1.poisoned);
//! ```
//!
//! Callers that want the old fail-stop behaviour (tests, signature parsing)
//! use [`parse_program_strict`] / [`lex_strict`], which surface the first
//! diagnostic as a [`ParseError`] / [`LexError`].

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod semhash;
pub mod span;
pub mod token;

pub use ast::{
    BinOp, Block, ClassDef, CondArm, Expr, ExprKind, Item, LValue, MethodDef, Param, Program,
};
pub use lexer::{lex, lex_in_file, lex_in_file_strict, lex_strict, LexError, Lexer};
pub use parser::{
    parse_expr, parse_program, parse_program_in_file, parse_program_in_file_strict,
    parse_program_strict, parse_stmts, ParseError,
};
pub use printer::{print_expr, print_program};
pub use semhash::{expr_hash, method_hash, method_span_nodes, MethodHash, SemHasher};
pub use span::Span;
pub use token::{Kw, Token, TokenKind};

/// Counts the number of non-blank, non-comment source lines, mirroring how
/// the paper reports `sloccount`-style LoC numbers for subject methods.
///
/// # Examples
///
/// ```
/// let n = ruby_syntax::count_loc("# comment\n\ndef m()\n  1\nend\n");
/// assert_eq!(n, 3);
/// ```
pub fn count_loc(src: &str) -> usize {
    src.lines()
        .filter(|line| {
            let t = line.trim();
            !t.is_empty() && !t.starts_with('#')
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_loc_skips_blank_and_comments() {
        assert_eq!(count_loc(""), 0);
        assert_eq!(count_loc("# a\n# b\n"), 0);
        assert_eq!(count_loc("x = 1\n\ny = 2 # trailing\n"), 2);
    }
}
