//! Source positions and spans.
//!
//! The [`Span`] type lives in the shared [`diagnostics`] crate so that every
//! layer of the workspace (lexer, parser, checker, interpreter, SQL checker)
//! reports locations through one type; it is re-exported here because every
//! token and AST node carries one.

pub use diagnostics::Span;
