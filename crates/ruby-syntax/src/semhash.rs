//! Structural ("semantic") hashing of parsed methods.
//!
//! [`method_hash`] digests a [`MethodDef`] by walking its AST and feeding
//! every *semantically meaningful* field — names, literals, operators, the
//! tree shape — into a FNV-1a style 64-bit hasher, while skipping every
//! [`Span`].  Comments and whitespace never reach the AST (the lexer drops
//! them), so two parses that differ only in layout, comments, byte offsets,
//! line numbers or span file ids produce **identical** hashes; any edit that
//! changes what the method *does* changes the hash.
//!
//! This is the foundation of incremental re-checking (see
//! `comprdl::semdep`): a method whose semantic hash — and the hashes of
//! everything it transitively depends on — is unchanged can replay its
//! previous check verdict instead of being re-checked.
//!
//! The hash is deterministic across processes and platforms (no pointer or
//! `HashMap`-order dependence), which is what lets it key an on-disk cache.

use crate::ast::{Block, CondArm, Expr, ExprKind, LValue, MethodDef, Param, Program};
use crate::span::Span;

/// A FNV-1a 64-bit hasher with length-prefixed, tag-disambiguated writes.
///
/// Not a `std::hash::Hasher`: `std`'s `Hasher` contract does not promise
/// cross-process stability for `SipHash` keys, and the semantic hash must
/// be stable enough to key an on-disk cache.
#[derive(Debug, Clone)]
pub struct SemHasher(u64);

impl SemHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        SemHasher(Self::OFFSET)
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    /// Absorbs a `u64`, little-endian.
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Absorbs an `i64` by bit pattern.
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// Absorbs a `usize` widened to 64 bits.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a string, length-prefixed so `("a", "bc")` and `("ab", "c")`
    /// digest differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        for b in s.as_bytes() {
            self.write_u8(*b);
        }
    }

    /// Absorbs a bool.
    pub fn write_bool(&mut self, b: bool) {
        self.write_u8(u8::from(b));
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        // One final avalanche round (splitmix64) so near-identical inputs
        // do not produce near-identical outputs.
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Default for SemHasher {
    fn default() -> Self {
        SemHasher::new()
    }
}

/// The semantic identity of one method in a program: where it lives
/// (`owner`/`name`/`singleton`) and the structural hash of its definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodHash {
    /// The enclosing class (`"Object"` for top-level methods).
    pub owner: String,
    /// The method name.
    pub name: String,
    /// Whether it is a class-level (`def self.name`) method.
    pub singleton: bool,
    /// The structural hash of the definition (spans excluded).
    pub hash: u64,
}

impl Program {
    /// The semantic hash of every method in the program, in source order.
    ///
    /// Two programs that differ only in whitespace, comments or source
    /// positions report identical hash lists; see the module docs.
    pub fn method_hashes(&self) -> Vec<MethodHash> {
        self.methods()
            .into_iter()
            .map(|(owner, def)| MethodHash {
                owner,
                name: def.name.clone(),
                singleton: def.singleton,
                hash: method_hash(def),
            })
            .collect()
    }
}

/// Structurally hashes a method definition, skipping every span.
pub fn method_hash(def: &MethodDef) -> u64 {
    let mut h = SemHasher::new();
    hash_method(&mut h, def);
    h.finish()
}

/// Structurally hashes a single expression tree, skipping every span.
pub fn expr_hash(e: &Expr) -> u64 {
    let mut h = SemHasher::new();
    hash_expr(&mut h, e);
    h.finish()
}

fn hash_method(h: &mut SemHasher, def: &MethodDef) {
    h.write_u8(0xA0);
    h.write_str(&def.name);
    h.write_bool(def.singleton);
    // The poison marker is part of the semantic identity: a method whose
    // body stopped parsing must hash differently from every well-formed
    // version of itself, so the incremental cache can never replay a stale
    // verdict for it (and a repaired method re-checks as an edit).
    h.write_bool(def.poisoned);
    h.write_usize(def.params.len());
    for p in &def.params {
        hash_param(h, p);
    }
    hash_body(h, &def.body);
}

fn hash_param(h: &mut SemHasher, p: &Param) {
    h.write_str(&p.name);
    h.write_bool(p.block);
    match &p.default {
        Some(d) => {
            h.write_u8(1);
            hash_expr(h, d);
        }
        None => h.write_u8(0),
    }
}

fn hash_body(h: &mut SemHasher, body: &[Expr]) {
    h.write_usize(body.len());
    for e in body {
        hash_expr(h, e);
    }
}

fn hash_lvalue(h: &mut SemHasher, lv: &LValue) {
    match lv {
        LValue::Local(n) => {
            h.write_u8(0);
            h.write_str(n);
        }
        LValue::IVar(n) => {
            h.write_u8(1);
            h.write_str(n);
        }
        LValue::GVar(n) => {
            h.write_u8(2);
            h.write_str(n);
        }
        LValue::Const(n) => {
            h.write_u8(3);
            h.write_str(n);
        }
        LValue::Index { recv, index } => {
            h.write_u8(4);
            hash_expr(h, recv);
            hash_expr(h, index);
        }
        LValue::Attr { recv, name } => {
            h.write_u8(5);
            hash_expr(h, recv);
            h.write_str(name);
        }
    }
}

fn hash_block(h: &mut SemHasher, b: &Block) {
    h.write_usize(b.params.len());
    for p in &b.params {
        h.write_str(p);
    }
    hash_body(h, &b.body);
}

fn hash_arms(h: &mut SemHasher, arms: &[CondArm]) {
    h.write_usize(arms.len());
    for arm in arms {
        hash_expr(h, &arm.cond);
        hash_body(h, &arm.body);
    }
}

fn hash_expr(h: &mut SemHasher, e: &Expr) {
    // Every variant writes a distinct tag byte first, so trees with the
    // same leaves but different shapes cannot collide structurally.  The
    // span is deliberately not written.
    match &e.kind {
        ExprKind::Nil => h.write_u8(0),
        ExprKind::True => h.write_u8(1),
        ExprKind::False => h.write_u8(2),
        ExprKind::Int(i) => {
            h.write_u8(3);
            h.write_i64(*i);
        }
        ExprKind::Float(f) => {
            h.write_u8(4);
            h.write_u64(f.to_bits());
        }
        ExprKind::Str(s) => {
            h.write_u8(5);
            h.write_str(s);
        }
        ExprKind::Sym(s) => {
            h.write_u8(6);
            h.write_str(s);
        }
        ExprKind::Array(items) => {
            h.write_u8(7);
            hash_body(h, items);
        }
        ExprKind::Hash(pairs) => {
            h.write_u8(8);
            h.write_usize(pairs.len());
            for (k, v) in pairs {
                hash_expr(h, k);
                hash_expr(h, v);
            }
        }
        ExprKind::SelfExpr => h.write_u8(9),
        ExprKind::Ident(n) => {
            h.write_u8(10);
            h.write_str(n);
        }
        ExprKind::IVar(n) => {
            h.write_u8(11);
            h.write_str(n);
        }
        ExprKind::GVar(n) => {
            h.write_u8(12);
            h.write_str(n);
        }
        ExprKind::Const(path) => {
            h.write_u8(13);
            h.write_usize(path.len());
            for seg in path {
                h.write_str(seg);
            }
        }
        ExprKind::Assign { target, value } => {
            h.write_u8(14);
            hash_lvalue(h, target);
            hash_expr(h, value);
        }
        ExprKind::OpAssign { target, op, value } => {
            h.write_u8(15);
            hash_lvalue(h, target);
            h.write_str(op);
            hash_expr(h, value);
        }
        ExprKind::Call { recv, name, args, block } => {
            h.write_u8(16);
            match recv {
                Some(r) => {
                    h.write_u8(1);
                    hash_expr(h, r);
                }
                None => h.write_u8(0),
            }
            h.write_str(name);
            hash_body(h, args);
            match block {
                Some(b) => {
                    h.write_u8(1);
                    hash_block(h, b);
                }
                None => h.write_u8(0),
            }
        }
        ExprKind::BoolOp { op, lhs, rhs } => {
            h.write_u8(17);
            h.write_u8(match op {
                crate::ast::BinOp::And => 0,
                crate::ast::BinOp::Or => 1,
            });
            hash_expr(h, lhs);
            hash_expr(h, rhs);
        }
        ExprKind::Not(inner) => {
            h.write_u8(18);
            hash_expr(h, inner);
        }
        ExprKind::If { arms, else_body } => {
            h.write_u8(19);
            hash_arms(h, arms);
            hash_body(h, else_body);
        }
        ExprKind::Case { subject, arms, else_body } => {
            h.write_u8(20);
            hash_expr(h, subject);
            hash_arms(h, arms);
            hash_body(h, else_body);
        }
        ExprKind::While { cond, body } => {
            h.write_u8(21);
            hash_expr(h, cond);
            hash_body(h, body);
        }
        ExprKind::Return(value) => {
            h.write_u8(22);
            match value {
                Some(v) => {
                    h.write_u8(1);
                    hash_expr(h, v);
                }
                None => h.write_u8(0),
            }
        }
        ExprKind::Yield(args) => {
            h.write_u8(23);
            hash_body(h, args);
        }
        ExprKind::Break => h.write_u8(24),
        ExprKind::Next => h.write_u8(25),
        ExprKind::Lambda(b) => {
            h.write_u8(26);
            hash_block(h, b);
        }
        ExprKind::TypeCast { expr, ty } => {
            h.write_u8(27);
            hash_expr(h, expr);
            h.write_str(ty);
        }
        ExprKind::Error => h.write_u8(28),
    }
}

/// The canonical node-span table of a method: index `0` is the definition's
/// own span, followed by the span of every body expression in pre-order.
///
/// Two parses of semantically identical sources (equal [`method_hash`])
/// walk identical trees, so a node *index* recorded against one parse
/// resolves to the corresponding node of the other — that is how the
/// persisted check cache re-anchors diagnostic and check-site spans onto a
/// re-parsed file whose byte offsets have shifted (see `comprdl::persist`).
pub fn method_span_nodes(def: &MethodDef) -> Vec<Span> {
    let mut nodes = vec![def.span];
    for e in &def.body {
        e.walk(&mut |node| nodes.push(node.span));
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program_strict;

    fn hashes(src: &str) -> Vec<MethodHash> {
        parse_program_strict(src).expect("parse").method_hashes()
    }

    #[test]
    fn layout_only_edits_hash_identically() {
        let a = hashes("def m(x)\n  x + 1\nend\n");
        let b = hashes("# leading comment\n\ndef m(x)\n\n  # inner comment\n  x + 1\n\nend\n");
        assert_eq!(a, b);
    }

    #[test]
    fn file_ids_and_offsets_do_not_matter() {
        let src = "def m(x)\n  x + 1\nend\n";
        let a = crate::parser::parse_program_in_file_strict(src, 0).expect("parse").method_hashes();
        let shifted = format!("\n\n\n{src}");
        let b = crate::parser::parse_program_in_file_strict(&shifted, 7)
            .expect("parse")
            .method_hashes();
        assert_eq!(a, b);
    }

    #[test]
    fn semantic_edits_change_the_hash() {
        let base = hashes("def m(x)\n  x + 1\nend\n");
        for changed in [
            "def m(x)\n  x + 2\nend\n",    // literal
            "def m(x)\n  x - 1\nend\n",    // operator (method name)
            "def m(y)\n  y + 1\nend\n",    // parameter rename
            "def self.m(x)\n  x + 1\nend", // singleton-ness
        ] {
            assert_ne!(base[0].hash, hashes(changed)[0].hash, "edit not detected: {changed:?}");
        }
    }

    #[test]
    fn sibling_methods_hash_independently() {
        let both = hashes("def a()\n  1\nend\ndef b()\n  2\nend\n");
        let edited = hashes("def a()\n  1\nend\ndef b()\n  3\nend\n");
        assert_eq!(both[0].hash, edited[0].hash, "editing b must not move a's hash");
        assert_ne!(both[1].hash, edited[1].hash);
    }

    #[test]
    fn span_nodes_cover_def_and_body_preorder() {
        let p = parse_program_strict("def m(x)\n  x + 1\nend\n").expect("parse");
        let (_, def) = p.methods()[0];
        let nodes = method_span_nodes(def);
        assert_eq!(nodes[0], def.span);
        // `x + 1` is a call node with a receiver and one argument.
        assert_eq!(nodes.len(), 1 + def.body.iter().map(|e| e.node_count()).sum::<usize>());
    }

    #[test]
    fn span_node_indices_are_stable_under_layout_edits() {
        let a = parse_program_strict("def m(x)\n  x + 1\nend\n").expect("parse");
        let b = parse_program_strict("# c\n\ndef m(x)\n  # c\n  x + 1\nend\n").expect("parse");
        let (na, nb) = (method_span_nodes(a.methods()[0].1), method_span_nodes(b.methods()[0].1));
        assert_eq!(na.len(), nb.len(), "isomorphic trees must enumerate the same node count");
    }

    #[test]
    fn poisoned_methods_hash_differently_from_every_clean_version() {
        // A poisoned method must never collide with a well-formed method of
        // the same name — otherwise the incremental cache could replay a
        // stale verdict across a break/repair cycle.
        let (broken, diags) = crate::parser::parse_program("def m()\n  1 +\nend\n");
        assert_eq!(diags.len(), 1);
        let poisoned = broken.method_hashes();
        assert!(broken.methods()[0].1.poisoned);
        let clean = hashes("def m()\n  1\nend\n");
        assert_ne!(poisoned[0].hash, clean[0].hash);
        // Repairing the method restores a hash identical to the never-broken
        // parse of the same source.
        let repaired = hashes("def m()\n  1\nend\n");
        assert_eq!(clean[0].hash, repaired[0].hash);
    }

    #[test]
    fn item_granularity() {
        // Hash of a method nested in a class equals the hash of the same
        // method at top level: the owner is part of MethodHash, not of the
        // structural digest, so moving a method between classes is an
        // identity change, not a body change.
        let top = hashes("def m()\n  1\nend\n");
        let nested = hashes("class C\n  def m()\n    1\n  end\nend\n");
        assert_eq!(top[0].hash, nested[0].hash);
        assert_ne!(top[0].owner, nested[0].owner);
    }

    #[test]
    fn program_items_are_exhaustive() {
        // A compile-time reminder: adding an ExprKind variant must update
        // `hash_expr`.  The match there is non-wildcard, so this test only
        // documents the intent.
        let _ = crate::ast::Item::Expr(Expr::int(1));
    }
}
