//! Recursive-descent parser for the Ruby subset.
//!
//! Parsing is **error-resilient**: [`parse_program`] never fails.  A syntax
//! error inside a `def` records one `PARSE0002` diagnostic, poisons that
//! method ([`MethodDef::poisoned`]) and resynchronizes at the matching
//! `end`; a syntax error elsewhere records a `PARSE0001` diagnostic, emits
//! an [`ExprKind::Error`] placeholder item and resynchronizes at the next
//! statement boundary.  One broken method therefore still yields a fully
//! parsed rest-of-file.  [`parse_program_strict`] restores fail-stop
//! behaviour for callers that want a hard error.

use crate::ast::*;
use crate::lexer::{lex_strict, LexError};
use crate::span::Span;
use crate::token::{Kw, Token, TokenKind};
use diagnostics::Diagnostic;
use std::fmt;

/// An error produced while parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human readable description.
    pub message: String,
    /// Where the error occurred.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { message: e.message, span: e.span }
    }
}

impl From<ParseError> for diagnostics::Diagnostic {
    fn from(e: ParseError) -> Self {
        diagnostics::Diagnostic::error("PARSE0001", e.message.clone())
            .with_label(e.span, "parsed up to here")
    }
}

type PResult<T> = Result<T, ParseError>;

/// Parses a full program (a sequence of classes, methods and expressions)
/// with error recovery, returning the AST together with every `LEX`/`PARSE`
/// recovery diagnostic.  The diagnostics are empty exactly when the source
/// was well formed; on error the AST still covers everything that parsed
/// (broken methods come back poisoned, broken statements as
/// [`ExprKind::Error`] placeholders).
///
/// # Examples
///
/// ```
/// let (prog, diags) = ruby_syntax::parse_program("class A\n def m()\n 1\n end\nend\n");
/// assert_eq!(prog.classes().len(), 1);
/// assert!(diags.is_empty());
/// ```
pub fn parse_program(src: &str) -> (Program, Vec<Diagnostic>) {
    parse_program_in_file(src, 0)
}

/// Like [`parse_program`], but every span in the resulting AST (and every
/// diagnostic) carries the given source-file id, so multi-file programs
/// (merged with [`Program::merge`]) keep their call sites distinguishable
/// even when byte offsets coincide across files.
pub fn parse_program_in_file(src: &str, file: u32) -> (Program, Vec<Diagnostic>) {
    let (tokens, mut diags) = crate::lexer::lex_in_file(src, file);
    let mut p = Parser::new(tokens);
    let program = p.parse_program_recovering();
    diags.append(&mut p.diags);
    (program, diags)
}

/// Fail-stop parsing: like [`parse_program`], but the first recovery
/// diagnostic is returned as a [`ParseError`] instead of a recovered AST.
///
/// # Errors
///
/// Returns a [`ParseError`] when the source does not conform to the subset
/// grammar.
///
/// # Examples
///
/// ```
/// let prog = ruby_syntax::parse_program_strict("class A\n def m()\n 1\n end\nend\n").unwrap();
/// assert_eq!(prog.classes().len(), 1);
/// assert!(ruby_syntax::parse_program_strict("def broken(").is_err());
/// ```
pub fn parse_program_strict(src: &str) -> Result<Program, ParseError> {
    parse_program_in_file_strict(src, 0)
}

/// [`parse_program_strict`] with an explicit source-file id.
///
/// # Errors
///
/// See [`parse_program_strict`].
pub fn parse_program_in_file_strict(src: &str, file: u32) -> Result<Program, ParseError> {
    let (program, diags) = parse_program_in_file(src, file);
    match diags.into_iter().next() {
        None => Ok(program),
        Some(d) => Err(ParseError { message: d.message.clone(), span: d.primary_span() }),
    }
}

/// Parses a single expression (useful for type-level code and tests).
///
/// # Errors
///
/// Returns a [`ParseError`] if the source is not a single valid expression.
///
/// # Examples
///
/// ```
/// let e = ruby_syntax::parse_expr("page[:info].first").unwrap();
/// assert!(matches!(e.kind, ruby_syntax::ExprKind::Call { .. }));
/// ```
pub fn parse_expr(src: &str) -> PResult<Expr> {
    let tokens = lex_strict(src)?;
    let mut p = Parser::new(tokens);
    p.skip_newlines();
    let e = p.parse_stmt()?;
    p.skip_newlines();
    p.expect_eof()?;
    Ok(e)
}

/// Parses a sequence of statements (e.g. a method body fragment).
///
/// # Errors
///
/// Returns a [`ParseError`] when the source is malformed.
pub fn parse_stmts(src: &str) -> PResult<Vec<Expr>> {
    let tokens = lex_strict(src)?;
    let mut p = Parser::new(tokens);
    let body = p.parse_body(&[])?;
    p.expect_eof()?;
    Ok(body)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    diags: Vec<Diagnostic>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0, diags: Vec::new() }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn check_kw(&self, kw: Kw) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if *k == kw)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        if self.check_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> PResult<Token> {
        if self.check(kind) {
            Ok(self.advance())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn expect_kw(&mut self, kw: Kw) -> PResult<Token> {
        if self.check_kw(kw) {
            Ok(self.advance())
        } else {
            Err(self.error(format!("expected keyword `{kw}`, found {}", self.peek().describe())))
        }
    }

    fn expect_eof(&mut self) -> PResult<()> {
        self.skip_newlines();
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error(format!("unexpected {}", self.peek().describe())))
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError { message, span: self.span() }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), TokenKind::Newline) {
            self.advance();
        }
    }

    // ---- programs and items -------------------------------------------

    fn parse_program_recovering(&mut self) -> Program {
        let mut items = Vec::new();
        self.skip_newlines();
        while !matches!(self.peek(), TokenKind::Eof) {
            items.push(self.parse_item_recovering());
            self.skip_newlines();
        }
        Program { items }
    }

    // ---- error recovery -------------------------------------------------

    /// Parses one item, recovering from syntax errors instead of failing:
    /// a broken `def` comes back poisoned (one `PARSE0002` diagnostic, body
    /// replaced by an error placeholder, resynchronized at its matching
    /// `end`); any other broken item records a `PARSE0001` diagnostic,
    /// skips to the next statement boundary and yields an
    /// [`ExprKind::Error`] placeholder.
    fn parse_item_recovering(&mut self) -> Item {
        if self.check_kw(Kw::Def) {
            return Item::Method(self.parse_def_recovering());
        }
        let before = self.pos;
        match self.parse_item() {
            Ok(item) => item,
            Err(e) => {
                let span = e.span;
                self.diags.push(e.into());
                self.recover_to_stmt_boundary(before);
                Item::Expr(Expr::new(ExprKind::Error, span))
            }
        }
    }

    fn parse_def_recovering(&mut self) -> MethodDef {
        let start_pos = self.pos;
        match self.parse_def() {
            Ok(def) => def,
            Err(e) => {
                self.pos = start_pos;
                self.poison_def(e)
            }
        }
    }

    /// Positioned back at the `def` keyword of a method whose parse failed:
    /// records exactly one `PARSE0002` diagnostic, re-reads the method name
    /// (best effort, for navigation and the diagnostic message), skips past
    /// the matching `end` and returns the poisoned placeholder definition.
    fn poison_def(&mut self, cause: ParseError) -> MethodDef {
        let def_span = self.span();
        self.advance(); // the `def` keyword
        let mut singleton = false;
        if self.check_kw(Kw::SelfKw) && matches!(self.peek_at(1), TokenKind::Dot) {
            self.advance();
            self.advance();
            singleton = true;
        }
        let name = self.parse_method_name().unwrap_or_else(|_| "<invalid>".to_string());
        let end_span = self.resync_to_matching_end();
        self.diags.push(
            Diagnostic::error(
                "PARSE0002",
                format!("method `{name}` could not be parsed: {}", cause.message),
            )
            .with_label(cause.span, "syntax error here")
            .with_secondary_label(def_span, "this method is poisoned")
            .with_note(
                "the body was replaced by an error placeholder; checking, lints and \
                 effect inference skip this method",
            ),
        );
        MethodDef {
            name,
            singleton,
            params: Vec::new(),
            body: vec![Expr::new(ExprKind::Error, cause.span)],
            span: def_span.to(end_span),
            poisoned: true,
        }
    }

    /// Skips tokens until the `end` that closes an already-open block
    /// (depth 1 at entry), consuming it, and returns its span (or the Eof
    /// span if the block is unterminated).  Block-opening keywords seen on
    /// the way (`def`, `class`, `module`, `case`, block `do`, and
    /// statement-position `if`/`unless`/`while`) deepen the nesting so a
    /// well-formed tail inside the broken region cannot end it early.
    fn resync_to_matching_end(&mut self) -> Span {
        let mut depth: usize = 1;
        // True when the previous significant token could end an expression:
        // an `if`/`unless`/`while` right after one is a postfix modifier,
        // not a block opener.
        let mut after_expr = false;
        // Set between a counted `while` and its terminating newline so the
        // optional `do` of `while cond do` is not counted a second time.
        let mut while_cond = false;
        loop {
            let span = self.span();
            match self.peek() {
                TokenKind::Eof => return span,
                TokenKind::Keyword(Kw::End) => {
                    self.advance();
                    depth -= 1;
                    if depth == 0 {
                        return span;
                    }
                    after_expr = true;
                }
                TokenKind::Keyword(Kw::Def | Kw::Class | Kw::Module | Kw::Case) => {
                    depth += 1;
                    self.advance();
                    after_expr = false;
                }
                TokenKind::Keyword(Kw::While) => {
                    if !after_expr {
                        depth += 1;
                        while_cond = true;
                    }
                    self.advance();
                    after_expr = false;
                }
                TokenKind::Keyword(Kw::If | Kw::Unless) => {
                    if !after_expr {
                        depth += 1;
                    }
                    self.advance();
                    after_expr = false;
                }
                TokenKind::Keyword(Kw::Do) => {
                    if while_cond {
                        while_cond = false;
                    } else {
                        depth += 1;
                    }
                    self.advance();
                    after_expr = false;
                }
                TokenKind::Newline => {
                    while_cond = false;
                    self.advance();
                    after_expr = false;
                }
                k => {
                    after_expr = matches!(
                        k,
                        TokenKind::Ident(_)
                            | TokenKind::Const(_)
                            | TokenKind::IVar(_)
                            | TokenKind::GVar(_)
                            | TokenKind::Symbol(_)
                            | TokenKind::Int(_)
                            | TokenKind::Float(_)
                            | TokenKind::Str(_)
                            | TokenKind::RParen
                            | TokenKind::RBracket
                            | TokenKind::RBrace
                            | TokenKind::Keyword(
                                Kw::SelfKw | Kw::Nil | Kw::True | Kw::False | Kw::Break | Kw::Next
                            )
                    );
                    self.advance();
                }
            }
        }
    }

    /// Skips forward to the next statement boundary after a parse error,
    /// guaranteeing at least one token of progress so recovery always
    /// terminates.  Stops *before* tokens that close an enclosing construct
    /// (`end`, `else`, `elsif`, `when`, `}`) so the surrounding parse can
    /// resume.
    fn recover_to_stmt_boundary(&mut self, error_start: usize) {
        if self.pos == error_start && !matches!(self.peek(), TokenKind::Eof) {
            self.advance();
        }
        loop {
            match self.peek() {
                TokenKind::Eof
                | TokenKind::RBrace
                | TokenKind::Keyword(Kw::End | Kw::Else | Kw::Elsif | Kw::When) => break,
                TokenKind::Newline => {
                    self.advance();
                    break;
                }
                _ => {
                    self.advance();
                }
            }
        }
    }

    fn parse_item(&mut self) -> PResult<Item> {
        if self.check_kw(Kw::Class) || self.check_kw(Kw::Module) {
            Ok(Item::Class(self.parse_class()?))
        } else if self.check_kw(Kw::Def) {
            Ok(Item::Method(self.parse_def()?))
        } else {
            let e = self.parse_stmt()?;
            self.terminate_stmt()?;
            Ok(Item::Expr(e))
        }
    }

    fn terminate_stmt(&mut self) -> PResult<()> {
        match self.peek() {
            TokenKind::Newline => {
                self.advance();
                Ok(())
            }
            TokenKind::Eof
            | TokenKind::RBrace
            | TokenKind::Keyword(Kw::End)
            | TokenKind::Keyword(Kw::Else)
            | TokenKind::Keyword(Kw::Elsif)
            | TokenKind::Keyword(Kw::When) => Ok(()),
            other => {
                Err(self.error(format!("expected end of statement, found {}", other.describe())))
            }
        }
    }

    fn parse_class(&mut self) -> PResult<ClassDef> {
        let start = self.span();
        self.advance(); // class | module
        let name = match self.advance().kind {
            TokenKind::Const(name) => name,
            other => {
                return Err(self.error(format!("expected class name, found {}", other.describe())))
            }
        };
        let superclass =
            if self.eat(&TokenKind::Lt) { Some(self.parse_const_path()?) } else { None };
        self.skip_newlines();
        let mut body = Vec::new();
        while !self.check_kw(Kw::End) {
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(self.error("unterminated class body (missing `end`)".to_string()));
            }
            // Recover inside the class body too: one broken method (or
            // statement) must not take the sibling definitions with it.
            body.push(self.parse_item_recovering());
            self.skip_newlines();
        }
        let end = self.expect_kw(Kw::End)?.span;
        Ok(ClassDef { name, superclass, body, span: start.to(end) })
    }

    fn parse_const_path(&mut self) -> PResult<String> {
        let mut parts = Vec::new();
        loop {
            match self.advance().kind {
                TokenKind::Const(name) => parts.push(name),
                other => {
                    return Err(self.error(format!("expected constant, found {}", other.describe())))
                }
            }
            if !self.eat(&TokenKind::ColonColon) {
                break;
            }
        }
        Ok(parts.join("::"))
    }

    fn parse_def(&mut self) -> PResult<MethodDef> {
        let start = self.expect_kw(Kw::Def)?.span;
        let mut singleton = false;
        if self.check_kw(Kw::SelfKw) && matches!(self.peek_at(1), TokenKind::Dot) {
            self.advance();
            self.advance();
            singleton = true;
        }
        let name = self.parse_method_name()?;
        let params = self.parse_params()?;
        self.skip_newlines();
        let body = self.parse_body(&[Kw::End])?;
        let end = self.expect_kw(Kw::End)?.span;
        Ok(MethodDef { name, singleton, params, body, span: start.to(end), poisoned: false })
    }

    fn parse_method_name(&mut self) -> PResult<String> {
        let tok = self.advance();
        let mut name = match tok.kind {
            TokenKind::Ident(name) => name,
            TokenKind::Const(name) => name,
            TokenKind::Keyword(kw) => kw.as_str().to_string(),
            TokenKind::LBracket if self.eat(&TokenKind::RBracket) => {
                let mut n = "[]".to_string();
                if self.eat(&TokenKind::Assign) {
                    n.push('=');
                }
                return Ok(n);
            }
            TokenKind::EqEq => return Ok("==".to_string()),
            TokenKind::Plus => return Ok("+".to_string()),
            TokenKind::Minus => return Ok("-".to_string()),
            TokenKind::Star => return Ok("*".to_string()),
            TokenKind::Slash => return Ok("/".to_string()),
            TokenKind::Percent => return Ok("%".to_string()),
            TokenKind::Pow => return Ok("**".to_string()),
            TokenKind::Lt => return Ok("<".to_string()),
            TokenKind::Gt => return Ok(">".to_string()),
            TokenKind::Le => return Ok("<=".to_string()),
            TokenKind::Ge => return Ok(">=".to_string()),
            TokenKind::Spaceship => return Ok("<=>".to_string()),
            other => {
                return Err(self.error(format!("expected method name, found {}", other.describe())))
            }
        };
        // `def name=(v)` attribute writer.
        if self.check(&TokenKind::Assign) && matches!(self.peek_at(1), TokenKind::LParen) {
            self.advance();
            name.push('=');
        }
        Ok(name)
    }

    fn parse_params(&mut self) -> PResult<Vec<Param>> {
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) {
            while !self.check(&TokenKind::RParen) {
                let block = self.eat(&TokenKind::Amp);
                let name = match self.advance().kind {
                    TokenKind::Ident(name) => name,
                    other => {
                        return Err(self
                            .error(format!("expected parameter name, found {}", other.describe())))
                    }
                };
                let default =
                    if self.eat(&TokenKind::Assign) { Some(self.parse_expr()?) } else { None };
                params.push(Param { name, default, block });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        if matches!(self.peek(), TokenKind::Newline) {
            self.advance();
        }
        Ok(params)
    }

    /// Parses statements until one of `terminators` (or `else`/`elsif`/
    /// `when`, which always terminate a body) is reached.
    fn parse_body(&mut self, terminators: &[Kw]) -> PResult<Vec<Expr>> {
        let mut body = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek() {
                TokenKind::Eof | TokenKind::RBrace => break,
                TokenKind::Keyword(kw)
                    if terminators.contains(kw)
                        || matches!(kw, Kw::End | Kw::Else | Kw::Elsif | Kw::When) =>
                {
                    break
                }
                _ => {}
            }
            body.push(self.parse_stmt()?);
            match self.peek() {
                TokenKind::Newline => {
                    self.advance();
                }
                _ => break,
            }
        }
        Ok(body)
    }

    // ---- statements -----------------------------------------------------

    /// Parses a statement: an expression possibly wrapped by the `if` /
    /// `unless` / `while` postfix modifiers and the low precedence keyword
    /// boolean operators.
    fn parse_stmt(&mut self) -> PResult<Expr> {
        let mut e = self.parse_kw_bool()?;
        loop {
            if self.check_kw(Kw::If) {
                self.advance();
                let cond = self.parse_kw_bool()?;
                let span = e.span.to(cond.span);
                e = Expr::new(
                    ExprKind::If { arms: vec![CondArm { cond, body: vec![e] }], else_body: vec![] },
                    span,
                );
            } else if self.check_kw(Kw::Unless) {
                self.advance();
                let cond = self.parse_kw_bool()?;
                let span = e.span.to(cond.span);
                let neg = Expr::new(ExprKind::Not(Box::new(cond)), span);
                e = Expr::new(
                    ExprKind::If {
                        arms: vec![CondArm { cond: neg, body: vec![e] }],
                        else_body: vec![],
                    },
                    span,
                );
            } else if self.check_kw(Kw::While) {
                self.advance();
                let cond = self.parse_kw_bool()?;
                let span = e.span.to(cond.span);
                e = Expr::new(ExprKind::While { cond: Box::new(cond), body: vec![e] }, span);
            } else {
                break;
            }
        }
        Ok(e)
    }

    /// Keyword `and` / `or` / `not`, the lowest precedence operators.
    fn parse_kw_bool(&mut self) -> PResult<Expr> {
        if self.check_kw(Kw::Not) {
            let start = self.advance().span;
            let e = self.parse_kw_bool()?;
            let span = start.to(e.span);
            return Ok(Expr::new(ExprKind::Not(Box::new(e)), span));
        }
        let mut lhs = self.parse_expr()?;
        loop {
            let op = if self.check_kw(Kw::And) {
                BinOp::And
            } else if self.check_kw(Kw::Or) {
                BinOp::Or
            } else {
                break;
            };
            self.advance();
            let rhs = self.parse_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(ExprKind::BoolOp { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, span);
        }
        Ok(lhs)
    }

    // ---- expressions ------------------------------------------------------

    fn parse_expr(&mut self) -> PResult<Expr> {
        let lhs = self.parse_or()?;
        // Assignment (right associative) when the left side is an lvalue.
        let op = match self.peek() {
            TokenKind::Assign => Some(None),
            TokenKind::PlusAssign => Some(Some("+".to_string())),
            TokenKind::MinusAssign => Some(Some("-".to_string())),
            TokenKind::OrOrAssign => Some(Some("||".to_string())),
            _ => None,
        };
        if let Some(op) = op {
            if let Some(target) = Self::as_lvalue(&lhs) {
                self.advance();
                let value = self.parse_expr()?;
                let span = lhs.span.to(value.span);
                let kind = match op {
                    None => ExprKind::Assign { target, value: Box::new(value) },
                    Some(op) => ExprKind::OpAssign { target, op, value: Box::new(value) },
                };
                return Ok(Expr::new(kind, span));
            }
        }
        Ok(lhs)
    }

    fn as_lvalue(e: &Expr) -> Option<LValue> {
        match &e.kind {
            ExprKind::Ident(name) => Some(LValue::Local(name.clone())),
            ExprKind::IVar(name) => Some(LValue::IVar(name.clone())),
            ExprKind::GVar(name) => Some(LValue::GVar(name.clone())),
            ExprKind::Const(path) if path.len() == 1 => Some(LValue::Const(path[0].clone())),
            ExprKind::Call { recv: Some(recv), name, args, block: None } => {
                if name == "[]" && args.len() == 1 {
                    Some(LValue::Index { recv: recv.clone(), index: Box::new(args[0].clone()) })
                } else if args.is_empty() {
                    Some(LValue::Attr { recv: recv.clone(), name: name.clone() })
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn parse_or(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.parse_and()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::BoolOp { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                span,
            );
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_equality()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.parse_equality()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::BoolOp { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                span,
            );
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_comparison()?;
        loop {
            let negate = match self.peek() {
                TokenKind::EqEq => false,
                TokenKind::NotEq => true,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_comparison()?;
            let span = lhs.span.to(rhs.span);
            let eq = Expr::new(
                ExprKind::Call {
                    recv: Some(Box::new(lhs)),
                    name: "==".to_string(),
                    args: vec![rhs],
                    block: None,
                },
                span,
            );
            lhs = if negate { Expr::new(ExprKind::Not(Box::new(eq)), span) } else { eq };
        }
        Ok(lhs)
    }

    fn parse_comparison(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_additive()?;
        loop {
            let name = match self.peek() {
                TokenKind::Lt => "<",
                TokenKind::Gt => ">",
                TokenKind::Le => "<=",
                TokenKind::Ge => ">=",
                TokenKind::Spaceship => "<=>",
                _ => break,
            }
            .to_string();
            self.advance();
            let rhs = self.parse_additive()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Call { recv: Some(Box::new(lhs)), name, args: vec![rhs], block: None },
                span,
            );
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let name = match self.peek() {
                TokenKind::Plus => "+",
                TokenKind::Minus => "-",
                _ => break,
            }
            .to_string();
            self.advance();
            let rhs = self.parse_multiplicative()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Call { recv: Some(Box::new(lhs)), name, args: vec![rhs], block: None },
                span,
            );
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let name = match self.peek() {
                TokenKind::Star => "*",
                TokenKind::Slash => "/",
                TokenKind::Percent => "%",
                _ => break,
            }
            .to_string();
            self.advance();
            let rhs = self.parse_unary()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Call { recv: Some(Box::new(lhs)), name, args: vec![rhs], block: None },
                span,
            );
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> PResult<Expr> {
        match self.peek() {
            TokenKind::Bang => {
                let start = self.advance().span;
                let e = self.parse_unary()?;
                let span = start.to(e.span);
                Ok(Expr::new(ExprKind::Not(Box::new(e)), span))
            }
            TokenKind::Minus => {
                let start = self.advance().span;
                let e = self.parse_unary()?;
                let span = start.to(e.span);
                match e.kind {
                    ExprKind::Int(i) => Ok(Expr::new(ExprKind::Int(-i), span)),
                    ExprKind::Float(f) => Ok(Expr::new(ExprKind::Float(-f), span)),
                    _ => Ok(Expr::new(
                        ExprKind::Call {
                            recv: Some(Box::new(e)),
                            name: "-@".to_string(),
                            args: vec![],
                            block: None,
                        },
                        span,
                    )),
                }
            }
            _ => self.parse_pow(),
        }
    }

    fn parse_pow(&mut self) -> PResult<Expr> {
        let lhs = self.parse_postfix()?;
        if self.eat(&TokenKind::Pow) {
            let rhs = self.parse_unary()?;
            let span = lhs.span.to(rhs.span);
            return Ok(Expr::new(
                ExprKind::Call {
                    recv: Some(Box::new(lhs)),
                    name: "**".to_string(),
                    args: vec![rhs],
                    block: None,
                },
                span,
            ));
        }
        Ok(lhs)
    }

    fn parse_postfix(&mut self) -> PResult<Expr> {
        let mut e = self.parse_primary()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.advance();
                    let name = self.parse_method_name()?;
                    let args = if self.check(&TokenKind::LParen) {
                        self.parse_call_args()?
                    } else {
                        Vec::new()
                    };
                    let block = self.parse_optional_block()?;
                    let span = e.span.to(self.span());
                    e = self.make_call(Some(Box::new(e)), name, args, block, span);
                }
                TokenKind::ColonColon => {
                    // Extend a constant path: `A::B`.
                    if let ExprKind::Const(path) = &e.kind {
                        let mut path = path.clone();
                        self.advance();
                        match self.advance().kind {
                            TokenKind::Const(name) => path.push(name),
                            other => {
                                return Err(self.error(format!(
                                    "expected constant after `::`, found {}",
                                    other.describe()
                                )))
                            }
                        }
                        let span = e.span.to(self.span());
                        e = Expr::new(ExprKind::Const(path), span);
                    } else {
                        break;
                    }
                }
                TokenKind::LBracket => {
                    self.advance();
                    self.skip_newlines();
                    let mut args = Vec::new();
                    while !self.check(&TokenKind::RBracket) {
                        args.push(self.parse_expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                        self.skip_newlines();
                    }
                    let end = self.expect(&TokenKind::RBracket)?.span;
                    let span = e.span.to(end);
                    e = Expr::new(
                        ExprKind::Call {
                            recv: Some(Box::new(e)),
                            name: "[]".to_string(),
                            args,
                            block: None,
                        },
                        span,
                    );
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn make_call(
        &self,
        recv: Option<Box<Expr>>,
        name: String,
        args: Vec<Expr>,
        block: Option<Block>,
        span: Span,
    ) -> Expr {
        // Recognize `RDL.type_cast(e, "T")` so the checker can count casts.
        if name == "type_cast" && block.is_none() && args.len() >= 2 {
            if let Some(recv) = &recv {
                if matches!(&recv.kind, ExprKind::Const(path) if path == &["RDL".to_string()]) {
                    if let ExprKind::Str(ty) = &args[1].kind {
                        return Expr::new(
                            ExprKind::TypeCast { expr: Box::new(args[0].clone()), ty: ty.clone() },
                            span,
                        );
                    }
                }
            }
        }
        Expr::new(ExprKind::Call { recv, name, args, block }, span)
    }

    fn parse_call_args(&mut self) -> PResult<Vec<Expr>> {
        self.expect(&TokenKind::LParen)?;
        self.skip_newlines();
        let mut args = Vec::new();
        while !self.check(&TokenKind::RParen) {
            // Support bare label arguments as an implicit trailing hash:
            // `where(name: x, age: y)`.
            if matches!(self.peek(), TokenKind::Label(_)) {
                let pairs = self.parse_hash_pairs(&TokenKind::RParen)?;
                let span = self.span();
                args.push(Expr::new(ExprKind::Hash(pairs), span));
                break;
            }
            args.push(self.parse_expr()?);
            self.skip_newlines();
            if !self.eat(&TokenKind::Comma) {
                break;
            }
            self.skip_newlines();
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }

    fn parse_optional_block(&mut self) -> PResult<Option<Block>> {
        if self.check(&TokenKind::LBrace) {
            self.advance();
            let params = self.parse_block_params()?;
            let body = self.parse_body(&[])?;
            self.skip_newlines();
            self.expect(&TokenKind::RBrace)?;
            return Ok(Some(Block { params, body }));
        }
        if self.check_kw(Kw::Do) {
            self.advance();
            let params = self.parse_block_params()?;
            self.skip_newlines();
            let body = self.parse_body(&[Kw::End])?;
            self.expect_kw(Kw::End)?;
            return Ok(Some(Block { params, body }));
        }
        Ok(None)
    }

    fn parse_block_params(&mut self) -> PResult<Vec<String>> {
        let mut params = Vec::new();
        self.skip_newlines();
        if self.eat(&TokenKind::Pipe) {
            while !self.check(&TokenKind::Pipe) {
                match self.advance().kind {
                    TokenKind::Ident(name) => params.push(name),
                    other => {
                        return Err(self.error(format!(
                            "expected block parameter, found {}",
                            other.describe()
                        )))
                    }
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::Pipe)?;
        }
        Ok(params)
    }

    fn parse_hash_pairs(&mut self, terminator: &TokenKind) -> PResult<Vec<(Expr, Expr)>> {
        let mut pairs = Vec::new();
        self.skip_newlines();
        while !self.check(terminator) {
            let key = match self.peek().clone() {
                TokenKind::Label(name) => {
                    let span = self.advance().span;
                    Expr::new(ExprKind::Sym(name), span)
                }
                _ => {
                    let key = self.parse_expr()?;
                    self.expect(&TokenKind::FatArrow)?;
                    key
                }
            };
            self.skip_newlines();
            let value = self.parse_expr()?;
            pairs.push((key, value));
            self.skip_newlines();
            if !self.eat(&TokenKind::Comma) {
                break;
            }
            self.skip_newlines();
        }
        Ok(pairs)
    }

    fn parse_primary(&mut self) -> PResult<Expr> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Keyword(Kw::Nil) => {
                self.advance();
                Ok(Expr::new(ExprKind::Nil, span))
            }
            TokenKind::Keyword(Kw::True) => {
                self.advance();
                Ok(Expr::new(ExprKind::True, span))
            }
            TokenKind::Keyword(Kw::False) => {
                self.advance();
                Ok(Expr::new(ExprKind::False, span))
            }
            TokenKind::Keyword(Kw::SelfKw) => {
                self.advance();
                Ok(Expr::new(ExprKind::SelfExpr, span))
            }
            TokenKind::Keyword(Kw::Return) => {
                self.advance();
                let value = if self.stmt_ends_here()
                    || self.check_kw(Kw::If)
                    || self.check_kw(Kw::Unless)
                {
                    None
                } else {
                    Some(Box::new(self.parse_expr()?))
                };
                Ok(Expr::new(ExprKind::Return(value), span))
            }
            TokenKind::Keyword(Kw::Break) => {
                self.advance();
                Ok(Expr::new(ExprKind::Break, span))
            }
            TokenKind::Keyword(Kw::Next) => {
                self.advance();
                Ok(Expr::new(ExprKind::Next, span))
            }
            TokenKind::Keyword(Kw::Yield) => {
                self.advance();
                let args = if self.check(&TokenKind::LParen) {
                    self.parse_call_args()?
                } else {
                    Vec::new()
                };
                Ok(Expr::new(ExprKind::Yield(args), span))
            }
            TokenKind::Keyword(Kw::If) => self.parse_if(false),
            TokenKind::Keyword(Kw::Unless) => self.parse_if(true),
            TokenKind::Keyword(Kw::While) => self.parse_while(),
            TokenKind::Keyword(Kw::Case) => self.parse_case(),
            TokenKind::Int(i) => {
                self.advance();
                Ok(Expr::new(ExprKind::Int(i), span))
            }
            TokenKind::Float(f) => {
                self.advance();
                Ok(Expr::new(ExprKind::Float(f), span))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::new(ExprKind::Str(s), span))
            }
            TokenKind::Symbol(s) => {
                self.advance();
                Ok(Expr::new(ExprKind::Sym(s), span))
            }
            TokenKind::IVar(name) => {
                self.advance();
                Ok(Expr::new(ExprKind::IVar(name), span))
            }
            TokenKind::GVar(name) => {
                self.advance();
                Ok(Expr::new(ExprKind::GVar(name), span))
            }
            TokenKind::Const(name) => {
                self.advance();
                Ok(Expr::new(ExprKind::Const(vec![name]), span))
            }
            TokenKind::Ident(name) => {
                self.advance();
                if self.check(&TokenKind::LParen) {
                    let args = self.parse_call_args()?;
                    let block = self.parse_optional_block()?;
                    let full = span.to(self.span());
                    Ok(self.make_call(None, name, args, block, full))
                } else if self.check(&TokenKind::LBrace) || self.check_kw(Kw::Do) {
                    let block = self.parse_optional_block()?;
                    let full = span.to(self.span());
                    Ok(Expr::new(ExprKind::Call { recv: None, name, args: vec![], block }, full))
                } else {
                    Ok(Expr::new(ExprKind::Ident(name), span))
                }
            }
            TokenKind::LParen => {
                self.advance();
                self.skip_newlines();
                let e = self.parse_stmt()?;
                self.skip_newlines();
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBracket => {
                self.advance();
                self.skip_newlines();
                let mut items = Vec::new();
                while !self.check(&TokenKind::RBracket) {
                    items.push(self.parse_expr()?);
                    self.skip_newlines();
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                    self.skip_newlines();
                }
                let end = self.expect(&TokenKind::RBracket)?.span;
                Ok(Expr::new(ExprKind::Array(items), span.to(end)))
            }
            TokenKind::LBrace => {
                self.advance();
                let pairs = self.parse_hash_pairs(&TokenKind::RBrace)?;
                self.skip_newlines();
                let end = self.expect(&TokenKind::RBrace)?.span;
                Ok(Expr::new(ExprKind::Hash(pairs), span.to(end)))
            }
            TokenKind::Arrow => {
                self.advance();
                let mut params = Vec::new();
                if self.eat(&TokenKind::LParen) {
                    while !self.check(&TokenKind::RParen) {
                        match self.advance().kind {
                            TokenKind::Ident(name) => params.push(name),
                            other => {
                                return Err(self.error(format!(
                                    "expected lambda parameter, found {}",
                                    other.describe()
                                )))
                            }
                        }
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                }
                self.expect(&TokenKind::LBrace)?;
                let body = self.parse_body(&[])?;
                self.skip_newlines();
                let end = self.expect(&TokenKind::RBrace)?.span;
                Ok(Expr::new(ExprKind::Lambda(Block { params, body }), span.to(end)))
            }
            other => Err(self.error(format!("unexpected {}", other.describe()))),
        }
    }

    fn stmt_ends_here(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Newline
                | TokenKind::Eof
                | TokenKind::RBrace
                | TokenKind::RParen
                | TokenKind::Keyword(Kw::End)
        )
    }

    fn parse_if(&mut self, negated: bool) -> PResult<Expr> {
        let start = self.advance().span; // if | unless
        let cond = self.parse_kw_bool()?;
        let cond = if negated {
            let span = cond.span;
            Expr::new(ExprKind::Not(Box::new(cond)), span)
        } else {
            cond
        };
        self.eat_kw(Kw::Then);
        self.skip_newlines();
        let body = self.parse_body(&[Kw::End, Kw::Else, Kw::Elsif])?;
        let mut arms = vec![CondArm { cond, body }];
        let mut else_body = Vec::new();
        loop {
            self.skip_newlines();
            if self.check_kw(Kw::Elsif) {
                self.advance();
                let cond = self.parse_kw_bool()?;
                self.eat_kw(Kw::Then);
                self.skip_newlines();
                let body = self.parse_body(&[Kw::End, Kw::Else, Kw::Elsif])?;
                arms.push(CondArm { cond, body });
            } else if self.check_kw(Kw::Else) {
                self.advance();
                self.skip_newlines();
                else_body = self.parse_body(&[Kw::End])?;
            } else {
                break;
            }
        }
        let end = self.expect_kw(Kw::End)?.span;
        Ok(Expr::new(ExprKind::If { arms, else_body }, start.to(end)))
    }

    fn parse_while(&mut self) -> PResult<Expr> {
        let start = self.expect_kw(Kw::While)?.span;
        let cond = self.parse_kw_bool()?;
        self.eat_kw(Kw::Do);
        self.skip_newlines();
        let body = self.parse_body(&[Kw::End])?;
        let end = self.expect_kw(Kw::End)?.span;
        Ok(Expr::new(ExprKind::While { cond: Box::new(cond), body }, start.to(end)))
    }

    fn parse_case(&mut self) -> PResult<Expr> {
        let start = self.expect_kw(Kw::Case)?.span;
        let subject = self.parse_expr()?;
        self.skip_newlines();
        let mut arms = Vec::new();
        let mut else_body = Vec::new();
        loop {
            self.skip_newlines();
            if self.check_kw(Kw::When) {
                self.advance();
                let cond = self.parse_expr()?;
                self.eat_kw(Kw::Then);
                self.skip_newlines();
                let body = self.parse_body(&[Kw::End, Kw::Else, Kw::When])?;
                arms.push(CondArm { cond, body });
            } else if self.check_kw(Kw::Else) {
                self.advance();
                self.skip_newlines();
                else_body = self.parse_body(&[Kw::End])?;
            } else {
                break;
            }
        }
        let end = self.expect_kw(Kw::End)?.span;
        Ok(Expr::new(ExprKind::Case { subject: Box::new(subject), arms, else_body }, start.to(end)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_method() {
        let src = r#"
class User < ActiveRecord::Base
  def self.available?(name, email)
    return false if reserved?(name)
    return true if !User.exists?({ username: name })
    return User.joins(:emails).exists?({ staged: true, username: name, emails: { email: email } })
  end
end
"#;
        let prog = parse_program_strict(src).unwrap();
        let classes = prog.classes();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].name, "User");
        assert_eq!(classes[0].superclass.as_deref(), Some("ActiveRecord::Base"));
        let m = prog.find_method("User", "available?").unwrap();
        assert!(m.singleton);
        assert_eq!(m.params.len(), 2);
        assert_eq!(m.body.len(), 3);
    }

    #[test]
    fn parses_figure2_method() {
        let src = r#"
def image_url()
  page[:info].first
end
"#;
        let prog = parse_program_strict(src).unwrap();
        let m = prog.find_method("Object", "image_url").unwrap();
        assert_eq!(m.body.len(), 1);
        match &m.body[0].kind {
            ExprKind::Call { name, recv, .. } => {
                assert_eq!(name, "first");
                assert!(recv.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_type_cast() {
        let e = parse_expr(r#"RDL.type_cast(page[:info], "Array<String>").first"#).unwrap();
        match &e.kind {
            ExprKind::Call { recv: Some(recv), name, .. } => {
                assert_eq!(name, "first");
                assert!(matches!(recv.kind, ExprKind::TypeCast { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_index_assignment() {
        let e = parse_expr("a[0] = 'one'").unwrap();
        match &e.kind {
            ExprKind::Assign { target: LValue::Index { .. }, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_blocks() {
        let e = parse_expr("array.map { |val| val + 1 }").unwrap();
        match &e.kind {
            ExprKind::Call { name, block: Some(block), .. } => {
                assert_eq!(name, "map");
                assert_eq!(block.params, vec!["val".to_string()]);
                assert_eq!(block.body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        let e = parse_expr("items.each do |x, y|\n x\n y\nend").unwrap();
        match &e.kind {
            ExprKind::Call { name, block: Some(block), .. } => {
                assert_eq!(name, "each");
                assert_eq!(block.params.len(), 2);
                assert_eq!(block.body.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_chained_query() {
        let e =
            parse_expr("Post.includes(:topic)\n  .where('topics.title IN (SELECT 1)', self.id)")
                .unwrap();
        match &e.kind {
            ExprKind::Call { name, args, .. } => {
                assert_eq!(name, "where");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_if_elsif_else() {
        let e = parse_expr("if a\n 1\nelsif b\n 2\nelse\n 3\nend").unwrap();
        match &e.kind {
            ExprKind::If { arms, else_body } => {
                assert_eq!(arms.len(), 2);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_unless_and_postfix() {
        let e = parse_expr("return false unless ok?()").unwrap();
        assert!(matches!(e.kind, ExprKind::If { .. }));
        let e = parse_expr("x = 1 if y").unwrap();
        assert!(matches!(e.kind, ExprKind::If { .. }));
    }

    #[test]
    fn parses_case_when() {
        let e = parse_expr("case x\nwhen 1\n 'a'\nwhen 2\n 'b'\nelse\n 'c'\nend").unwrap();
        match &e.kind {
            ExprKind::Case { arms, else_body, .. } => {
                assert_eq!(arms.len(), 2);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_hash_with_fat_arrows_and_labels() {
        let e = parse_expr("{ :action => prompt, name: 'x' }").unwrap();
        match &e.kind {
            ExprKind::Hash(pairs) => assert_eq!(pairs.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_label_args_as_trailing_hash() {
        let e = parse_expr("User.exists?(username: name)").unwrap();
        match &e.kind {
            ExprKind::Call { name, args, .. } => {
                assert_eq!(name, "exists?");
                assert_eq!(args.len(), 1);
                assert!(matches!(args[0].kind, ExprKind::Hash(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_operator_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match &e.kind {
            ExprKind::Call { name, args, .. } => {
                assert_eq!(name, "+");
                assert!(matches!(&args[0].kind, ExprKind::Call { name, .. } if name == "*"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_keyword_and_or() {
        let e = parse_expr("a and b or c").unwrap();
        assert!(matches!(e.kind, ExprKind::BoolOp { op: BinOp::Or, .. }));
    }

    #[test]
    fn parses_while_loop() {
        let e = parse_expr("while x < 10\n x = x + 1\nend").unwrap();
        assert!(matches!(e.kind, ExprKind::While { .. }));
    }

    #[test]
    fn parses_lambda() {
        let e = parse_expr("->(x) { x + 1 }").unwrap();
        assert!(matches!(e.kind, ExprKind::Lambda(_)));
    }

    #[test]
    fn parses_op_assign() {
        let e = parse_expr("x += 1").unwrap();
        assert!(matches!(e.kind, ExprKind::OpAssign { .. }));
        let e = parse_expr("@memo ||= compute()").unwrap();
        assert!(matches!(e.kind, ExprKind::OpAssign { .. }));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_expr("def").is_err());
        assert!(parse_program_strict("class Foo\n def m\n end").is_err());
        assert!(parse_expr("1 +").is_err());
    }

    #[test]
    fn broken_method_poisons_only_itself() {
        let src = "def good()\n  1\nend\ndef bad()\n  x = 1 +\nend\ndef tail()\n  2\nend\n";
        let (prog, diags) = parse_program(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "PARSE0002");
        assert!(diags[0].message.contains("`bad`"), "{diags:?}");
        let methods = prog.methods();
        assert_eq!(methods.len(), 3, "{methods:?}");
        let bad = prog.find_method("Object", "bad").unwrap();
        assert!(bad.poisoned);
        assert!(matches!(bad.body[..], [Expr { kind: ExprKind::Error, .. }]));
        let good = prog.find_method("Object", "good").unwrap();
        assert!(!good.poisoned);
        assert_eq!(good.body.len(), 1);
        let tail = prog.find_method("Object", "tail").unwrap();
        assert!(!tail.poisoned, "recovery must resynchronize before `tail`");
        assert_eq!(tail.body.len(), 1);
    }

    #[test]
    fn broken_method_in_class_spares_its_siblings() {
        let src = "class C\n  def a()\n    1\n  end\n  def b()\n    2 +\n  end\n  def c()\n    3\n  end\nend\n";
        let (prog, diags) = parse_program(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(prog.classes().len(), 1);
        assert!(prog.find_method("C", "b").unwrap().poisoned);
        assert!(!prog.find_method("C", "a").unwrap().poisoned);
        assert!(!prog.find_method("C", "c").unwrap().poisoned);
    }

    #[test]
    fn resync_skips_nested_blocks_inside_the_broken_method() {
        // The broken method contains nested well-formed `if`/`while`/`do`
        // blocks; their `end`s must not terminate the poison region early.
        let src = "def broken()\n  if x\n    while y\n      z\n    end\n  end\n  items.each do |i|\n    i\n  end\n  1 +\nend\ndef after()\n  4\nend\n";
        let (prog, diags) = parse_program(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(prog.methods().len(), 2, "{:?}", prog.methods());
        assert!(!prog.find_method("Object", "after").unwrap().poisoned);
    }

    #[test]
    fn broken_statement_recovers_at_the_next_line() {
        let src = "x = ]\ny = 2\n";
        let (prog, diags) = parse_program(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "PARSE0001");
        assert_eq!(prog.items.len(), 2, "{prog:?}");
        assert!(matches!(prog.items[0], Item::Expr(Expr { kind: ExprKind::Error, .. })));
        assert!(matches!(prog.items[1], Item::Expr(Expr { kind: ExprKind::Assign { .. }, .. })));
    }

    #[test]
    fn unterminated_def_poisons_to_eof_without_losing_earlier_items() {
        let (prog, diags) = parse_program("def a()\n 1\nend\ndef b()\n x =\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(prog.methods().len(), 2);
        assert!(!prog.find_method("Object", "a").unwrap().poisoned);
        assert!(prog.find_method("Object", "b").unwrap().poisoned);
    }

    #[test]
    fn lex_errors_surface_as_parse_diagnostics_with_recovery() {
        let (prog, diags) = parse_program("def m()\n  s = 'unterminated\nend\n");
        assert!(!diags.is_empty());
        assert!(diags.iter().any(|d| d.code == "LEX0001"), "{diags:?}");
        // The placeholder string still parses into a method body.
        assert_eq!(prog.methods().len(), 1);
    }

    #[test]
    fn parses_nested_classes_and_methods() {
        let src = "class A\n class B\n def m()\n 1\n end\n end\n def n()\n 2\n end\nend";
        let prog = parse_program_strict(src).unwrap();
        assert_eq!(prog.classes().len(), 2);
        assert_eq!(prog.methods().len(), 2);
        assert!(prog.find_method("B", "m").is_some());
        assert!(prog.find_method("A", "n").is_some());
    }

    #[test]
    fn parses_attr_assignment() {
        let e = parse_expr("user.name = 'bob'").unwrap();
        assert!(matches!(e.kind, ExprKind::Assign { target: LValue::Attr { .. }, .. }));
    }

    #[test]
    fn parses_yield_and_break() {
        let prog = parse_program_strict("def each_page()\n yield(1)\n break\nend").unwrap();
        let m = prog.find_method("Object", "each_page").unwrap();
        assert_eq!(m.body.len(), 2);
    }
}
