//! Minimal, offline-friendly stand-in for the [criterion] benchmarking
//! crate, exposing just the API surface the `bench` crate uses:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The container this workspace builds in has no network access to
//! crates.io, so the real criterion (and its statistics / plotting stack)
//! cannot be vendored. This shim keeps the benches compiling and *running* —
//! it performs a warm-up pass and reports the mean wall-clock time per
//! iteration over `sample_size` samples — while staying API-compatible so
//! the real crate can be swapped back in by pointing the workspace
//! `criterion` dependency at crates.io.
//!
//! [criterion]: https://docs.rs/criterion

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into(), sample_size: 100 }
    }

    /// Registers a stand-alone benchmark (group of one).
    pub fn bench_function<F>(&mut self, name: impl Into<BenchmarkIdOrName>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        g.finish();
        self
    }
}

/// Identifies one benchmark within a group by function and parameter name.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A two-part id, e.g. `BenchmarkId::new("comp_types", "Discourse")`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    /// A one-part id from a displayable parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            f.write_str(&self.parameter)
        } else if self.parameter.is_empty() {
            f.write_str(&self.function)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkIdOrName>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label =
            if self.name.is_empty() { id.to_string() } else { format!("{}/{}", self.name, id) };
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size) };
        // Warm-up pass, then the timed samples.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        report(&label, &b.samples);
        self
    }

    /// Runs a benchmark that closes over a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkIdOrName>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(&mut self) {}
}

/// Either a plain string name or a structured [`BenchmarkId`].
pub struct BenchmarkIdOrName(String);

impl fmt::Display for BenchmarkIdOrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for BenchmarkIdOrName {
    fn from(s: &str) -> Self {
        BenchmarkIdOrName(s.to_string())
    }
}

impl From<String> for BenchmarkIdOrName {
    fn from(s: String) -> Self {
        BenchmarkIdOrName(s)
    }
}

impl From<BenchmarkId> for BenchmarkIdOrName {
    fn from(id: BenchmarkId) -> Self {
        BenchmarkIdOrName(id.to_string())
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{label:<60} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({} samples)",
        samples.len()
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` that runs each group, mirroring criterion's
/// macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::new("with", 7), &7, |b, n| b.iter(|| black_box(n * 2)));
        g.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }

    criterion_group!(shim_benches, trivial);

    #[test]
    fn group_macro_expands_and_runs() {
        shim_benches();
    }

    #[test]
    fn id_display_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
