//! The corpus-wide lint report, asserted against a checked-in snapshot.
//!
//! Runs the dataflow lint suite over every app (sequentially and in
//! parallel — the two reports must be byte-identical), prints each app's
//! `LINT01xx` warnings, and compares the output against
//! `crates/corpus/examples/lints.expected`.  A diff means either a lint
//! regressed or a deliberate change forgot to regenerate the snapshot
//! (rerun with `UPDATE_LINTS=1` to rewrite it).  CI runs this example, so
//! the snapshot is load-bearing.

use std::path::PathBuf;

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/lints.expected")
}

fn lint_report(threads: usize) -> String {
    let mut out = String::new();
    for app in corpus::apps::all() {
        let env = app.build_env();
        let (program, _sources, _diags) = app.parse();
        // Effect summaries make `LINT0105` interprocedural: taint follows
        // calls through each callee's summary (same pass the harness runs).
        let seed = corpus::seed_map(&env);
        let summaries = corpus::effects_pass(&program, &seed, threads);
        let bag = corpus::lint_bag(&corpus::lints::lint_pass_with_summaries(
            &program,
            Some(&summaries),
            threads,
        ));
        out.push_str(&format!("{}: {} lint warnings\n", app.name, bag.warning_count()));
        for d in bag.iter() {
            out.push_str(&format!("    {d}\n"));
        }
    }
    out
}

fn main() {
    let sequential = lint_report(1);
    let parallel = lint_report(4);
    assert_eq!(sequential, parallel, "parallel lint report diverged from sequential");
    print!("{sequential}");

    let path = snapshot_path();
    if std::env::var("UPDATE_LINTS").is_ok() {
        std::fs::write(&path, &sequential).expect("write snapshot");
        println!("snapshot updated: {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} (run with UPDATE_LINTS=1)", path.display()));
    assert_eq!(
        sequential, expected,
        "lint report diverged from the checked-in snapshot; rerun with UPDATE_LINTS=1 if the \
         change is intentional"
    );
    println!("lint report matches the checked-in snapshot");
}
