//! The corpus-wide effect-summary report, asserted against a checked-in
//! snapshot.
//!
//! Runs interprocedural effect inference (termination / purity / taint,
//! bottom-up over the condensed call graph) over every app — sequentially
//! and in parallel, which must render byte-identically — prints each app's
//! summaries, and compares the output against
//! `crates/corpus/examples/effects.expected`.  A diff means either the
//! inference regressed or a deliberate change forgot to regenerate the
//! snapshot (rerun with `UPDATE_EFFECTS=1` to rewrite it).  CI runs this
//! example, so the snapshot is load-bearing.

use std::path::PathBuf;

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/effects.expected")
}

fn effect_report(threads: usize) -> String {
    let mut out = String::new();
    for app in corpus::apps::all() {
        let env = app.build_env();
        let (program, _sources, _diags) = app.parse();
        let seed = corpus::seed_map(&env);
        let summaries = corpus::effects_pass(&program, &seed, threads);
        out.push_str(&format!(
            "{}: {} methods in {} SCCs\n",
            app.name,
            summaries.len(),
            summaries.scc_count()
        ));
        for line in summaries.render().lines() {
            out.push_str(&format!("    {line}\n"));
        }
    }
    out
}

fn main() {
    let sequential = effect_report(1);
    let parallel = effect_report(4);
    assert_eq!(sequential, parallel, "parallel effect report diverged from sequential");
    print!("{sequential}");

    let path = snapshot_path();
    if std::env::var("UPDATE_EFFECTS").is_ok() {
        std::fs::write(&path, &sequential).expect("write snapshot");
        println!("snapshot updated: {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} (run with UPDATE_EFFECTS=1)", path.display()));
    assert_eq!(
        sequential, expected,
        "effect report diverged from the checked-in snapshot; rerun with UPDATE_EFFECTS=1 if \
         the change is intentional"
    );
    println!("effect report matches the checked-in snapshot");
}
