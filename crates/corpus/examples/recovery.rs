//! Error-resilience demo, asserted against a checked-in snapshot.
//!
//! Three degradation paths, each expected to be silent and surgical:
//! a syntax error poisons one method per corpus app while the rest of the
//! file parses and checks; an injected worker panic degrades one parallel
//! harness row to an `ICE0001` placeholder without aborting the others;
//! seeded corruption of the on-disk check cache always loads as a silent
//! cold re-check.  Output is compared against
//! `crates/corpus/examples/recovery.expected` (rerun with
//! `UPDATE_RECOVERY=1` to rewrite it).  CI runs this example, so the
//! snapshot is load-bearing.

use std::path::PathBuf;

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/recovery.expected")
}

/// The first method whose poisoning is clean: exactly one `PARSE0002` and
/// every method slot still present in the recovered parse.
fn breakable_method(app: &corpus::App) -> Option<(String, String)> {
    let (base_prog, _, _) = app.parse();
    let base_count = base_prog.methods().len();
    for (_, def) in &base_prog.methods() {
        let Some(broken) = corpus::with_broken_method(app.source, &def.name) else { continue };
        let (prog, _, diags) = app.parse_with_source(&broken);
        if diags.len() == 1 && diags[0].code == "PARSE0002" && prog.methods().len() == base_count {
            return Some((def.name.clone(), broken));
        }
    }
    None
}

fn parser_recovery_section() -> String {
    let mut out = String::from("== parser recovery: one poisoned method per app ==\n");
    for app in corpus::apps::all() {
        let env = app.build_env();
        let (program, _, _) = app.parse();
        let healthy = comprdl::TypeChecker::new(&env, &program, comprdl::CheckOptions::default())
            .check_labeled("app")
            .methods_checked();

        let (name, broken_src) =
            breakable_method(&app).expect("every corpus app has a breakable method");
        let (broken_prog, _, diags) = app.parse_with_source(&broken_src);
        let checked =
            comprdl::TypeChecker::new(&env, &broken_prog, comprdl::CheckOptions::default())
                .check_labeled("app")
                .methods_checked();
        out.push_str(&format!(
            "{}: broke `{}` -> {} slots intact, {} of {} labeled methods still checked\n",
            app.name,
            name,
            broken_prog.methods().len(),
            checked,
            healthy,
        ));
        for d in &diags {
            out.push_str(&format!("    {d}\n"));
        }
    }
    out
}

fn panic_isolation_section() -> String {
    let mut out = String::from("== worker panic isolation ==\n");
    let plan = corpus::FaultPlan::none().with_app("Journey");
    // The injected panic is expected; keep its backtrace out of the output.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let rows =
        corpus::table2_parallel_faulted(&std::sync::Arc::new(comprdl::SharedMemo::new()), &plan)
            .expect("a worker panic must not abort the harness");
    std::panic::set_hook(prev);

    let ice_rows: Vec<_> =
        rows.iter().filter(|r| r.diagnostics.iter().any(|d| d.code == "ICE0001")).collect();
    out.push_str(&format!(
        "injected a panic into `Journey`: {}/{} rows returned, {} degraded\n",
        rows.len(),
        rows.len(),
        ice_rows.len()
    ));
    for row in &ice_rows {
        for d in row.diagnostics.iter() {
            out.push_str(&format!("    ICE: {d}\n"));
        }
    }
    out
}

fn cache_corruption_section() -> String {
    let mut out = String::from("== cache corruption durability ==\n");
    let apps = corpus::apps::all();
    let app = &apps[0];
    let mut cache = comprdl::CheckCache::new();
    let memo = std::sync::Arc::new(comprdl::SharedMemo::new());
    corpus::evaluate_app_incremental(app, None, &mut cache, &memo).expect("cold run");

    let dir = std::env::temp_dir().join(format!("recovery-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("check-cache.bin");
    cache.save(&path).expect("save cache");
    let pristine = std::fs::read(&path).expect("read cache");

    let seeds = 12u64;
    let mut cold = 0usize;
    for seed in 0..seeds {
        std::fs::write(&path, comprdl::corrupt(&pristine, seed)).expect("write damaged cache");
        let loaded = comprdl::CheckCache::load(&path);
        if loaded == cache {
            // The seeded damage happened to rewrite bytes with their own
            // values; the checksum (rightly) still accepts the file.
        } else {
            assert!(
                loaded.is_empty(),
                "seed {seed}: a corrupted cache must load empty, never partially"
            );
            cold += 1;
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    out.push_str(&format!(
        "{cold}/{seeds} seeded corruptions detected -> silent cold re-check; \
         the rest left the bytes intact (0 panics, 0 wrong replays)\n"
    ));
    out
}

fn main() {
    let report = format!(
        "{}{}{}",
        parser_recovery_section(),
        panic_isolation_section(),
        cache_corruption_section()
    );
    print!("{report}");

    let path = snapshot_path();
    if std::env::var("UPDATE_RECOVERY").is_ok() {
        std::fs::write(&path, &report).expect("write snapshot");
        println!("snapshot updated: {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} (run with UPDATE_RECOVERY=1)", path.display()));
    assert_eq!(
        report, expected,
        "recovery report diverged from the checked-in snapshot; rerun with UPDATE_RECOVERY=1 \
         if the change is intentional"
    );
    println!("recovery report matches the checked-in snapshot");
}
