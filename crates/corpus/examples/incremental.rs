//! Incremental corpus re-checking against the persistent on-disk cache.
//!
//! Loads `CHECK_CACHE.bin` from the repository root (override the path with
//! the `CHECK_CACHE` environment variable), runs the whole corpus
//! incrementally, prints how many method verdicts each app re-checked
//! versus replayed, asserts the incremental run's deterministic report is
//! byte-identical to a from-scratch run, and saves the refreshed cache
//! atomically.
//!
//! Run it twice from fresh processes: the first (cold) run checks
//! everything and writes the cache; the second (warm) run replays
//! everything and prints `re-checked 0/N method verdicts`,
//! `re-linted 0/N` and `re-summarized 0/N`.  CI does exactly that and
//! greps for the `re-checked 0/`, `re-linted 0/` and `re-summarized 0/`
//! lines.

use comprdl::CheckCache;
use std::path::PathBuf;

fn cache_path() -> PathBuf {
    if let Ok(path) = std::env::var("CHECK_CACHE") {
        return PathBuf::from(path);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../CHECK_CACHE.bin")
}

fn main() {
    let path = cache_path();
    let mut cache = CheckCache::load(&path);
    let label = if cache.is_empty() { "cold" } else { "warm" };
    println!("== Incremental corpus re-check ({label} cache: {}) ==", path.display());

    let (rows, stats) = corpus::table2_incremental(&mut cache).expect("incremental corpus run");

    let mut checked = 0usize;
    let mut total = 0usize;
    let mut linted = 0usize;
    let mut lint_total = 0usize;
    let mut summarized = 0usize;
    let mut summary_total = 0usize;
    for s in &stats {
        checked += s.comp.checked() + s.plain.checked();
        total += s.comp.total + s.plain.total;
        linted += s.lint.checked();
        lint_total += s.lint.total;
        summarized += s.effects.checked();
        summary_total += s.effects.total;
        println!(
            "{:12} comp: re-checked {}/{}  plain-RDL: re-checked {}/{}  lints: re-linted {}/{}  \
             effects: re-summarized {}/{}",
            s.app,
            s.comp.checked(),
            s.comp.total,
            s.plain.checked(),
            s.plain.total,
            s.lint.checked(),
            s.lint.total,
            s.effects.checked(),
            s.effects.total,
        );
    }
    println!("re-checked {checked}/{total} method verdicts across the corpus");
    println!("re-linted {linted}/{lint_total} lint verdicts across the corpus");
    println!("re-summarized {summarized}/{summary_total} effect summaries across the corpus");

    // The observable soundness gate: an incremental run must be
    // indistinguishable from a from-scratch run on every deterministic
    // column, diagnostic and runtime blame.
    let scratch = corpus::table2().expect("from-scratch corpus run");
    assert_eq!(
        corpus::stable_report(&rows),
        corpus::stable_report(&scratch),
        "incremental corpus output diverged from the from-scratch run"
    );
    println!("report byte-identical to the from-scratch run");

    cache.save(&path).expect("save check cache");
    println!("cache saved to {}", path.display());
}
