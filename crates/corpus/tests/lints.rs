//! Property tests for the lint suite over the corpus: parallel linting must
//! be byte-identical to sequential, and layout-only edits must replay every
//! lint verdict from the persistent cache (semhash-keyed) with re-anchored
//! spans — through a real temp file, like a fresh process would.

use comprdl::persist::content_hash;
use comprdl::CheckCache;
use corpus::{findings_to_records, lint_bag, lint_pass, record_to_diagnostic, with_layout_noise};
use diagnostics::DiagnosticBag;

const SEEDS: [u64; 3] = [3, 0x5eed, 0xdead_beef];

fn render(bag: &DiagnosticBag) -> String {
    bag.iter().map(|d| format!("{d}\n")).collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lints-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The parallel lint pass splits methods across workers but merges results
/// back into method order; the rendered warnings must be byte-identical to
/// a sequential pass for every app and any worker count.
#[test]
fn parallel_lint_findings_are_byte_identical_to_sequential() {
    let mut total_findings = 0usize;
    for app in corpus::apps::all() {
        let (program, _, _) = app.parse();
        let baseline = lint_bag(&lint_pass(&program, 1));
        total_findings += baseline.len();
        for threads in [2, 3, 4, 8] {
            assert_eq!(
                render(&baseline),
                render(&lint_bag(&lint_pass(&program, threads))),
                "{} with {threads} workers: parallel lint output diverged",
                app.name
            );
        }
    }
    assert!(total_findings >= 5, "the corpus seeds at least five lint findings");
}

/// Layout-only noise (seeded comments, blank lines, trailing whitespace)
/// moves every byte offset but no semantic hash, so a cache recorded
/// against the original source must replay **every** lint verdict for the
/// noisy source — spans re-anchored against the noisy parse — rendering
/// byte-identically to linting the noisy source from scratch.  The cache
/// round-trips through a real file in between, like a fresh process.
#[test]
fn layout_noise_replays_every_lint_verdict_through_a_real_cache_file() {
    let dir = temp_dir("replay");
    for app in corpus::apps::all() {
        // Cold: lint the original parse and persist the verdicts.
        let (program, _, _) = app.parse();
        let files = vec![content_hash(app.source), content_hash(app.test_suite)];
        let methods = program.methods();
        let records: Vec<_> = methods
            .iter()
            .map(|(owner, def)| {
                let fresh = analysis::lint_method(owner, def);
                (owner.clone(), *def, fresh.semhash, findings_to_records(&fresh))
            })
            .collect();
        let mut cache = CheckCache::new();
        cache.record_lints(app.name, files, &records);
        let path = dir.join(format!("{}.bin", app.name.replace(['.', '/'], "_")));
        cache.save(&path).expect("save cache");

        for seed in SEEDS {
            let noisy_src = with_layout_noise(app.source, seed);
            assert_ne!(noisy_src, app.source, "{}: noise must actually edit", app.name);
            let (noisy, _, noisy_diags) = app.parse_with_source(&noisy_src);
            assert!(
                noisy_diags.is_empty(),
                "{} seed {seed}: noisy source broke: {:?}",
                app.name,
                noisy_diags
            );
            let noisy_files = vec![content_hash(&noisy_src), content_hash(app.test_suite)];

            // Fresh-process simulation: load from disk, replay everything.
            let loaded = CheckCache::load(&path);
            let mut replayed = DiagnosticBag::new();
            for (owner, def) in &noisy.methods() {
                let semhash = ruby_syntax::method_hash(def);
                let recs = loaded
                    .replay_lints(app.name, &noisy_files, owner, def, semhash)
                    .unwrap_or_else(|| {
                        panic!(
                            "{} seed {seed}: layout-only noise must replay `{}.{}`",
                            app.name, owner, def.name
                        )
                    });
                replayed.extend(recs.iter().map(record_to_diagnostic));
            }
            replayed.sort_by_span_then_code();

            // The oracle: lint the noisy parse from scratch.
            let fresh = lint_bag(&lint_pass(&noisy, 1));
            assert_eq!(
                render(&fresh),
                render(&replayed),
                "{} seed {seed}: replayed lint warnings diverged from a fresh lint of the \
                 noisy source",
                app.name
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A semantic edit (an injected assignment) moves the edited method's
/// semantic hash, so its lint verdict must refuse to replay while every
/// other method's verdict still does.
#[test]
fn semantic_edit_invalidates_exactly_the_edited_methods_lints() {
    let apps = corpus::apps::all();
    let app = apps.iter().find(|a| a.name == "Journey").expect("Journey app");
    let (program, _, _) = app.parse();
    let files = vec![content_hash(app.source), content_hash(app.test_suite)];
    let records: Vec<_> = program
        .methods()
        .iter()
        .map(|(owner, def)| {
            let fresh = analysis::lint_method(owner, def);
            (owner.clone(), *def, fresh.semhash, findings_to_records(&fresh))
        })
        .collect();
    let mut cache = CheckCache::new();
    cache.record_lints(app.name, files, &records);

    let edited_src = corpus::with_method_edit(app.source, "prompt").expect("prompt has a def");
    let (edited, _, _) = app.parse_with_source(&edited_src);
    let edited_files = vec![content_hash(&edited_src), content_hash(app.test_suite)];
    let mut misses = Vec::new();
    for (owner, def) in &edited.methods() {
        let semhash = ruby_syntax::method_hash(def);
        if cache.replay_lints(app.name, &edited_files, owner, def, semhash).is_none() {
            misses.push(def.name.clone());
        }
    }
    assert_eq!(misses, vec!["prompt".to_string()], "only the edited method re-lints");
}
