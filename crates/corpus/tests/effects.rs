//! Property and end-to-end tests for interprocedural effect summaries over
//! the corpus: the analysis-side call graph must be covered by the
//! `semdep` dependency graph (the soundness condition for Merkle-keyed
//! replay), warm runs must re-summarize nothing and render byte-identical
//! summaries, and a method edit must re-summarize exactly the methods
//! whose Merkle hash moved.

use comprdl::semdep::DepGraph;
use comprdl::CheckCache;
use corpus::{
    effects_pass, evaluate_app_incremental, replay_baseline, seed_map, stable_report,
    summaries_to_records, with_method_edit,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("effects-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Every call edge the effect inference propagates along must appear in
/// the `semdep` dependency graph.  That containment is what makes
/// Merkle-keyed effect replay sound: if a summary can depend on a callee
/// the graph does not know about, an edit to that callee would replay a
/// stale summary.  (The graph is allowed to over-approximate — it also
/// tracks annotations and treats every identifier as a potential call —
/// so equality is not expected, only coverage.)
#[test]
fn analysis_call_graph_is_covered_by_the_dependency_graph() {
    let mut covered_edges = 0usize;
    for app in corpus::apps::all() {
        let env = app.build_env();
        let (program, _, _) = app.parse();
        let summaries = effects_pass(&program, &seed_map(&env), 1);
        let graph = DepGraph::build(&env, &program);
        let graph_edges: BTreeSet<_> = graph.method_call_edges().into_iter().collect();
        for (caller, callee) in summaries.call_edges() {
            if caller == callee {
                continue; // semdep drops self-edges; recursion is still
                          // invalidated via the method's own base hash.
            }
            assert!(
                graph_edges.contains(&(caller.clone(), callee.clone())),
                "{}: inference edge {caller:?} -> {callee:?} is not in the dependency graph",
                app.name
            );
            covered_edges += 1;
        }
    }
    assert!(covered_edges > 20, "the corpus must exercise real call edges: {covered_edges}");
}

/// Parallel fact extraction must be output-invisible: the sequential and
/// parallel inferences render byte-identical summaries for every app.
#[test]
fn parallel_inference_renders_byte_identical_to_sequential() {
    for app in corpus::apps::all() {
        let env = app.build_env();
        let (program, _, _) = app.parse();
        let seed = seed_map(&env);
        let baseline = effects_pass(&program, &seed, 1).render();
        for threads in [2, 3, 4, 8] {
            assert_eq!(
                baseline,
                effects_pass(&program, &seed, threads).render(),
                "{} with {threads} workers: parallel summaries diverged",
                app.name
            );
        }
    }
}

/// Warm replay through a real cache file: a cold run records every
/// summary; a fresh-process load then replays **all** of them (zero
/// misses), and summaries reconstituted from the baseline render
/// byte-identically to a cold inference.
#[test]
fn warm_replay_resummarizes_nothing_and_renders_byte_identically() {
    let dir = temp_dir("warm");
    for app in corpus::apps::all() {
        let env = app.build_env();
        let (program, _, _) = app.parse();
        let seed = seed_map(&env);
        let graph = DepGraph::build(&env, &program);
        let cold = effects_pass(&program, &seed, 1);

        let mut cache = CheckCache::new();
        cache.record_effects(app.name, summaries_to_records(&cold, &graph));
        let path = dir.join(format!("{}.bin", app.name.replace(['.', '/'], "_")));
        cache.save(&path).expect("save cache");

        let loaded = CheckCache::load(&path);
        assert_eq!(
            loaded.effect_method_count(app.name),
            program.methods().len(),
            "{}: every method's summary must persist",
            app.name
        );
        let fixed = replay_baseline(&loaded, app.name, &program, &graph);
        assert_eq!(fixed.len(), program.methods().len(), "{}: full replay expected", app.name);
        let (warm, resummarized) =
            analysis::ProgramSummaries::infer_with_baseline(&program, &seed, &fixed);
        assert_eq!(resummarized, 0, "{}: warm run must re-summarize nothing", app.name);
        assert_eq!(
            cold.render(),
            warm.render(),
            "{}: replayed summaries diverged from cold inference",
            app.name
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A semantic edit to one method re-summarizes exactly the methods whose
/// Merkle hash moved — the edited method, its SCC peers and its transitive
/// callers — while everything else replays, and the incremental Table 2
/// row still matches a from-scratch run of the edited source byte for
/// byte.
#[test]
fn method_edit_resummarizes_exactly_the_merkle_diff() {
    let dir = temp_dir("edit");
    let path = dir.join("check-cache.bin");

    let apps = corpus::apps::all();
    let app = apps.iter().find(|a| a.name == "Discourse").expect("Discourse app");
    // Edit the taint-bait callee: its caller (`search_titled`) must be
    // re-summarized too, or the interprocedural LINT0105 could go stale.
    let edited_src = with_method_edit(app.source, "find_titled").expect("find_titled has a def");

    // Record a cold incremental run of the original source.
    let memo = Arc::new(comprdl::SharedMemo::new());
    let mut cache = CheckCache::load(&path);
    let (_, cold_stats) = evaluate_app_incremental(app, None, &mut cache, &memo).expect("cold run");
    assert_eq!(cold_stats.effects.checked(), cold_stats.effects.total, "cold summarizes all");
    cache.save(&path).expect("save");

    // The expected re-summarize set is the Merkle diff across the edit.
    let env = app.build_env();
    let (program, _, _) = app.parse();
    let (edited_program, _, _) = app.parse_with_source(&edited_src);
    let before: BTreeMap<_, _> =
        DepGraph::build(&env, &program).method_merkles().into_iter().collect();
    let after: BTreeMap<_, _> =
        DepGraph::build(&env, &edited_program).method_merkles().into_iter().collect();
    let expected: BTreeSet<_> = after
        .iter()
        .filter(|(id, merkle)| before.get(*id) != Some(merkle))
        .map(|(id, _)| id.clone())
        .collect();
    let moved_names: BTreeSet<&str> = expected.iter().map(|(_, name, _)| name.as_str()).collect();
    assert!(moved_names.contains("find_titled"), "the edited method moves: {expected:?}");
    assert!(
        moved_names.contains("search_titled"),
        "the caller of the edited method moves: {expected:?}"
    );
    assert!(expected.len() < before.len(), "a one-method edit must not move every hash");

    // Warm incremental run of the edited source: the effects pass
    // re-summarizes exactly the moved set.
    let mut warm = CheckCache::load(&path);
    let (edited_row, stats) = evaluate_app_incremental(app, Some(&edited_src), &mut warm, &memo)
        .expect("edited incremental run");
    let resummarized: BTreeSet<_> = stats.effects.checked_methods.iter().cloned().collect();
    assert_eq!(
        resummarized, expected,
        "re-summarized set must be exactly the methods whose Merkle hash moved"
    );
    assert_eq!(stats.effects.replayed, stats.effects.total - expected.len());

    // Byte-identity gate against a from-scratch run of the edited source.
    let (scratch_row, _) = evaluate_app_incremental(
        app,
        Some(&edited_src),
        &mut CheckCache::new(),
        &Arc::new(comprdl::SharedMemo::new()),
    )
    .expect("from-scratch run of the edited app");
    assert_eq!(
        stable_report(std::slice::from_ref(&edited_row)),
        stable_report(std::slice::from_ref(&scratch_row)),
        "edited incremental row diverged from the edited from-scratch row"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
