//! Corpus-scale gates for the type-core fast paths: the interned subtype /
//! fingerprint / render paths must be observationally identical to the
//! structural-walk oracles, and nothing user-facing may leak a raw store id.
//!
//! These live in the corpus crate (not `rdl-types`) because the strongest
//! gate is end-to-end: run the full eight-app evaluation with the verdict
//! cache on and off and require byte-identical diagnostic bags and blame
//! renderings.

use corpus::{apps, corpus_diagnostics, render_runtime_blames, stable_report, table2};
use rdl_types::{verdict_cache, ClassTable, HashKey, SingVal, Subtyper, Type, TypeStore};
use test_rng::Rng;

/// Serializes the tests that flip the process-global verdict-cache switch,
/// and restores the previous state on drop (panic-safe) so an assertion
/// failure in one test cannot leave the cache off for the rest of the run.
static CACHE_TOGGLE: std::sync::Mutex<()> = std::sync::Mutex::new(());

struct CacheSwitch {
    was: bool,
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl CacheSwitch {
    fn set(enabled: bool) -> Self {
        let lock = CACHE_TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
        CacheSwitch { was: verdict_cache::set_enabled(enabled), _lock: lock }
    }
}

impl Drop for CacheSwitch {
    fn drop(&mut self) {
        verdict_cache::set_enabled(self.was);
    }
}

fn leaf(rng: &mut Rng) -> Type {
    match rng.below(12) {
        0 => Type::Top,
        1 => Type::Bot,
        2 => Type::Bool,
        3 => Type::nominal("String"),
        4 => Type::nominal("Integer"),
        5 => Type::nominal("Symbol"),
        6 => Type::nominal("Numeric"),
        7 => Type::sym("emails"),
        8 => Type::int(7),
        9 => Type::nil(),
        10 => Type::Singleton(SingVal::True),
        _ => Type::Var("t".to_string()),
    }
}

/// A random type that, unlike the `rdl-types` proptests, mixes in
/// store-backed tuples, finite hashes and const strings so the oracles are
/// exercised on both sides of the interned / store-backed split.
fn arb_type(rng: &mut Rng, store: &mut TypeStore, depth: u32) -> Type {
    if depth == 0 || rng.below(3) == 0 {
        return leaf(rng);
    }
    match rng.below(6) {
        0 => Type::array(arb_type(rng, store, depth - 1)),
        1 => Type::hash(arb_type(rng, store, depth - 1), arb_type(rng, store, depth - 1)),
        2 => {
            let n = 1 + rng.below(3) as usize;
            Type::union((0..n).map(|_| arb_type(rng, store, depth - 1)))
        }
        3 => {
            let n = rng.below(3) as usize;
            let elems = (0..n).map(|_| arb_type(rng, store, depth - 1)).collect();
            store.new_tuple(elems)
        }
        4 => {
            let n = rng.below(3) as usize;
            let entries = (0..n)
                .map(|i| (HashKey::Sym(format!("k{i}")), arb_type(rng, store, depth - 1)))
                .collect();
            store.new_finite_hash(entries)
        }
        _ => store.new_const_string(format!("s{}", rng.below(4))),
    }
}

/// The interned fast paths agree with the structural oracles on random
/// types **including store-backed ones**, which take the slow path through
/// the per-store caches rather than the global interner.
#[test]
fn cached_type_core_matches_structural_oracles_with_store_backed_types() {
    let classes = ClassTable::with_builtins();
    let sub = Subtyper::new(&classes);
    let mut store = TypeStore::new();
    let mut rng = Rng::new(0x7E57_C0DE);
    for case in 0..600 {
        let a = arb_type(&mut rng, &mut store, 3);
        let b = arb_type(&mut rng, &mut store, 3);
        assert_eq!(
            sub.is_subtype(&store, &a, &b),
            sub.is_subtype_uncached(&store, &a, &b),
            "case {case}: cached subtype verdict diverged for {} <= {}",
            store.render(&a),
            store.render(&b),
        );
        assert_eq!(
            store.fingerprint(&a),
            store.fingerprint_uncached(&a),
            "case {case}: cached fingerprint diverged for {}",
            store.render_uncached(&a),
        );
        assert_eq!(
            store.render(&a),
            store.render_uncached(&a),
            "case {case}: cached render diverged"
        );
    }
}

/// Collects every rendered, user-facing artifact a corpus run produces: the
/// stable report, every diagnostic, and every blame rendered as a source
/// snippet.
fn rendered_corpus_output(rows: &[corpus::Table2Row]) -> String {
    let mut out = stable_report(rows);
    for (app, row) in apps::all().iter().zip(rows) {
        out.push_str(&render_runtime_blames(app, row));
    }
    for (_, bag) in corpus_diagnostics(rows) {
        for d in bag.iter() {
            out.push_str(&format!("{d}\n"));
        }
    }
    out
}

/// The end-to-end gate from the issue: running the full eight-app corpus
/// with the verdict cache disabled must produce byte-identical diagnostic
/// bags and blame renderings to a cached run.
#[test]
fn corpus_output_is_byte_identical_with_the_verdict_cache_on_and_off() {
    let uncached = {
        let _off = CacheSwitch::set(false);
        table2().expect("uncached corpus run")
    };
    let cached = {
        let _on = CacheSwitch::set(true);
        table2().expect("cached corpus run")
    };
    assert_eq!(cached.len(), 8, "eight corpus apps");
    assert_eq!(
        rendered_corpus_output(&cached),
        rendered_corpus_output(&uncached),
        "the verdict cache changed observable corpus output"
    );
    let rendered_bag = |bag: &diagnostics::DiagnosticBag| -> Vec<String> {
        bag.iter().map(|d| d.to_string()).collect()
    };
    for (c, u) in cached.iter().zip(&uncached) {
        assert_eq!(
            rendered_bag(&c.diagnostics),
            rendered_bag(&u.diagnostics),
            "{}: diagnostic bag diverged",
            c.program
        );
        assert_eq!(
            rendered_bag(&c.runtime_blames),
            rendered_bag(&u.runtime_blames),
            "{}: blame sequence diverged",
            c.program
        );
        assert_eq!(c.casts, u.casts, "{}: cast count diverged", c.program);
    }
}

/// No user-facing rendering may fall back to the raw store-id notation
/// (`#tuple3`, `#fhash0`, `#cstr1`): those ids are meaningless outside the
/// store that minted them and used to leak through diagnostic paths that
/// formatted a [`Type`] with `Display` instead of [`TypeStore::render`].
#[test]
fn rendered_corpus_output_never_leaks_raw_store_ids() {
    let rows = table2().expect("corpus run");
    let output = rendered_corpus_output(&rows);
    for marker in ["#tuple", "#fhash", "#cstr", "TypeId("] {
        for (pos, _) in output.match_indices(marker) {
            let tail = &output[pos + marker.len()..];
            let next_is_digit = tail.chars().next().is_some_and(|c| c.is_ascii_digit());
            assert!(
                !(next_is_digit || marker == "TypeId("),
                "raw id leaked into rendered corpus output near: {:?}",
                &output[pos.saturating_sub(60)..(pos + 40).min(output.len())]
            );
        }
    }
}

/// Join edge cases from the issue: empty slices, nested unions, and type
/// variables.
#[test]
fn lub_edge_cases() {
    let classes = ClassTable::with_builtins();
    let store = TypeStore::new();
    let sub = Subtyper::new(&classes);

    // Empty sequence joins to %bot; a singleton sequence joins to itself.
    assert_eq!(sub.lub_all(&store, &[]), Type::Bot);
    assert_eq!(sub.lub_all(&store, &[Type::nominal("String")]), Type::nominal("String"));

    // Nested unions flatten, dedup, and join order-insensitively.
    let nested = Type::union([
        Type::nominal("Integer"),
        Type::union([Type::nominal("String"), Type::nominal("Symbol")]),
    ]);
    let flat =
        Type::union([Type::nominal("Symbol"), Type::nominal("Integer"), Type::nominal("String")]);
    assert_eq!(nested, flat);
    let joined = sub.lub_all(
        &store,
        &[
            Type::nominal("String"),
            Type::union([Type::nominal("Integer"), Type::nominal("String")]),
            Type::nominal("Symbol"),
        ],
    );
    assert!(sub.is_subtype(&store, &Type::nominal("String"), &joined));
    assert!(sub.is_subtype(&store, &Type::nominal("Integer"), &joined));
    assert!(sub.is_subtype(&store, &Type::nominal("Symbol"), &joined));
    assert_eq!(joined, sub.lub(&store, &joined, &joined), "join is idempotent");

    // Type variables: a variable joined with itself stays bound to the same
    // variable; distinct variables join to a union containing both.
    let t = Type::Var("t".to_string());
    let u = Type::Var("u".to_string());
    assert_eq!(sub.lub(&store, &t, &t), t);
    let tu = sub.lub(&store, &t, &u);
    assert!(sub.is_subtype(&store, &t, &tu), "t must flow into lub(t, u) = {tu}");
    assert!(sub.is_subtype(&store, &u, &tu), "u must flow into lub(t, u) = {tu}");
    assert!(!sub.is_subtype(&store, &t, &u), "distinct vars must stay distinct");

    // Bot is the identity of the join; Top absorbs.
    assert_eq!(sub.lub(&store, &Type::Bot, &t), t);
    assert_eq!(sub.lub(&store, &Type::Top, &t), Type::Top);
}
