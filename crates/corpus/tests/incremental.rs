//! Property and end-to-end tests for incremental re-checking: semantic
//! hashes must ignore layout, Merkle hashes must invalidate exactly the
//! transitive dependents of an edit, and the on-disk cache must replay
//! byte-identical output across fresh loads.

use comprdl::persist::content_hash;
use comprdl::semdep::{env_hash, DepGraph, MethodId};
use comprdl::{CheckCache, CheckOptions, TypeChecker};
use corpus::{
    evaluate_app_incremental, stable_report, table2_incremental, with_layout_noise,
    with_method_edit,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("incremental-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Satellite (c), part 1: seeded whitespace/comment/span-only edits leave
/// every method of every corpus app with an identical semantic hash — and
/// therefore an identical Merkle hash.
#[test]
fn layout_noise_preserves_every_semantic_hash_in_every_app() {
    for app in corpus::apps::all() {
        let env = app.build_env();
        let (program, _, _) = app.parse();
        let baseline_hashes = program.method_hashes();
        assert!(!baseline_hashes.is_empty(), "{}: no methods hashed", app.name);
        let baseline_merkles = DepGraph::build(&env, &program).method_merkles();

        for seed in [3u64, 0x5eed, 0xdead_beef] {
            let noisy_src = with_layout_noise(app.source, seed);
            assert_ne!(noisy_src, app.source, "{}: noise must actually edit", app.name);
            assert_ne!(
                content_hash(&noisy_src),
                content_hash(app.source),
                "{}: content hash must see the edit",
                app.name
            );
            let (noisy, _, noisy_diags) = app.parse_with_source(&noisy_src);
            assert!(
                noisy_diags.is_empty(),
                "{} seed {seed}: noisy source broke: {:?}",
                app.name,
                noisy_diags
            );
            let noisy_hashes = noisy.method_hashes();
            assert_eq!(
                baseline_hashes.len(),
                noisy_hashes.len(),
                "{} seed {seed}: method set changed",
                app.name
            );
            for (a, b) in baseline_hashes.iter().zip(&noisy_hashes) {
                assert_eq!(
                    (&a.owner, &a.name, a.singleton, a.hash),
                    (&b.owner, &b.name, b.singleton, b.hash),
                    "{} seed {seed}: layout-only noise moved a semantic hash",
                    app.name
                );
            }
            assert_eq!(
                baseline_merkles,
                DepGraph::build(&env, &noisy).method_merkles(),
                "{} seed {seed}: layout-only noise moved a Merkle hash",
                app.name
            );
        }
    }
}

/// Satellite (c), part 2: a semantic edit to one type-level helper moves the
/// Merkle hash of **exactly** the methods whose verdicts transitively
/// depend on it — and an incremental run that replays the rest still
/// produces byte-identical diagnostics to a from-scratch run of the edited
/// state.
#[test]
fn helper_edit_invalidates_exactly_its_transitive_dependents() {
    // `elem` is the root of the stdlib helper chain (arr/idx/first_elem all
    // reach it), so every array-typed comp slot depends on it.  The edit —
    // a harmless local assignment prepended to its body — preserves helper
    // behaviour, so verdicts do not change, only hashes do.
    let edited_helpers =
        with_method_edit(comprdl::stdlib::RUBY_HELPERS, "elem").expect("elem has a def line");

    let mut covered_dependents = 0usize;
    for app in corpus::apps::all() {
        let env = app.build_env();
        let mut env2 = app.build_env();
        env2.register_helpers_ruby(&edited_helpers);
        assert_eq!(
            env_hash(&env),
            env_hash(&env2),
            "{}: helper bodies are graph-tracked, not env-hashed",
            app.name
        );

        let (program, _, _) = app.parse();
        let g1 = DepGraph::build(&env, &program);
        let g2 = DepGraph::build(&env2, &program);
        let dependents: BTreeSet<_> = g1.helper_dependents("elem").into_iter().collect();
        let before: BTreeMap<_, _> = g1.method_merkles().into_iter().collect();
        let after: BTreeMap<_, _> = g2.method_merkles().into_iter().collect();
        assert_eq!(before.len(), after.len(), "{}: method set changed", app.name);
        for (id, merkle) in &before {
            assert_eq!(
                after[id] != *merkle,
                dependents.contains(id),
                "{}: {id:?} moved iff it depends on `elem`",
                app.name
            );
        }
        covered_dependents += dependents.len();

        // Replay soundness under the edit: record a run against the original
        // helpers, then re-check incrementally with the edited ones.  The
        // non-dependents replay, the dependents are re-checked for real, and
        // the merged diagnostics match a from-scratch run byte for byte.
        let selected = TypeChecker::labeled_methods(&env, &program, "app");
        let files = vec![content_hash(app.source), content_hash(app.test_suite)];
        let cold = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("app");
        let mut cache = CheckCache::new();
        let frozen: Vec<_> = selected
            .iter()
            .zip(&cold.methods)
            .map(|((owner, def), verdict)| {
                let merkle = g1.merkle(owner, &def.name, def.singleton).expect("in graph");
                (owner.clone(), *def, merkle, verdict)
            })
            .collect();
        cache.record_app(app.name, env_hash(&env), files.clone(), &frozen, &cold.store);

        let mut replayed = Vec::new();
        let mut misses = Vec::new();
        let mut store = rdl_types::TypeStore::new();
        for (owner, def) in &selected {
            let merkle = g2.merkle(owner, &def.name, def.singleton).expect("in graph");
            match cache.replay(
                app.name,
                &env2,
                env_hash(&env2),
                &files,
                owner,
                def,
                merkle,
                &mut store,
            ) {
                Some(result) => replayed.push(((owner.clone(), def.name.clone()), result)),
                None => misses.push((owner.clone(), *def)),
            }
        }
        let missed_ids: BTreeSet<_> = misses
            .iter()
            .map(|(owner, def)| (owner.clone(), def.name.clone(), def.singleton))
            .collect();
        // Only labeled methods are checked (and therefore replayed);
        // unlabeled fixture methods can depend on `elem` too, but they never
        // enter the cache.
        let labeled: BTreeSet<MethodId> = selected
            .iter()
            .map(|(owner, def)| (owner.clone(), def.name.clone(), def.singleton))
            .collect();
        let expected_misses: BTreeSet<_> = dependents.intersection(&labeled).cloned().collect();
        assert_eq!(
            missed_ids, expected_misses,
            "{}: the re-check set must be exactly `elem`'s labeled dependents",
            app.name
        );

        let rechecked =
            TypeChecker::new(&env2, &program, CheckOptions::default()).check_methods(&misses);
        let scratch =
            TypeChecker::new(&env2, &program, CheckOptions::default()).check_labeled("app");
        let render = |errors: Vec<&comprdl::TypeErrorInfo>| -> String {
            errors.iter().map(|e| format!("{e:?}\n")).collect()
        };
        let mut incremental_errors: Vec<&comprdl::TypeErrorInfo> =
            replayed.iter().flat_map(|(_, m)| m.errors.iter()).collect();
        incremental_errors.extend(rechecked.errors());
        let mut scratch_errors = scratch.errors();
        let key = |e: &&comprdl::TypeErrorInfo| format!("{e:?}");
        incremental_errors.sort_by_key(key);
        scratch_errors.sort_by_key(key);
        assert_eq!(
            render(incremental_errors),
            render(scratch_errors),
            "{}: incremental diagnostics diverged after the helper edit",
            app.name
        );
    }
    assert!(
        covered_dependents > 0,
        "at least one corpus app must have methods depending on `elem`"
    );
}

/// The end-to-end acceptance path: cold corpus run → save → fresh-process
/// load → warm run re-checks **zero** methods with byte-identical output →
/// one-method edit re-checks exactly that method plus its transitive
/// dependents, still byte-identical to a from-scratch run of the edited
/// source — runtime blames included (the edited app, Sequel, blames by
/// design).
#[test]
fn disk_cache_replays_byte_identical_and_edits_invalidate_minimally() {
    let dir = temp_dir("e2e");
    let path = dir.join("check-cache.bin");

    // Cold: empty cache, everything checked; matches the from-scratch
    // harness byte for byte.
    let mut cache = CheckCache::load(&path);
    assert!(cache.is_empty(), "no file yet, must load empty");
    let (cold_rows, cold_stats) = table2_incremental(&mut cache).expect("cold corpus run");
    for s in &cold_stats {
        assert_eq!(s.comp.replayed, 0, "{}: cold run must replay nothing", s.app);
        assert_eq!(s.comp.checked(), s.comp.total, "{}", s.app);
    }
    let scratch_rows = corpus::table2().expect("from-scratch corpus run");
    assert_eq!(
        stable_report(&cold_rows),
        stable_report(&scratch_rows),
        "cold incremental output diverged from the from-scratch harness"
    );
    cache.save(&path).expect("save cache");

    // Warm: a fresh load (fresh-process simulation) replays every verdict.
    let mut warm_cache = CheckCache::load(&path);
    assert!(!warm_cache.is_empty(), "saved cache must load");
    let (warm_rows, warm_stats) = table2_incremental(&mut warm_cache).expect("warm corpus run");
    for s in &warm_stats {
        assert!(
            s.all_replayed(),
            "{}: warm run must re-check zero methods: comp {:?} plain {:?}",
            s.app,
            s.comp,
            s.plain
        );
    }
    assert_eq!(
        stable_report(&warm_rows),
        stable_report(&cold_rows),
        "warm replayed output diverged from the cold run"
    );

    // Edit one method of the blaming app and re-run it incrementally
    // against the warm cache.
    let apps = corpus::apps::all();
    let app = apps.iter().find(|a| a.name == "Sequel").expect("Sequel app");
    let env = app.build_env();
    let (program, _, _) = app.parse();
    let selected = TypeChecker::labeled_methods(&env, &program, "app");
    let (edited_name, edited_src) = selected
        .iter()
        .find_map(|(_, def)| {
            with_method_edit(app.source, &def.name).map(|src| (def.name.clone(), src))
        })
        .expect("some labeled method has an editable def line");

    // The expected invalidation set is the Merkle diff between the original
    // and edited parses: the edited method plus its transitive callers.
    let (edited_program, _, _) = app.parse_with_source(&edited_src);
    let before: BTreeMap<_, _> =
        DepGraph::build(&env, &program).method_merkles().into_iter().collect();
    let after: BTreeMap<_, _> =
        DepGraph::build(&env, &edited_program).method_merkles().into_iter().collect();
    let labeled: BTreeSet<_> = selected
        .iter()
        .map(|(owner, def)| (owner.clone(), def.name.clone(), def.singleton))
        .collect();
    let expected: BTreeSet<_> =
        labeled.iter().filter(|id| before.get(*id) != after.get(*id)).cloned().collect();
    assert!(
        expected.iter().any(|(_, name, _)| name == &edited_name),
        "the edited method itself must be invalidated"
    );
    assert!(expected.len() < labeled.len(), "a one-method edit must not invalidate every method");

    let memo = Arc::new(comprdl::SharedMemo::new());
    let (edited_row, edited_stats) =
        evaluate_app_incremental(app, Some(&edited_src), &mut warm_cache, &memo)
            .expect("incremental run of the edited app");
    for (label, pass) in [("comp", &edited_stats.comp), ("plain", &edited_stats.plain)] {
        let checked: BTreeSet<_> = pass.checked_methods.iter().cloned().collect();
        assert_eq!(
            checked, expected,
            "{label}: re-checked set must be exactly the edited method + dependents"
        );
        assert_eq!(pass.replayed, pass.total - expected.len(), "{label}: the rest replays");
    }

    // Byte-identity gate, blames included: a from-scratch run (empty cache)
    // of the same edited source must render the same row.
    let mut empty = CheckCache::new();
    let (scratch_row, scratch_stats) = evaluate_app_incremental(
        app,
        Some(&edited_src),
        &mut empty,
        &Arc::new(comprdl::SharedMemo::new()),
    )
    .expect("from-scratch run of the edited app");
    assert_eq!(scratch_stats.comp.replayed, 0);
    assert_eq!(
        stable_report(std::slice::from_ref(&edited_row)),
        stable_report(std::slice::from_ref(&scratch_row)),
        "edited incremental row diverged from the edited from-scratch row"
    );
    assert!(
        !edited_row.runtime_blames.is_empty(),
        "Sequel's suite blames by design — the gate must cover blame output"
    );

    // The refreshed cache now validates the edited source: another fresh
    // load replays the edited app fully.
    warm_cache.save(&path).expect("re-save cache");
    let mut reloaded = CheckCache::load(&path);
    let (_, again) =
        evaluate_app_incremental(app, Some(&edited_src), &mut reloaded, &memo).expect("re-run");
    assert!(again.all_replayed(), "the refreshed cache must replay the edited app: {again:?}");

    let _ = std::fs::remove_dir_all(&dir);
}
