//! Robustness tests for the error-resilient front end: seeded byte-mutation
//! fuzzing of the recovering parser, diagnostic severity partitioning,
//! per-app syntax-error isolation (one broken method must not perturb any
//! other method's verdicts), worker panic isolation in the parallel
//! harness, and incremental break/repair/corruption durability.

use corpus::{
    evaluate_app_incremental, evaluate_app_shared, stable_report, table2_parallel_faulted,
    table2_parallel_shared, with_broken_method, App, FaultPlan,
};
use std::sync::Arc;

type MethodKey = (String, String, bool);

fn method_keys(program: &ruby_syntax::Program) -> Vec<MethodKey> {
    program
        .methods()
        .iter()
        .map(|(owner, def)| (owner.clone(), def.name.clone(), def.singleton))
        .collect()
}

fn rendered(bag: &diagnostics::DiagnosticBag) -> Vec<String> {
    bag.iter().map(|d| d.to_string()).collect()
}

fn fresh_memo() -> Arc<comprdl::SharedMemo> {
    Arc::new(comprdl::SharedMemo::new())
}

/// Satellite (a): seeded byte-level mutations of every corpus source must
/// never panic the lexer or parser, and whenever a mutation actually breaks
/// the syntax the recovering parse must say so with at least one
/// diagnostic (`diags.is_empty()` ⇔ the strict parse succeeds).
#[test]
fn seeded_byte_mutations_never_panic_and_are_always_diagnosed() {
    let mut mutants = 0usize;
    let mut diagnosed = 0usize;
    for (app_idx, app) in corpus::apps::all().iter().enumerate() {
        let original = app.full_source();
        for seed in 0..24u64 {
            let mut rng = test_rng::Rng::new(((app_idx as u64) << 32) | (seed << 1) | 1);
            let mut bytes = original.clone().into_bytes();
            let edits = 1 + rng.below(3) as usize;
            for _ in 0..edits {
                let pos = rng.below(bytes.len() as u64) as usize;
                // Printable ASCII keeps the mutant valid UTF-8.
                bytes[pos] = 0x21 + rng.below(0x5e) as u8;
            }
            let mutated = String::from_utf8(bytes).expect("ascii-only mutation");
            if mutated == original {
                continue;
            }
            mutants += 1;

            // The recovering entry points must survive arbitrary garbage...
            let (program, diags) = ruby_syntax::parse_program(&mutated);
            // ...and so must everything downstream that walks the
            // recovered tree (placeholder nodes included).
            let _ = program.method_hashes();
            for (_, def) in &program.methods() {
                let _ = ruby_syntax::method_hash(def);
            }

            let strict_ok = ruby_syntax::parse_program_strict(&mutated).is_ok();
            assert_eq!(
                diags.is_empty(),
                strict_ok,
                "{} seed {seed}: recovery diagnostics disagree with the strict parse",
                app.name
            );
            if !diags.is_empty() {
                diagnosed += 1;
                for d in &diags {
                    assert!(
                        d.is_error(),
                        "{}: recovery diagnostic must be an error: {d}",
                        app.name
                    );
                    assert!(
                        d.code.starts_with("PARSE") || d.code.starts_with("LEX"),
                        "{}: unexpected recovery code {}",
                        app.name,
                        d.code
                    );
                }
            }
        }
    }
    assert!(mutants > 100, "the mutation loop must actually produce mutants: {mutants}");
    assert!(
        diagnosed * 10 >= mutants,
        "random byte damage should regularly break syntax: {diagnosed}/{mutants} diagnosed"
    );
}

/// Satellite (b): the severity partition is pinned.  Parse/lex recovery
/// diagnostics and internal harness errors are errors (they count in
/// `error_count`), lint findings stay warnings, and the three families
/// never cross-contaminate a bag's counters.
#[test]
fn severity_partition_is_pinned_across_parse_ice_and_lint_codes() {
    let mut bag = diagnostics::DiagnosticBag::new();
    bag.push(diagnostics::Diagnostic::error("PARSE0001", "broken statement"));
    bag.push(diagnostics::Diagnostic::error("PARSE0002", "broken method"));
    bag.push(diagnostics::Diagnostic::error("LEX0001", "broken token"));
    bag.push(diagnostics::Diagnostic::error("ICE0001", "worker panicked"));
    bag.push(diagnostics::Diagnostic::warning("LINT0101", "maybe-unassigned"));
    assert_eq!(bag.error_count(), 4, "parse/lex/ICE codes are all errors");
    assert_eq!(bag.warning_count(), 1, "lints stay warnings");
    assert_eq!(bag.len(), 5);

    // The parser really emits that partition.
    let (_, diags) = ruby_syntax::parse_program("def m()\n  )\nend\n");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "PARSE0002");
    assert!(diags[0].is_error());
}

/// Checks one broken-source candidate for *surgical* poisoning: exactly one
/// `PARSE0002`, the expected method slots (a poisoned def still parses as a
/// placeholder), and every other verdict — diagnostics, lints, runtime
/// blames — byte-identical to the healthy baseline.  Returns the faulted
/// row on success.
fn try_surgical(
    app: &App,
    baseline: &corpus::Table2Row,
    base_keys: &[MethodKey],
    broken_src: &str,
) -> Option<corpus::Table2Row> {
    let (prog, _, diags) = app.parse_with_source(broken_src);
    if diags.len() != 1 || diags[0].code != "PARSE0002" {
        return None;
    }
    // Every original method slot survives (the probe fallback adds one).
    let keys: Vec<MethodKey> = method_keys(&prog)
        .into_iter()
        .filter(|(_, name, _)| name != "__recovery_probe__")
        .collect();
    if keys != base_keys {
        return None;
    }
    if prog.methods().iter().filter(|(_, d)| d.poisoned).count() != 1 {
        return None;
    }
    // The suite may genuinely need the broken method's real body (a
    // poisoned call returns nil); such candidates fail here and are skipped.
    let (row, _) = evaluate_app_incremental(
        app,
        Some(broken_src),
        &mut comprdl::CheckCache::new(),
        &fresh_memo(),
    )
    .ok()?;
    let parse_count = row.diagnostics.iter().filter(|d| d.code.starts_with("PARSE")).count();
    if parse_count != 1 {
        return None;
    }
    let rest: Vec<String> = row
        .diagnostics
        .iter()
        .filter(|d| !d.code.starts_with("PARSE"))
        .map(|d| d.to_string())
        .collect();
    if rest != rendered(&baseline.diagnostics)
        || rendered(&row.lints) != rendered(&baseline.lints)
        || rendered(&row.runtime_blames) != rendered(&baseline.runtime_blames)
    {
        return None;
    }
    Some(row)
}

/// Finds a method whose poisoning is surgical (see [`try_surgical`]),
/// preferring to break a method the app already has; when every existing
/// method's body turns out to be load-bearing for the test suite, falls
/// back to appending a never-called probe method and breaking that.
fn surgical_break(
    app: &App,
    baseline: &corpus::Table2Row,
    base_keys: &[MethodKey],
) -> Option<(String, corpus::Table2Row)> {
    let (base_prog, _, _) = app.parse();
    for (_, def) in &base_prog.methods() {
        let Some(broken_src) = with_broken_method(app.source, &def.name) else { continue };
        if let Some(row) = try_surgical(app, baseline, base_keys, &broken_src) {
            return Some((broken_src, row));
        }
    }
    // Fallback: a fresh method nobody calls, appended so no existing span
    // moves.  It still exercises the whole recovery path — poisoned def,
    // skipped verdicts, one PARSE0002 — just without sacrificing a real
    // method's runtime behaviour.
    let probe_src = format!("{}\ndef __recovery_probe__()\n  )\nend\n", app.source);
    let row = try_surgical(app, baseline, base_keys, &probe_src)?;
    Some((probe_src, row))
}

/// The acceptance criterion: for **every** corpus app, injecting one syntax
/// error into one method yields exactly one parse diagnostic while every
/// other method's diagnostics, lints and blames stay byte-identical — and
/// the sequential and parallel evaluations of the broken app agree byte for
/// byte.
#[test]
fn one_broken_method_per_app_leaves_every_other_verdict_byte_identical() {
    for app in corpus::apps::all() {
        let (baseline, _) =
            evaluate_app_incremental(&app, None, &mut comprdl::CheckCache::new(), &fresh_memo())
                .unwrap_or_else(|e| panic!("{}: healthy baseline run failed: {e:?}", app.name));
        let (base_prog, _, base_diags) = app.parse();
        assert!(base_diags.is_empty(), "{}: healthy source must parse clean", app.name);
        let base_keys = method_keys(&base_prog);

        let (broken_src, row) = surgical_break(&app, &baseline, &base_keys).unwrap_or_else(|| {
            panic!("{}: no labeled method admits a surgical syntax break", app.name)
        });
        assert_eq!(
            row.diagnostics.error_count(),
            baseline.diagnostics.error_count() + 1,
            "{}: the broken run must add exactly one error",
            app.name
        );

        // Sequential vs parallel over the *broken* source: the recovery
        // path must be as deterministic as the healthy one.  (The app's
        // `source` field is `&'static str`; leaking the broken variant is
        // the test-only price of reusing the production harness entry.)
        let broken_app = App {
            name: app.name,
            group: app.group,
            db: app.db.clone(),
            annotate: app.annotate,
            source: Box::leak(broken_src.into_boxed_str()),
            test_suite: app.test_suite,
            extra_annotations: app.extra_annotations,
            expected_errors: app.expected_errors,
        };
        let seq = evaluate_app_shared(&broken_app, 1, &fresh_memo())
            .unwrap_or_else(|e| panic!("{}: sequential broken run failed: {e:?}", app.name));
        let par = evaluate_app_shared(&broken_app, 4, &fresh_memo())
            .unwrap_or_else(|e| panic!("{}: parallel broken run failed: {e:?}", app.name));
        assert_eq!(
            stable_report(std::slice::from_ref(&seq)),
            stable_report(std::slice::from_ref(&par)),
            "{}: sequential and parallel runs diverged on the broken source",
            app.name
        );
    }
}

/// Worker panic isolation: a seeded fault plan makes chosen apps' workers
/// panic mid-run; the harness must still return every row, the healthy rows
/// byte-identical to an unfaulted run, the faulted rows degraded to a
/// single distinctly-rendered `ICE0001` diagnostic.
#[test]
fn injected_worker_panics_degrade_to_ice_rows_without_aborting() {
    let baseline = table2_parallel_shared(&fresh_memo()).expect("unfaulted parallel run");
    let plan = FaultPlan::seeded(0xf001, 2);
    assert_eq!(plan.len(), 2);
    let faulted =
        table2_parallel_faulted(&fresh_memo(), &plan).expect("a worker panic must not abort");
    assert_eq!(faulted.len(), baseline.len());

    for (healthy, row) in baseline.iter().zip(&faulted) {
        assert_eq!(healthy.program, row.program, "row order is corpus order");
        if plan.panics_for(&row.program) {
            assert_eq!(row.diagnostics.len(), 1, "{}: one ICE diagnostic", row.program);
            let ice = row.diagnostics.iter().next().expect("ice diagnostic");
            assert_eq!(ice.code, "ICE0001");
            assert!(ice.is_error());
            assert!(
                ice.message.contains("injected fault"),
                "{}: the panic payload must survive into the message: {ice}",
                row.program
            );
            assert_eq!(row.dynamic_checks_run, 0, "{}: nothing was evaluated", row.program);
        } else {
            assert_eq!(
                stable_report(std::slice::from_ref(healthy)),
                stable_report(std::slice::from_ref(row)),
                "{}: healthy row diverged under fault injection elsewhere",
                row.program
            );
        }
    }

    let report = stable_report(&faulted);
    assert!(
        report.contains("    ICE: error[ICE0001]"),
        "ICE diagnostics must render on their own distinct line:\n{report}"
    );
}

/// Incremental durability, end to end: break one method → the warm run
/// re-checks exactly that method plus its Merkle dependents while the rest
/// replays; repair it → byte-identical to a never-broken cold run; corrupt
/// the on-disk cache with seeded damage → every seed silently degrades to a
/// cold re-check with byte-identical output.
#[test]
fn break_repair_and_cache_corruption_all_preserve_byte_identity() {
    use comprdl::semdep::DepGraph;
    use std::collections::BTreeSet;

    // The invalidation set a broken source *should* cause: the Merkle diff
    // over the labeled methods.  The broken def's semantic hash covers its
    // poison flag, so its transitive labeled callers move with it.
    let labeled_merkle_diff = |app: &App, broken_src: &str| -> (BTreeSet<MethodKey>, usize) {
        let env = app.build_env();
        let (program, _, _) = app.parse();
        let (broken_program, _, _) = app.parse_with_source(broken_src);
        let before: std::collections::BTreeMap<_, _> =
            DepGraph::build(&env, &program).method_merkles().into_iter().collect();
        let after: std::collections::BTreeMap<_, _> =
            DepGraph::build(&env, &broken_program).method_merkles().into_iter().collect();
        let labeled: BTreeSet<MethodKey> =
            comprdl::TypeChecker::labeled_methods(&env, &program, "app")
                .iter()
                .map(|(owner, def)| (owner.clone(), def.name.clone(), def.singleton))
                .collect();
        let moved =
            labeled.iter().filter(|id| before.get(*id) != after.get(*id)).cloned().collect();
        (moved, labeled.len())
    };

    // Find an app + method whose surgical break (the acceptance helper's
    // meaning of "surgical") also invalidates at least one *labeled*
    // method — i.e. a fixture with labeled callers — so the warm run below
    // actually exercises replay + re-check together.
    let apps = corpus::apps::all();
    let mut picked = None;
    'search: for app in &apps {
        let Ok((baseline, _)) =
            evaluate_app_incremental(app, None, &mut comprdl::CheckCache::new(), &fresh_memo())
        else {
            continue;
        };
        let (base_prog, _, _) = app.parse();
        let base_keys = method_keys(&base_prog);
        for (_, def) in &base_prog.methods() {
            let Some(broken_src) = with_broken_method(app.source, &def.name) else { continue };
            if try_surgical(app, &baseline, &base_keys, &broken_src).is_none() {
                continue;
            }
            let (moved, labeled_total) = labeled_merkle_diff(app, &broken_src);
            if !moved.is_empty() && moved.len() < labeled_total {
                picked = Some((app, broken_src, moved));
                break 'search;
            }
        }
    }
    let (app, broken_src, expected) =
        picked.expect("some corpus app has a surgically breakable fixture with labeled callers");

    // Cold run into a fresh cache.
    let memo = fresh_memo();
    let mut cache = comprdl::CheckCache::new();
    let (cold_row, cold_stats) =
        evaluate_app_incremental(app, None, &mut cache, &memo).expect("cold run");
    assert_eq!(cold_stats.comp.replayed, 0, "cold run replays nothing");

    // Warm run over the broken source: exactly the moved set re-checks.
    let (_, broken_stats) = evaluate_app_incremental(app, Some(&broken_src), &mut cache, &memo)
        .expect("broken warm run");
    let checked: BTreeSet<MethodKey> = broken_stats.comp.checked_methods.iter().cloned().collect();
    assert_eq!(checked, expected, "re-check set must be the broken method + Merkle dependents");
    assert_eq!(
        broken_stats.comp.replayed,
        broken_stats.comp.total - expected.len(),
        "every other method must replay"
    );

    // Repair: the next warm run over the healthy source is byte-identical
    // to the never-broken cold run (and re-checks the same moved set).
    let (repaired_row, repaired_stats) =
        evaluate_app_incremental(app, None, &mut cache, &memo).expect("repaired warm run");
    let rechecked: BTreeSet<MethodKey> =
        repaired_stats.comp.checked_methods.iter().cloned().collect();
    assert_eq!(rechecked, expected, "repairing moves the same Merkle set back");
    assert_eq!(
        stable_report(std::slice::from_ref(&repaired_row)),
        stable_report(std::slice::from_ref(&cold_row)),
        "repaired output must be byte-identical to a never-broken run"
    );

    // Seeded cache-file corruption: every seed loads silently (empty or
    // intact, never a panic) and the next run still renders byte-identical
    // to the cold row — a wrong replay would show up right here.
    let dir = std::env::temp_dir().join(format!("recovery-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("check-cache.bin");
    cache.save(&path).expect("save cache");
    let pristine = std::fs::read(&path).expect("read cache bytes");
    for seed in 0..6u64 {
        std::fs::write(&path, comprdl::corrupt(&pristine, seed)).expect("write corrupted cache");
        let mut damaged = comprdl::CheckCache::load(&path);
        let (row, _) = evaluate_app_incremental(app, None, &mut damaged, &fresh_memo())
            .unwrap_or_else(|e| panic!("seed {seed}: corrupted cache broke the run: {e:?}"));
        assert_eq!(
            stable_report(std::slice::from_ref(&row)),
            stable_report(std::slice::from_ref(&cold_row)),
            "seed {seed}: a corrupted cache must degrade to a cold re-check, not change output"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
