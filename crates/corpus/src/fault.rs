//! Seeded fault injection for the parallel harness.
//!
//! A [`FaultPlan`] names corpus apps whose evaluation worker should panic
//! mid-run.  [`crate::table2_parallel_faulted`] consults the plan inside
//! each worker thread: a planned (or genuine) panic is caught with
//! `catch_unwind` and converted into a placeholder [`crate::Table2Row`]
//! carrying one `ICE0001` diagnostic, so one crashing app can never abort
//! the rest of the suite.  The plan is deterministic in its seed, which is
//! what lets the robustness tests assert the exact set of degraded rows.

use std::collections::BTreeSet;

/// The diagnostic code for an internal harness error (a worker panic).
pub const ICE_CODE: &str = "ICE0001";

/// A deterministic plan of which apps' evaluation workers panic.
///
/// The default ([`FaultPlan::none`]) injects nothing and is the plan every
/// production entry point runs under.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    panic_apps: BTreeSet<String>,
}

impl FaultPlan {
    /// The empty plan: no injected faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// A seeded plan panicking the workers of `count` distinct apps, chosen
    /// deterministically from the corpus by `seed`.
    pub fn seeded(seed: u64, count: usize) -> Self {
        let mut rng = test_rng::Rng::new(seed | 1);
        let mut names: Vec<String> =
            crate::apps::all().iter().map(|a| a.name.to_string()).collect();
        let mut panic_apps = BTreeSet::new();
        for _ in 0..count.min(names.len()) {
            let i = rng.below(names.len() as u64) as usize;
            panic_apps.insert(names.swap_remove(i));
        }
        FaultPlan { panic_apps }
    }

    /// Adds one app by name to the panic set.
    pub fn with_app(mut self, name: &str) -> Self {
        self.panic_apps.insert(name.to_string());
        self
    }

    /// Whether this plan injects a panic into `app`'s worker.
    pub fn panics_for(&self, app: &str) -> bool {
        self.panic_apps.contains(app)
    }

    /// The planned app names, in sorted order.
    pub fn apps(&self) -> impl Iterator<Item = &str> {
        self.panic_apps.iter().map(String::as_str)
    }

    /// Number of apps the plan will panic.
    pub fn len(&self) -> usize {
        self.panic_apps.len()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.panic_apps.is_empty()
    }
}

/// Extracts a printable message from a `catch_unwind` payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_distinct() {
        let a = FaultPlan::seeded(7, 2);
        let b = FaultPlan::seeded(7, 2);
        assert_eq!(a.apps().collect::<Vec<_>>(), b.apps().collect::<Vec<_>>());
        assert_eq!(a.len(), 2);
        let corpus: BTreeSet<String> =
            crate::apps::all().iter().map(|x| x.name.to_string()).collect();
        for name in a.apps() {
            assert!(corpus.contains(name), "planned app {name} is not in the corpus");
        }
    }

    #[test]
    fn empty_plan_panics_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        for app in crate::apps::all() {
            assert!(!plan.panics_for(app.name));
        }
    }
}
