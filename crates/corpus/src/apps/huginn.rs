//! The Huginn analogue: agents that monitor events, backed by an
//! ActiveRecord `agents` table.

use crate::app::App;
use comprdl::CompRdl;
use db_types::{ColumnType, DbRegistry};

const SOURCE: &str = r#"
class Agent < ActiveRecord::Base
  def self.seed(rows)
    @rows = rows
  end

  def self.rows()
    @rows || []
  end

  def self.where(cond, arg = nil)
    @filtered = rows().select { |r| cond.all? { |k, v| r[k] == v } }
    self
  end

  def self.pluck(col)
    (@filtered || rows()).map { |r| r[col] }
  end

  def self.count(col = nil)
    (@filtered || rows()).length()
  end

  def self.exists?(cond = nil)
    rows().any? { |r| cond.all? { |k, v| r[k] == v } }
  end

  # --- methods selected for type checking ---------------------------------
  def self.enabled_names()
    Agent.where({ disabled: false }).pluck(:name)
  end

  def self.disabled_count()
    Agent.where({ disabled: true }).count()
  end

  def self.scheduled?(schedule)
    Agent.exists?({ schedule: schedule, disabled: false })
  end

  # Lint bait (LINT0101): `label` is only assigned when the agent is
  # scheduled, but read on every path.  Unlabeled and never called, so it
  # changes no Table 2 column except the lint count.
  def self.describe_schedule(schedule)
    if Agent.scheduled?(schedule)
      label = 'scheduled'
    end
    label
  end
end
"#;

const TEST_SUITE: &str = r#"
Agent.seed([
  { id: 1, name: 'weather', schedule: 'hourly', disabled: false },
  { id: 2, name: 'rss', schedule: 'daily', disabled: false },
  { id: 3, name: 'old-agent', schedule: 'daily', disabled: true }
])
assert_equal(['weather', 'rss'], Agent.enabled_names())
assert_equal(1, Agent.disabled_count())
assert(Agent.scheduled?('hourly'))
assert(!Agent.scheduled?('weekly'))
6.times { |i|
  assert_equal(2, Agent.enabled_names().length())
}
"#;

fn schema() -> DbRegistry {
    let mut db = DbRegistry::new();
    db.add_table(
        "agents",
        &[
            ("id", ColumnType::Integer),
            ("name", ColumnType::String),
            ("schedule", ColumnType::String),
            ("disabled", ColumnType::Boolean),
        ],
    );
    db.add_model("Agent", "agents");
    db
}

fn annotate(env: &mut CompRdl) {
    env.type_sig_singleton("Agent", "rows", "() -> Array<Hash<Symbol, Object>>", None);
    env.type_sig_singleton("Agent", "enabled_names", "() -> Array<Object>", Some("app"));
    env.type_sig_singleton("Agent", "disabled_count", "() -> Integer", Some("app"));
    env.type_sig_singleton("Agent", "scheduled?", "(String) -> %bool", Some("app"));
}

/// Builds the Huginn app.
pub fn app() -> App {
    App {
        name: "Huginn",
        group: "Rails Applications",
        db: Some(schema()),
        annotate,
        source: SOURCE,
        test_suite: TEST_SUITE,
        extra_annotations: 1,
        expected_errors: 0,
    }
}
