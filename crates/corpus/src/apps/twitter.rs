//! The Twitter-gem analogue: streaming API bindings over event hashes.

use crate::app::App;
use comprdl::CompRdl;

const SOURCE: &str = r#"
class TwitterStream
  def initialize(handle)
    @handle = handle
  end

  # --- runtime fixture: one streamed event --------------------------------
  def next_event()
    { id: 91827364, text: 'comp types are neat', lang: 'en',
      user: { screen_name: 'plt_fan', followers: 1204 },
      entities: { hashtags: ['types', 'ruby'] } }
  end

  # --- methods selected for type checking ---------------------------------
  def event_text()
    next_event()[:text]
  end

  def author_name()
    next_event()[:user][:screen_name]
  end

  def popular?(threshold)
    next_event()[:user][:followers] > threshold
  end

  def hashtag_list()
    next_event()[:entities][:hashtags].map { |h| '#' + h }
  end
end
"#;

const TEST_SUITE: &str = r#"
s = TwitterStream.new('plt_fan')
assert_equal('comp types are neat', s.event_text())
assert_equal('plt_fan', s.author_name())
assert(s.popular?(1000))
assert(!s.popular?(5000))
assert_equal(['#types', '#ruby'], s.hashtag_list())
12.times { |i|
  assert(s.popular?(i * 100))
  assert_equal(2, s.hashtag_list().length())
}
"#;

fn annotate(env: &mut CompRdl) {
    env.add_class("TwitterStream", "Object");
    env.type_sig(
        "TwitterStream",
        "next_event",
        "() -> { id: Integer, text: String, lang: String, user: { screen_name: String, followers: Integer }, entities: { hashtags: Array<String> } }",
        None,
    );
    env.var_type("TwitterStream", "handle", "String");
    env.type_sig("TwitterStream", "event_text", "() -> String", Some("app"));
    env.type_sig("TwitterStream", "author_name", "() -> String", Some("app"));
    env.type_sig("TwitterStream", "popular?", "(Integer) -> %bool", Some("app"));
    env.type_sig("TwitterStream", "hashtag_list", "() -> Array<String>", Some("app"));
}

/// Builds the Twitter gem app.
pub fn app() -> App {
    App {
        name: "Twitter",
        group: "API client libraries",
        db: None,
        annotate,
        source: SOURCE,
        test_suite: TEST_SUITE,
        extra_annotations: 2,
        expected_errors: 0,
    }
}
