//! The Wikipedia-client analogue: a Ruby wrapper around a JSON "page" API.
//!
//! Mirrors the paper's Wikipedia Client subject (16 methods in the paper's
//! Page API; a representative subset here).  The methods work over finite
//! hash types produced from parsed API responses, which is exactly where
//! comp types for `Hash#[]` / `Array#first` remove casts (Figure 2).

use crate::app::App;
use comprdl::CompRdl;

const SOURCE: &str = r#"
class WikiPage
  def initialize(name)
    @name = name
  end

  # --- runtime fixture: simulates the parsed JSON of the page API -------
  def page()
    { info: ['https://img/Ruby.png', 'en'], title: 'Ruby (programming language)',
      categories: ['Programming languages', 'Object-oriented'], links: ['Rails', 'RubyGems', 'RSpec'] }
  end

  def fetch_json()
    { title: 'Ruby (programming language)', length: 31025 }
  end

  # --- methods selected for type checking --------------------------------
  def image_url()
    page()[:info].first
  end

  def title_text()
    page()[:title]
  end

  def first_category()
    page()[:categories].first
  end

  def category_count()
    page()[:categories].length()
  end

  def has_link?(name)
    page()[:links].include?(name)
  end

  def summary()
    page()[:title] + ' -> ' + page()[:info].first
  end

  def language()
    page()[:info].last
  end

  def sorted_links()
    page()[:links].sort()
  end

  def link_titles(prefix)
    page()[:links].map { |l| prefix + l }
  end

  def parsed_length()
    data = RDL.type_cast(fetch_json(), "{ title: String, length: Integer }")
    data[:length]
  end

  # Lint bait (LINT0104): the fallback after the early return can never
  # execute.  Unlabeled and never called, so it changes no Table 2 column
  # except the lint count.
  def raw_length()
    return title_text().length()
    0
  end
end
"#;

const TEST_SUITE: &str = r#"
w = WikiPage.new('Ruby')
assert_equal('https://img/Ruby.png', w.image_url())
assert_equal('Ruby (programming language)', w.title_text())
assert_equal('Programming languages', w.first_category())
assert_equal(2, w.category_count())
assert(w.has_link?('Rails'))
assert(!w.has_link?('Python'))
assert_equal('en', w.language())
assert_equal(3, w.sorted_links().length())
assert_equal(31025, w.parsed_length())
10.times { |i|
  assert(w.summary().include?('Ruby'))
  assert_equal(3, w.link_titles('wiki/').length())
}
"#;

fn annotate(env: &mut CompRdl) {
    env.add_class("WikiPage", "Object");
    // Extra annotations (not themselves checked): the fixture accessors.
    env.type_sig(
        "WikiPage",
        "page",
        "() -> { info: Array<String>, title: String, categories: Array<String>, links: Array<String> }",
        None,
    );
    env.type_sig("WikiPage", "fetch_json", "() -> Hash<Symbol, Object>", None);
    env.var_type("WikiPage", "name", "String");
    // Methods selected for checking.
    env.type_sig("WikiPage", "image_url", "() -> String", Some("app"));
    env.type_sig("WikiPage", "title_text", "() -> String", Some("app"));
    env.type_sig("WikiPage", "first_category", "() -> String", Some("app"));
    env.type_sig("WikiPage", "category_count", "() -> Integer", Some("app"));
    env.type_sig("WikiPage", "has_link?", "(String) -> %bool", Some("app"));
    env.type_sig("WikiPage", "summary", "() -> String", Some("app"));
    env.type_sig("WikiPage", "language", "() -> String", Some("app"));
    env.type_sig("WikiPage", "sorted_links", "() -> Array<String>", Some("app"));
    env.type_sig("WikiPage", "link_titles", "(String) -> Array<String>", Some("app"));
    env.type_sig("WikiPage", "parsed_length", "() -> Integer", Some("app"));
}

/// Builds the Wikipedia client app.
pub fn app() -> App {
    App {
        name: "Wikipedia",
        group: "API client libraries",
        db: None,
        annotate,
        source: SOURCE,
        test_suite: TEST_SUITE,
        extra_annotations: 3,
        expected_errors: 0,
    }
}
