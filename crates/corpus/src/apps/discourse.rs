//! The Discourse analogue: a discussion platform's `User` / `Topic` models
//! over ActiveRecord, including the Figure 1 `available?` query and a raw
//! SQL `where` (Figure 3, with the bug fixed so the app itself is healthy).

use crate::app::App;
use comprdl::CompRdl;
use db_types::{ColumnType, DbRegistry};

const SOURCE: &str = r#"
class User < ActiveRecord::Base
  # --- runtime fixtures simulating the ORM --------------------------------
  def self.seed(rows)
    @rows = rows
  end

  def self.rows()
    @rows || []
  end

  def self.exists?(cond = nil)
    if cond.nil?()
      rows().length() > 0
    else
      rows().any? { |r| cond.all? { |k, v| r[k] == v || r[k].nil?() } }
    end
  end

  def self.joins(assoc)
    self
  end

  def self.where(cond, arg = nil)
    self
  end

  def self.count(col = nil)
    rows().length()
  end

  def self.reserved?(name)
    name == 'admin' || name == 'system'
  end

  # --- methods selected for type checking ---------------------------------
  def self.available?(name, email)
    return false if reserved?(name)
    return true if !User.exists?({ username: name })
    return User.joins(:emails).exists?({ staged: true, username: name, emails: { email: email } })
  end

  def self.staged_account?(name)
    User.exists?({ staged: true, username: name })
  end

  def self.username_taken?(name)
    User.exists?({ username: name })
  end

  def self.total_users()
    User.where({ staged: false }).count()
  end
end

class Topic < ActiveRecord::Base
  def self.seed(rows)
    @rows = rows
  end

  def self.rows()
    @rows || []
  end

  def self.where(cond, arg = nil)
    self
  end

  def self.includes(assoc)
    self
  end

  def self.count(col = nil)
    rows().length()
  end

  def self.exists?(cond = nil)
    rows().length() > 0
  end

  # Raw-SQL query (Figure 3, corrected): topics restricted to allowed groups.
  def self.allowed_for_group(group_id)
    Topic.includes(:posts)
      .where('topics.id IN (SELECT topic_id FROM topic_allowed_groups WHERE group_id = ?)', group_id)
      .count()
  end

  def self.titled?(title)
    Topic.exists?({ title: title })
  end

  # Lint bait (LINT0105): concatenates a caller-supplied value into the raw
  # SQL condition instead of binding it as a `?` placeholder.  Unlabeled and
  # never called, so it changes no Table 2 column except the lint count.
  def self.titled_like(title)
    Topic.where('title = ' + title).count()
  end

  # Interprocedural lint bait (LINT0105 through a call): `find_titled`
  # forwards its parameter straight into the raw `where` condition, so its
  # effect summary routes taint from parameter 0 to a SQL sink.  Neither
  # method is flagged on its own — the callee sees only a lone variable at
  # the sink, the caller sees no sink at all — but with summaries installed
  # the concatenation in `search_titled` is flagged at the call site.
  def self.find_titled(cond)
    Topic.where(cond).count()
  end

  def self.search_titled(title)
    Topic.find_titled('title = ' + title)
  end
end
"#;

const TEST_SUITE: &str = r#"
User.seed([{ id: 1, username: 'alice', staged: false }, { id: 2, username: 'bot', staged: true }])
Topic.seed([{ id: 10, title: 'Welcome' }, { id: 11, title: 'Rules' }])
assert(!User.available?('admin', 'admin@example.com'))
assert(User.available?('newuser', 'new@example.com'))
assert(User.username_taken?('alice'))
assert(!User.staged_account?('alice'))
assert_equal(2, User.total_users())
assert_equal(2, Topic.allowed_for_group(3))
assert(Topic.titled?('Welcome'))
8.times { |i|
  assert(User.available?('visitor', 'v@example.com'))
  assert_equal(2, Topic.allowed_for_group(i))
}
"#;

fn schema() -> DbRegistry {
    let mut db = DbRegistry::new();
    db.add_table(
        "users",
        &[
            ("id", ColumnType::Integer),
            ("username", ColumnType::String),
            ("staged", ColumnType::Boolean),
        ],
    );
    db.add_table(
        "emails",
        &[
            ("id", ColumnType::Integer),
            ("email", ColumnType::String),
            ("user_id", ColumnType::Integer),
        ],
    );
    db.add_table("topics", &[("id", ColumnType::Integer), ("title", ColumnType::String)]);
    db.add_table(
        "posts",
        &[
            ("id", ColumnType::Integer),
            ("topic_id", ColumnType::Integer),
            ("raw", ColumnType::String),
        ],
    );
    db.add_table(
        "topic_allowed_groups",
        &[("group_id", ColumnType::Integer), ("topic_id", ColumnType::Integer)],
    );
    db.add_model("User", "users");
    db.add_model("Email", "emails");
    db.add_model("Topic", "topics");
    db.add_model("Post", "posts");
    db.add_association("User", "emails", "emails");
    db.add_association("Topic", "posts", "posts");
    db
}

fn annotate(env: &mut CompRdl) {
    // Extra annotations for fixture helpers used by the checked methods.
    env.type_sig_singleton("User", "reserved?", "(String) -> %bool", None);
    env.type_sig_singleton("User", "rows", "() -> Array<Hash<Symbol, Object>>", None);
    env.type_sig_singleton("Topic", "rows", "() -> Array<Hash<Symbol, Object>>", None);
    // Checked methods.
    env.type_sig_singleton("User", "available?", "(String, String) -> %bool", Some("app"));
    env.type_sig_singleton("User", "staged_account?", "(String) -> %bool", Some("app"));
    env.type_sig_singleton("User", "username_taken?", "(String) -> %bool", Some("app"));
    env.type_sig_singleton("User", "total_users", "() -> Integer", Some("app"));
    env.type_sig_singleton("Topic", "allowed_for_group", "(Integer) -> Integer", Some("app"));
    env.type_sig_singleton("Topic", "titled?", "(String) -> %bool", Some("app"));
}

/// Builds the Discourse app.
pub fn app() -> App {
    App {
        name: "Discourse",
        group: "Rails Applications",
        db: Some(schema()),
        annotate,
        source: SOURCE,
        test_suite: TEST_SUITE,
        extra_annotations: 3,
        expected_errors: 0,
    }
}
