//! The Journey analogue: an online questionnaire application, including the
//! two confirmed bugs from the paper (§5.3): a reference to an undefined
//! constant (`Field`, renamed to `Question::Field` upstream), and a hash
//! argument whose `:action` value is accidentally a method call returning an
//! array rather than a string or symbol.

use crate::app::App;
use comprdl::CompRdl;
use db_types::{ColumnType, DbRegistry};

const SOURCE: &str = r#"
class Question < ActiveRecord::Base
  def self.seed(rows)
    @rows = rows
  end

  def self.rows()
    @rows || []
  end

  def self.where(cond, arg = nil)
    @filtered = rows().select { |r| cond.all? { |k, v| r[k] == v } }
    self
  end

  def self.pluck(col)
    (@filtered || rows()).map { |r| r[col] }
  end

  def self.count(col = nil)
    (@filtered || rows()).length()
  end

  def self.exists?(cond = nil)
    rows().any? { |r| cond.all? { |k, v| r[k] == v } }
  end

  # A list of prompts (used by the buggy redirect builder below).
  def self.prompt()
    ['What is your name?', 'How old are you?']
  end

  def self.redirect_params(params)
    'redirect'
  end

  # --- methods selected for type checking ---------------------------------
  def self.question_titles(questionnaire_id)
    Question.where({ questionnaire_id: questionnaire_id }).pluck(:title)
  end

  def self.answered?(questionnaire_id)
    Question.exists?({ questionnaire_id: questionnaire_id, answered: true })
  end

  # Seeded bug #2: the constant `Field` does not exist (it was moved to
  # `Question::Field` upstream).
  def self.field_class()
    Field
  end

  # Seeded bug #3: `prompt` is a method call returning an Array, but the
  # :action entry must be a String or Symbol.
  def self.build_redirect()
    Question.redirect_params({ :action => prompt(), :id => 1 })
  end

  # Lint bait (LINT0102 + LINT0103): `draft` is written but never read, and
  # the first value of `total` is overwritten before any read.  Unlabeled
  # and never called, so it changes no Table 2 column except the lint count.
  def self.tally_scratch()
    draft = Question.count()
    total = 0
    total = Question.count()
    total
  end
end
"#;

const TEST_SUITE: &str = r#"
Question.seed([
  { id: 1, questionnaire_id: 5, title: 'Name?', answered: true },
  { id: 2, questionnaire_id: 5, title: 'Age?', answered: false },
  { id: 3, questionnaire_id: 6, title: 'Color?', answered: false }
])
assert_equal(['Name?', 'Age?'], Question.question_titles(5))
assert(Question.answered?(5))
assert(!Question.answered?(6))
9.times { |i|
  assert_equal(1, Question.question_titles(6).length())
}
"#;

fn schema() -> DbRegistry {
    let mut db = DbRegistry::new();
    db.add_table(
        "questions",
        &[
            ("id", ColumnType::Integer),
            ("questionnaire_id", ColumnType::Integer),
            ("title", ColumnType::String),
            ("answered", ColumnType::Boolean),
        ],
    );
    db.add_table("questionnaires", &[("id", ColumnType::Integer), ("name", ColumnType::String)]);
    db.add_model("Question", "questions");
    db.add_model("Questionnaire", "questionnaires");
    db
}

fn annotate(env: &mut CompRdl) {
    env.type_sig_singleton("Question", "rows", "() -> Array<Hash<Symbol, Object>>", None);
    env.type_sig_singleton("Question", "prompt", "() -> Array<String>", None);
    env.type_sig_singleton(
        "Question",
        "redirect_params",
        "({ action: String or Symbol, id: Integer }) -> String",
        None,
    );
    env.type_sig_singleton(
        "Question",
        "question_titles",
        "(Integer) -> Array<Object>",
        Some("app"),
    );
    env.type_sig_singleton("Question", "answered?", "(Integer) -> %bool", Some("app"));
    env.type_sig_singleton("Question", "field_class", "() -> Object", Some("app"));
    env.type_sig_singleton("Question", "build_redirect", "() -> String", Some("app"));
}

/// Builds the Journey app.
pub fn app() -> App {
    App {
        name: "Journey",
        group: "Rails Applications",
        db: Some(schema()),
        annotate,
        source: SOURCE,
        test_suite: TEST_SUITE,
        extra_annotations: 3,
        expected_errors: 2,
    }
}
