//! The Code.org analogue: sections / students queried through the database,
//! including the confirmed documentation bug — `current_user` is documented
//! (and annotated) as returning a `User`, but actually returns an attribute
//! hash (paper §5.3).

use crate::app::App;
use comprdl::CompRdl;
use db_types::{ColumnType, DbRegistry};

const SOURCE: &str = r#"
class Section < ActiveRecord::Base
  def self.seed(rows)
    @rows = rows
  end

  def self.rows()
    @rows || []
  end

  def self.where(cond, arg = nil)
    @filtered = rows().select { |r| cond.all? { |k, v| r[k] == v } }
    self
  end

  def self.pluck(col)
    (@filtered || rows()).map { |r| r[col] }
  end

  def self.count(col = nil)
    (@filtered || rows()).length()
  end

  def self.exists?(cond = nil)
    rows().any? { |r| cond.all? { |k, v| r[k] == v } }
  end

  # --- methods selected for type checking ---------------------------------
  def self.section_names(teacher_id)
    Section.where({ teacher_id: teacher_id }).pluck(:name)
  end

  def self.student_capacity(teacher_id)
    Section.where({ teacher_id: teacher_id }).count() * 30
  end

  def self.login_type_known?(name)
    Section.exists?({ name: name, login_type: 'email' })
  end
end

class Dashboard < ActiveRecord::Base
  # The documentation (and hence the annotation) claims this returns a User
  # object; it actually returns an attribute hash.  CompRDL reports the
  # mismatch, which the Code.org developers confirmed as a doc bug.
  def self.current_user()
    { id: 1, name: 'admin', admin: true }
  end

  def self.admin_name()
    'admin'
  end
end
"#;

const TEST_SUITE: &str = r#"
Section.seed([
  { id: 1, name: 'CS Fundamentals', teacher_id: 7, login_type: 'email' },
  { id: 2, name: 'CS Discoveries', teacher_id: 7, login_type: 'picture' },
  { id: 3, name: 'CS Principles', teacher_id: 9, login_type: 'email' }
])
assert_equal(['CS Fundamentals', 'CS Discoveries'], Section.section_names(7))
assert_equal(60, Section.student_capacity(7))
assert(Section.login_type_known?('CS Fundamentals'))
assert(!Section.login_type_known?('CS Discoveries'))
assert_equal('admin', Dashboard.admin_name())
12.times { |i|
  assert_equal(1, Section.section_names(9).length())
  assert_equal(30, Section.student_capacity(9))
}
"#;

fn schema() -> DbRegistry {
    let mut db = DbRegistry::new();
    db.add_table(
        "sections",
        &[
            ("id", ColumnType::Integer),
            ("name", ColumnType::String),
            ("teacher_id", ColumnType::Integer),
            ("login_type", ColumnType::String),
        ],
    );
    db.add_table(
        "users",
        &[
            ("id", ColumnType::Integer),
            ("name", ColumnType::String),
            ("admin", ColumnType::Boolean),
        ],
    );
    db.add_model("Section", "sections");
    db.add_model("User", "users");
    db
}

fn annotate(env: &mut CompRdl) {
    env.type_sig_singleton("Section", "rows", "() -> Array<Hash<Symbol, Object>>", None);
    env.type_sig_singleton("Section", "section_names", "(Integer) -> Array<Object>", Some("app"));
    env.type_sig_singleton("Section", "student_capacity", "(Integer) -> Integer", Some("app"));
    env.type_sig_singleton("Section", "login_type_known?", "(String) -> %bool", Some("app"));
    // The buggy documentation-derived annotation (seeded error #1).
    env.type_sig_singleton("Dashboard", "current_user", "() -> User", Some("app"));
    env.type_sig_singleton("Dashboard", "admin_name", "() -> String", Some("app"));
}

/// Builds the Code.org app.
pub fn app() -> App {
    App {
        name: "Code.org",
        group: "Rails Applications",
        db: Some(schema()),
        annotate,
        source: SOURCE,
        test_suite: TEST_SUITE,
        extra_annotations: 1,
        expected_errors: 1,
    }
}
