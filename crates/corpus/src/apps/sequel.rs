//! The Sequel analogue: a music-catalogue application written against the
//! Sequel dataset DSL, added as the corpus's eighth subject.
//!
//! Two things distinguish it from the other apps:
//!
//! * it exercises the **Sequel annotation set** (paper Table 1's second
//!   ORM) end-to-end — `filter` / `exclude` / `select_map` / `count_rows` /
//!   `sum_column` / `max_column` / `empty_dataset?` / `join_table` all
//!   resolve through the `Sequel::Dataset` comp types, whose `table_of` /
//!   `joins_type` returns are re-evaluated by the runtime consistency
//!   checks at every hit;
//! * its test suite runs a **mid-suite schema migration**: the checked
//!   `run_migration` method calls `Track.migrate!(2)`, whose comp type
//!   flips a named type-level slot in the hook's [`rdl_types::TypeStore`]
//!   at run time (the argument is only an `Integer` statically, but a
//!   singleton `2` dynamically, so the flip happens during the *suite*, not
//!   during type checking).  From then on `amount_of`'s comp type evaluates
//!   to `String` where type checking computed `Integer`, so every later hit
//!   raises consistency blame — the workload that stresses generation/epoch
//!   invalidation in the shared runtime memo and produces real
//!   span-carrying blame diagnostics for the harness to render.

use crate::app::App;
use comprdl::{CompRdl, TlcValue};
use db_types::{ColumnType, DbRegistry};
use rdl_types::{SingVal, Type};

const SOURCE: &str = r#"
class Track < Sequel::Model
  # --- runtime fixtures simulating the Sequel dataset -----------------------
  def self.seed(rows)
    @rows = rows
    @filtered = nil
  end

  def self.rows()
    @rows || []
  end

  def self.filter(cond)
    @filtered = rows().select { |r| cond.all? { |k, v| r[k] == v } }
    self
  end

  def self.exclude(cond)
    @filtered = rows().reject { |r| cond.all? { |k, v| r[k] == v } }
    self
  end

  def self.join_table(assoc)
    @filtered = nil
    self
  end

  def self.select_map(col)
    (@filtered || rows()).map { |r| r[col] }
  end

  def self.count_rows()
    (@filtered || rows()).length()
  end

  def self.sum_column(col)
    (@filtered || rows()).map { |r| r[col] }.sum()
  end

  def self.max_column(col)
    (@filtered || rows()).map { |r| r[col] }.max()
  end

  def self.empty_dataset?()
    (@filtered || rows()).length() == 0
  end

  def self.amount_of(ix)
    [199, 250, 301].at(ix)
  end

  def self.migrate!(phase)
    phase
  end

  # --- methods selected for type checking ---------------------------------
  def self.names_on(album_id)
    Track.filter({ album_id: album_id }).select_map(:name)
  end

  def self.track_count(album_id)
    Track.filter({ album_id: album_id }).count_rows()
  end

  def self.longest(album_id)
    Track.filter({ album_id: album_id }).max_column(:seconds)
  end

  def self.total_cents(album_id)
    Track.filter({ album_id: album_id }).sum_column(:cents)
  end

  def self.catalogue_empty?()
    Track.exclude({ long: true }).empty_dataset?()
  end

  def self.with_albums()
    Track.join_table(:albums).count_rows()
  end

  def self.price_of(ix)
    Track.amount_of(ix)
  end

  def self.run_migration(phase)
    Track.migrate!(phase)
  end
end
"#;

const TEST_SUITE: &str = r#"
Track.seed([
  { id: 1, album_id: 1, name: 'Intro', seconds: 180, cents: 199, long: false },
  { id: 2, album_id: 1, name: 'Theme', seconds: 240, cents: 250, long: true },
  { id: 3, album_id: 2, name: 'Coda', seconds: 150, cents: 301, long: false }
])
assert_equal(['Intro', 'Theme'], Track.names_on(1))
assert_equal(2, Track.track_count(1))
assert_equal(240, Track.longest(1))
assert_equal(301, Track.total_cents(2))
assert(!Track.catalogue_empty?())
assert_equal(3, Track.with_albums())
assert_equal(199, Track.price_of(0))
# Phase 1: the call-site-dense loop — the same Sequel comp-typed sites hit
# repeatedly with the same value shapes, the access pattern the shared
# runtime memo serves.
18.times { |i|
  assert_equal(2, Track.track_count(1))
  assert_equal(240, Track.longest(1))
  assert_equal(449, Track.total_cents(1))
  assert(!Track.catalogue_empty?())
  assert_equal(250, Track.price_of(1))
}
# The mid-suite migration: flips the `sequel.amount` type-level slot in the
# hook's store (generation bump -> shared-memo epoch bump), which every
# thread sharing the memo must observe.
assert_equal(2, Track.run_migration(2))
# Phase 2: `amount_of`'s comp type now evaluates to String at run time but
# type checking computed Integer, so each of these three hits records a
# consistency blame (collected, not raised, under the harnesses' config) --
# and a memoized replay must reproduce the identical blame diagnostics in
# the identical order.
3.times { |i|
  assert_equal(199, Track.price_of(0))
  assert_equal(2, Track.track_count(1))
}
"#;

fn schema() -> DbRegistry {
    let mut db = DbRegistry::new();
    db.add_table(
        "tracks",
        &[
            ("id", ColumnType::Integer),
            ("album_id", ColumnType::Integer),
            ("name", ColumnType::String),
            ("seconds", ColumnType::Integer),
            ("cents", ColumnType::Integer),
            ("long", ColumnType::Boolean),
        ],
    );
    db.add_table("albums", &[("id", ColumnType::Integer), ("title", ColumnType::String)]);
    db.add_model("Track", "tracks");
    db.add_model("Album", "albums");
    db.add_association("Track", "albums", "albums");
    db
}

/// The named type-level slot the migration flips (see the module docs).
pub const AMOUNT_SLOT: &str = "sequel.amount";

fn annotate(env: &mut CompRdl) {
    // The migration pair.  `sequel_amount_type` reads the named slot (the
    // pre-migration default is Integer); `sequel_run_migration` flips it —
    // but only when its argument is a *singleton* integer, i.e. only when
    // evaluated at run time against a concrete value.  During type checking
    // the argument is the plain `Integer` of `run_migration`'s parameter,
    // so static evaluation never mutates the store.
    env.register_helper_native("sequel_amount_type", |ctx, _args| {
        let ty = ctx.store.named(AMOUNT_SLOT).cloned().unwrap_or_else(|| Type::nominal("Integer"));
        Ok(TlcValue::Type(ty))
    });
    env.register_helper_native("sequel_run_migration", |ctx, args| {
        if let Some(TlcValue::Type(t)) = args.first() {
            if let Type::Singleton(SingVal::Int(_)) = ctx.store.resolve(t) {
                ctx.store.set_named(AMOUNT_SLOT, Type::nominal("String"));
            }
        }
        Ok(TlcValue::Type(Type::nominal("Integer")))
    });

    // Extra annotations for fixture helpers used by the checked methods.
    env.type_sig_singleton("Track", "rows", "() -> Array<Hash<Symbol, Object>>", None);
    env.type_sig_singleton("Track", "amount_of", "(Integer) -> «sequel_amount_type()»", None);
    env.type_sig_singleton(
        "Track",
        "migrate!",
        "(t <: Integer) -> «sequel_run_migration(t)»",
        None,
    );
    // Checked methods.
    env.type_sig_singleton("Track", "names_on", "(Integer) -> Array<Object>", Some("app"));
    env.type_sig_singleton("Track", "track_count", "(Integer) -> Integer", Some("app"));
    env.type_sig_singleton("Track", "longest", "(Integer) -> Object", Some("app"));
    env.type_sig_singleton("Track", "total_cents", "(Integer) -> Numeric", Some("app"));
    env.type_sig_singleton("Track", "catalogue_empty?", "() -> %bool", Some("app"));
    env.type_sig_singleton("Track", "with_albums", "() -> Integer", Some("app"));
    env.type_sig_singleton("Track", "price_of", "(Integer) -> Integer", Some("app"));
    env.type_sig_singleton("Track", "run_migration", "(Integer) -> Integer", Some("app"));
}

/// Builds the Sequel app.
pub fn app() -> App {
    App {
        name: "Sequel",
        group: "Rails Applications",
        db: Some(schema()),
        annotate,
        source: SOURCE,
        test_suite: TEST_SUITE,
        extra_annotations: 3,
        expected_errors: 0,
    }
}
