//! The six synthetic subject programs of the evaluation corpus.

pub mod codeorg;
pub mod discourse;
pub mod huginn;
pub mod journey;
pub mod twitter;
pub mod wikipedia;

use crate::app::App;

/// All corpus apps, in the order Table 2 lists them.
pub fn all() -> Vec<App> {
    vec![
        wikipedia::app(),
        twitter::app(),
        discourse::app(),
        huginn::app(),
        codeorg::app(),
        journey::app(),
    ]
}
