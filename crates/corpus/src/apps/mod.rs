//! The synthetic subject programs of the evaluation corpus: the six paper
//! apps plus the call-site-dense Redmine analogue (see [`redmine`]) and the
//! Sequel-DSL / mid-suite-migration subject (see [`sequel`]).

pub mod codeorg;
pub mod discourse;
pub mod huginn;
pub mod journey;
pub mod redmine;
pub mod sequel;
pub mod twitter;
pub mod wikipedia;

use crate::app::App;

/// All corpus apps: the paper's six in Table 2 order, then the grown
/// corpus's additions.
pub fn all() -> Vec<App> {
    vec![
        wikipedia::app(),
        twitter::app(),
        discourse::app(),
        huginn::app(),
        codeorg::app(),
        journey::app(),
        redmine::app(),
        sequel::app(),
    ]
}
