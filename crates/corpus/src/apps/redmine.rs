//! The Redmine analogue: a Rails project-management application (issues,
//! journals, projects) added as the corpus's seventh subject.
//!
//! Unlike the six paper apps — which are deliberately tiny — this subject is
//! **call-site dense**: its test suite drives the checked query methods in a
//! loop, so the same comp-typed call sites are hit hundreds of times per
//! run.  That is the workload the PR 2 static evaluation cache and the
//! runtime check memo exist for (ROADMAP "Workloads"), and it is what makes
//! the `table2_overhead` harness measure something real instead of noise.

use crate::app::App;
use comprdl::CompRdl;
use db_types::{ColumnType, DbRegistry};

const SOURCE: &str = r#"
class Issue < ActiveRecord::Base
  # --- runtime fixtures simulating the ORM --------------------------------
  def self.seed(rows)
    @rows = rows
    @filtered = nil
  end

  def self.rows()
    @rows || []
  end

  def self.where(cond, arg = nil)
    @filtered = rows().select { |r| cond.all? { |k, v| r[k] == v || r[k].nil?() } }
    self
  end

  def self.joins(assoc)
    self
  end

  def self.pluck(col)
    (@filtered || rows()).map { |r| r[col] }
  end

  def self.count(col = nil)
    (@filtered || rows()).length()
  end

  def self.exists?(cond = nil)
    if cond.nil?()
      rows().length() > 0
    else
      rows().any? { |r| cond.all? { |k, v| r[k] == v || r[k].nil?() } }
    end
  end

  # --- methods selected for type checking ---------------------------------
  def self.open_subjects(project_id)
    Issue.where({ project_id: project_id, closed: false }).pluck(:subject)
  end

  def self.assigned?(user_id)
    Issue.exists?({ assigned_to_id: user_id, closed: false })
  end

  def self.open_count(project_id)
    Issue.where({ project_id: project_id, closed: false }).count()
  end

  def self.watched?(title)
    Issue.exists?({ subject: title })
  end

  def self.commented?(text)
    Issue.joins(:journals).exists?({ closed: false, journals: { notes: text } })
  end
end

class Project < ActiveRecord::Base
  def self.seed(rows)
    @rows = rows
  end

  def self.rows()
    @rows || []
  end

  def self.pluck(col)
    rows().map { |r| r[col] }
  end

  def self.exists?(cond = nil)
    rows().any? { |r| cond.all? { |k, v| r[k] == v || r[k].nil?() } }
  end

  # --- methods selected for type checking ---------------------------------
  def self.identifiers()
    Project.pluck(:identifier)
  end

  def self.active?(id)
    Project.exists?({ id: id, active: true })
  end
end
"#;

const TEST_SUITE: &str = r#"
Issue.seed([
  { id: 1, project_id: 1, subject: 'Crash on save', assigned_to_id: 2, closed: false },
  { id: 2, project_id: 1, subject: 'Slow query list', assigned_to_id: 2, closed: false },
  { id: 3, project_id: 1, subject: 'Old layout bug', assigned_to_id: 3, closed: true },
  { id: 4, project_id: 2, subject: 'Wiki typo', assigned_to_id: 3, closed: false }
])
Project.seed([
  { id: 1, identifier: 'core', active: true },
  { id: 2, identifier: 'wiki', active: false }
])
assert_equal(['Crash on save', 'Slow query list'], Issue.open_subjects(1))
assert_equal(['core', 'wiki'], Project.identifiers())
assert(Issue.assigned?(2))
assert(!Issue.assigned?(9))
assert(Issue.watched?('Wiki typo'))
assert(Project.active?(1))
assert(!Project.active?(2))
# The call-site-dense workload: the same checked query sites, hit over and
# over with a handful of distinct value shapes — a Rails test suite in
# miniature, and the access pattern the runtime check memo is built for.
40.times { |i|
  assert_equal(2, Issue.open_count(1))
  assert_equal(1, Issue.open_count(2))
  assert(Issue.assigned?(2))
  assert(!Issue.assigned?(99))
  assert(Issue.commented?('needs review'))
  assert(Issue.watched?('Crash on save'))
  assert(Project.active?(1))
  assert_equal(2, Issue.open_subjects(1).length())
}
"#;

fn schema() -> DbRegistry {
    let mut db = DbRegistry::new();
    db.add_table(
        "issues",
        &[
            ("id", ColumnType::Integer),
            ("project_id", ColumnType::Integer),
            ("subject", ColumnType::String),
            ("assigned_to_id", ColumnType::Integer),
            ("closed", ColumnType::Boolean),
        ],
    );
    db.add_table(
        "journals",
        &[
            ("id", ColumnType::Integer),
            ("issue_id", ColumnType::Integer),
            ("notes", ColumnType::String),
        ],
    );
    db.add_table(
        "projects",
        &[
            ("id", ColumnType::Integer),
            ("identifier", ColumnType::String),
            ("active", ColumnType::Boolean),
        ],
    );
    db.add_model("Issue", "issues");
    db.add_model("Journal", "journals");
    db.add_model("Project", "projects");
    db.add_association("Issue", "journals", "journals");
    db
}

fn annotate(env: &mut CompRdl) {
    // Extra annotations for fixture helpers used by the checked methods.
    env.type_sig_singleton("Issue", "rows", "() -> Array<Hash<Symbol, Object>>", None);
    env.type_sig_singleton("Project", "rows", "() -> Array<Hash<Symbol, Object>>", None);
    // Checked methods.
    env.type_sig_singleton("Issue", "open_subjects", "(Integer) -> Array<Object>", Some("app"));
    env.type_sig_singleton("Issue", "assigned?", "(Integer) -> %bool", Some("app"));
    env.type_sig_singleton("Issue", "open_count", "(Integer) -> Integer", Some("app"));
    env.type_sig_singleton("Issue", "watched?", "(String) -> %bool", Some("app"));
    env.type_sig_singleton("Issue", "commented?", "(String) -> %bool", Some("app"));
    env.type_sig_singleton("Project", "identifiers", "() -> Array<Object>", Some("app"));
    env.type_sig_singleton("Project", "active?", "(Integer) -> %bool", Some("app"));
}

/// Builds the Redmine app.
pub fn app() -> App {
    App {
        name: "Redmine",
        group: "Rails Applications",
        db: Some(schema()),
        annotate,
        source: SOURCE,
        test_suite: TEST_SUITE,
        extra_annotations: 2,
        expected_errors: 0,
    }
}
