//! Corpus-side glue for interprocedural effect summaries.
//!
//! The summary pass ([`analysis::ProgramSummaries`]) runs over each app's
//! parsed two-file program and infers termination, purity and taint facts
//! for every method bottom-up over the condensed call graph.  Three
//! conversions live here because neither neighbouring crate may depend on
//! the other:
//!
//! * [`CompRdl`] → [`SeedMap`] — the trusted base effects the inference
//!   starts from, built **exactly** the way `TypeChecker::new` seeds its
//!   own [`comprdl::EffectEnv`] (builtins, then `terminates:`/`pure:`
//!   annotations, then registered helpers), so a method the checker
//!   already trusts is never "re-discovered" pessimistically;
//! * [`analysis::MethodSummary`] → [`comprdl::InferredEffect`] — installs
//!   the inferred layer *below* the explicit one in the type checker, and
//! * [`analysis::MethodSummary`] ↔ [`comprdl::EffectRecord`] — the
//!   persistence representation.  Records are keyed on `semdep` Merkle
//!   hashes (hash of the method's transitive dependency closure), which is
//!   precisely the soundness condition
//!   [`ProgramSummaries::infer_with_baseline`] requires of fixed
//!   summaries.

use std::collections::BTreeMap;

use analysis::{MethodSummary, ProgramSummaries, Purity, SeedEffect, SeedMap, TaintSummary, Term};
use comprdl::{CompRdl, EffectEnv, EffectRecord, InferredEffect};
use rdl_types::{PurityEffect, TermEffect};
use ruby_syntax::Program;

/// `analysis::Term` → the `EffectRecord` wire encoding.
pub fn term_to_u8(t: Term) -> u8 {
    match t {
        Term::Terminates => 0,
        Term::BlockDep => 1,
        Term::MayDiverge => 2,
    }
}

/// Wire encoding → `analysis::Term`.  Out-of-range values (impossible for
/// records that passed `CheckCache::from_bytes` validation) pessimize.
pub fn u8_to_term(v: u8) -> Term {
    match v {
        0 => Term::Terminates,
        1 => Term::BlockDep,
        _ => Term::MayDiverge,
    }
}

fn term_to_effect(t: Term) -> TermEffect {
    match t {
        Term::Terminates => TermEffect::Terminates,
        Term::BlockDep => TermEffect::BlockDep,
        Term::MayDiverge => TermEffect::MayDiverge,
    }
}

fn effect_to_term(t: TermEffect) -> Term {
    match t {
        TermEffect::Terminates => Term::Terminates,
        TermEffect::BlockDep => Term::BlockDep,
        TermEffect::MayDiverge => Term::MayDiverge,
    }
}

/// Builds the trusted seed effects for summary inference, mirroring the
/// seeding in `TypeChecker::new`: builtins from
/// [`EffectEnv::with_builtins`], every `terminates:`/`pure:` annotation,
/// and every registered type-level helper (blanket-trusted, as the checker
/// does).  Using the same base environment on both sides means the
/// checker's explicit layer and the inference's seeds can never disagree
/// about a name they both know.
pub fn seed_map(env: &CompRdl) -> SeedMap {
    let mut effects = EffectEnv::with_builtins();
    for ((_, _, name), sig) in env.annotations.iter() {
        effects.set(name, sig.term, sig.purity);
    }
    for name in env.helpers.names() {
        effects.set(&name, TermEffect::Terminates, PurityEffect::Pure);
    }
    effects
        .explicit_effects()
        .map(|(name, term, purity)| {
            (
                name.to_string(),
                SeedEffect { term: effect_to_term(term), pure: purity == PurityEffect::Pure },
            )
        })
        .collect()
}

/// Infers summaries for every method of `program` with `threads` workers
/// (1 = sequential).  The parallel fact extraction is output-invisible:
/// the fixpoint itself is deterministic over the condensed call graph.
pub fn effects_pass(program: &Program, seed: &SeedMap, threads: usize) -> ProgramSummaries {
    if threads > 1 {
        ProgramSummaries::infer_parallel(program, seed, threads)
    } else {
        ProgramSummaries::infer(program, seed)
    }
}

/// Converts the inferred summaries into the checker-facing layer:
/// one [`InferredEffect`] per summarized method.  Same-named methods on
/// different owners each contribute an entry;
/// [`EffectEnv::install_inferred`] joins duplicates pessimistically, which
/// matches the checker's name-keyed (not owner-keyed) effect lookups.
pub fn summaries_to_inferred(summaries: &ProgramSummaries) -> Vec<InferredEffect> {
    summaries
        .iter()
        .map(|s| InferredEffect {
            name: s.name.clone(),
            term: term_to_effect(s.term),
            purity: if s.purity == Purity::Pure {
                PurityEffect::Pure
            } else {
                PurityEffect::Impure
            },
            term_blame: s.term_blame.clone(),
            purity_blame: s.purity_blame.clone(),
        })
        .collect()
}

/// Converts one summary into its persistence representation, stamped with
/// the method's `semdep` Merkle hash (the replay key).
pub fn summary_to_record(s: &MethodSummary, merkle: u64) -> EffectRecord {
    EffectRecord {
        owner: s.owner.clone(),
        name: s.name.clone(),
        singleton: s.singleton,
        merkle,
        term: term_to_u8(s.term),
        purity: if s.purity == Purity::Pure { 0 } else { 1 },
        term_blame: s.term_blame.clone(),
        purity_blame: s.purity_blame.clone(),
        taint_return: s.taint.params_to_return.iter().map(|&i| i as u32).collect(),
        taint_sink: s.taint.params_to_sink.iter().map(|&i| i as u32).collect(),
        self_to_return: s.taint.self_to_return,
        self_to_sink: s.taint.self_to_sink,
    }
}

/// Reconstitutes a replayed record as a baseline summary for
/// [`ProgramSummaries::infer_with_baseline`].  The SCC id is set to zero:
/// baselines never carry SCC ids forward — inference always recomputes
/// them from the current program so warm renders match cold ones.
pub fn record_to_summary(r: &EffectRecord) -> MethodSummary {
    MethodSummary {
        owner: r.owner.clone(),
        name: r.name.clone(),
        singleton: r.singleton,
        term: u8_to_term(r.term),
        purity: if r.purity == 0 { Purity::Pure } else { Purity::Impure },
        term_blame: r.term_blame.clone(),
        purity_blame: r.purity_blame.clone(),
        taint: TaintSummary {
            params_to_return: r.taint_return.iter().map(|&i| i as usize).collect(),
            params_to_sink: r.taint_sink.iter().map(|&i| i as usize).collect(),
            self_to_return: r.self_to_return,
            self_to_sink: r.self_to_sink,
        },
        scc: 0,
    }
}

/// Converts every summary into a persistable record, Merkle-stamped from
/// `graph` (methods the dependency graph does not know are skipped — it is
/// built from the same program, so this does not happen in practice).
pub fn summaries_to_records(
    summaries: &ProgramSummaries,
    graph: &comprdl::DepGraph,
) -> Vec<EffectRecord> {
    summaries
        .iter()
        .filter_map(|s| {
            graph.merkle(&s.owner, &s.name, s.singleton).map(|m| summary_to_record(s, m))
        })
        .collect()
}

/// Builds the `fixed` baseline for incremental inference: every cached
/// record whose identity *and* Merkle hash still match the current
/// program replays verbatim; everything else is left for the fixpoint to
/// recompute.  Returns the baseline keyed the way
/// [`ProgramSummaries::infer_with_baseline`] expects.
pub fn replay_baseline(
    cache: &comprdl::CheckCache,
    app: &str,
    program: &Program,
    graph: &comprdl::DepGraph,
) -> BTreeMap<(String, String, bool), MethodSummary> {
    let mut fixed = BTreeMap::new();
    for (owner, def) in program.methods() {
        let Some(merkle) = graph.merkle(&owner, &def.name, def.singleton) else { continue };
        if let Some(rec) = cache.replay_effects(app, &owner, &def.name, def.singleton, merkle) {
            fixed.insert((owner.clone(), def.name.clone(), def.singleton), record_to_summary(&rec));
        }
    }
    fixed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        ruby_syntax::parse_program_strict(
            "def leaf(a)\n  a + 1\nend\n\
             def spin()\n  while true\n    @n = 1\n  end\n  0\nend\n\
             def caller(b)\n  leaf(b) + spin()\nend\n",
        )
        .unwrap()
    }

    #[test]
    fn seed_map_mirrors_the_checker_seeding() {
        let mut env = CompRdl::new();
        comprdl::stdlib::register_all(&mut env);
        env.type_sig_with_effects(
            "Object",
            "fast",
            "() -> Integer",
            TermEffect::Terminates,
            PurityEffect::Pure,
        );
        let seed = seed_map(&env);
        // A builtin, an annotation, and the pessimistic default all agree
        // with what `TypeChecker::new` would install explicitly.
        assert_eq!(seed.get("length").map(|s| s.term), Some(Term::Terminates));
        assert_eq!(seed.get("fast"), Some(&SeedEffect { term: Term::Terminates, pure: true }));
        assert!(!seed.contains_key("no_such_method"));
    }

    #[test]
    fn record_round_trip_preserves_everything_but_scc() {
        let program = sample_program();
        let sums = effects_pass(&program, &SeedMap::new(), 1);
        for s in sums.iter() {
            let rec = summary_to_record(s, 42);
            assert_eq!(rec.merkle, 42);
            let back = record_to_summary(&rec);
            assert_eq!(back.term, s.term);
            assert_eq!(back.purity, s.purity);
            assert_eq!(back.term_blame, s.term_blame);
            assert_eq!(back.purity_blame, s.purity_blame);
            assert_eq!(back.taint, s.taint);
        }
    }

    #[test]
    fn inferred_layer_carries_the_blame_chains() {
        let program = sample_program();
        let sums = effects_pass(&program, &SeedMap::new(), 1);
        let inferred = summaries_to_inferred(&sums);
        let spin = inferred.iter().find(|e| e.name == "spin").unwrap();
        assert_eq!(spin.term, TermEffect::MayDiverge);
        assert_eq!(spin.purity, PurityEffect::Impure);
        assert_eq!(spin.term_blame, vec!["spin".to_string(), "while loop".to_string()]);
    }
}
