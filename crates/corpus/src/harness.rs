//! The evaluation harness: reproduces Table 1 and Table 2 of the paper.

use crate::app::App;
use comprdl::{BlameDiagnostic, CheckConfig, CheckOptions, CompRdl, SharedMemo, TypeChecker};
use diagnostics::{Diagnostic, DiagnosticBag};
use ruby_interp::Interpreter;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One row of Table 1 (library methods with comp type definitions).
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Library name.
    pub library: String,
    /// Number of comp type definitions (method annotations registered).
    pub comp_type_definitions: usize,
    /// Lines of type-level code (annotation strings).
    pub ruby_loc: usize,
}

/// One row of Table 2 (type checking results per subject program).
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Program name.
    pub program: String,
    /// Table 2 group ("API client libraries" / "Rails Applications").
    pub group: String,
    /// Number of methods type checked.
    pub methods: usize,
    /// Lines of code of the checked methods.
    pub loc: usize,
    /// Extra annotations written for globals / instance variables / callees.
    pub extra_annotations: usize,
    /// Casts needed with comp types.
    pub casts: usize,
    /// Casts needed with plain RDL (comp types disabled).
    pub casts_rdl: usize,
    /// Type checking time (comp types enabled).
    pub check_time: Duration,
    /// Test-suite time without dynamic checks.
    pub test_time_no_chk: Duration,
    /// Test-suite time with dynamic checks.
    pub test_time_with_chk: Duration,
    /// Number of dynamic checks executed during the checked test run.
    pub dynamic_checks_run: u64,
    /// Every error from the comp-type checking run as a [`Diagnostic`],
    /// aggregated per app through the shared diagnostics spine.
    pub diagnostics: DiagnosticBag,
    /// Every runtime blame the checked test run recorded, as span-carrying
    /// [`Diagnostic`]s, **in execution order** (never sorted: memoized and
    /// unmemoized runs must agree on the sequence, not just the set).
    /// Empty for apps whose suites never blame.
    pub runtime_blames: DiagnosticBag,
    /// `LINT01xx` warnings from the dataflow lint suite over the app's
    /// parsed program, sorted canonically (span, then code).  Warnings, not
    /// errors: they never count toward [`Table2Row::errors`].
    pub lints: DiagnosticBag,
}

impl Table2Row {
    /// Errors found by type checking.  Counts only
    /// [`diagnostics::Severity::Error`] entries of
    /// [`Table2Row::diagnostics`], so lint warnings (or any other
    /// warning-severity diagnostic an aggregator folds in) can never
    /// inflate the paper's "Errs" column.
    pub fn errors(&self) -> usize {
        self.diagnostics.error_count()
    }

    /// Lint warnings found by the dataflow lint suite (the size of
    /// [`Table2Row::lints`]).
    pub fn lint_warnings(&self) -> usize {
        self.lints.warning_count()
    }

    /// The dynamic-check overhead as a fraction (e.g. `0.016` for 1.6%).
    pub fn overhead(&self) -> f64 {
        let base = self.test_time_no_chk.as_secs_f64();
        if base == 0.0 {
            return 0.0;
        }
        (self.test_time_with_chk.as_secs_f64() - base) / base
    }
}

/// An error produced while evaluating an app (parse failure, runtime blame in
/// its test suite, ...).
#[derive(Debug, Clone)]
pub struct HarnessError {
    /// Which app failed.
    pub app: String,
    /// Description of the failure.
    pub message: String,
    /// The underlying error as a [`Diagnostic`], when one exists (a parse
    /// error or runtime error carries a span; a missing fixture does not).
    /// Boxed to keep the `Err` variant small.
    pub diagnostic: Option<Box<Diagnostic>>,
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.app, self.message)?;
        if let Some(d) = &self.diagnostic {
            write!(f, " [{}]", d.code)?;
        }
        Ok(())
    }
}

impl std::error::Error for HarnessError {}

/// The environment used for Table 1: core library + both DB DSL annotation
/// sets over the Discourse schema.
pub fn table1_env() -> CompRdl {
    crate::apps::discourse::app().build_env()
}

/// Regenerates Table 1: per library, the number of comp type definitions and
/// the lines of type-level code, plus the shared helper-method count.
pub fn table1() -> (Vec<Table1Row>, usize) {
    let env = table1_env();
    let libraries = [
        ("Array", "Array"),
        ("Hash", "Hash"),
        ("String", "String"),
        ("Float", "Float"),
        ("Integer", "Integer"),
        ("ActiveRecord", "Table"),
        ("Sequel", "Sequel::Dataset"),
    ];
    let rows = libraries
        .iter()
        .map(|(display, class)| Table1Row {
            library: display.to_string(),
            comp_type_definitions: env.annotation_count(class),
            ruby_loc: env.annotation_loc(class),
        })
        .collect();
    (rows, env.helper_count())
}

/// Runs the full evaluation for one app, producing its Table 2 row.
/// Checking runs sequentially; see [`evaluate_app_with`] for the threaded
/// variant.
///
/// # Errors
///
/// Returns a [`HarnessError`] if the app fails to parse, its test suite hits
/// a runtime error, or a dynamic check raises blame (none of which should
/// happen for the shipped corpus).
pub fn evaluate_app(app: &App) -> Result<Table2Row, HarnessError> {
    evaluate_app_with(app, 1)
}

/// Runs the full evaluation for one app, type checking its methods with
/// `check_threads` worker threads (1 = sequential) against a private
/// runtime memo.  See [`evaluate_app_shared`].
///
/// # Errors
///
/// See [`evaluate_app`].
pub fn evaluate_app_with(app: &App, check_threads: usize) -> Result<Table2Row, HarnessError> {
    evaluate_app_shared(app, check_threads, &Arc::new(SharedMemo::new()))
}

/// Runs the full evaluation for one app, type checking its methods with
/// `check_threads` worker threads (1 = sequential), with the checked test
/// run recording into the given [`SharedMemo`] under the app's namespace.
/// The diagnostics in the resulting row are sorted by span then code, so
/// the row renders byte-identically regardless of how many threads checked
/// it or in what order they finished; the runtime blames are kept in
/// execution order (which is deterministic per app).
///
/// Blame is collected rather than raised (`CheckConfig::raise_blame` off)
/// and lands in [`Table2Row::runtime_blames`] as span-carrying
/// [`Diagnostic`]s, so a blaming suite still reports a complete row.
///
/// # Errors
///
/// See [`evaluate_app`].
pub fn evaluate_app_shared(
    app: &App,
    check_threads: usize,
    memo: &Arc<SharedMemo>,
) -> Result<Table2Row, HarnessError> {
    let err = |message: String, diagnostic: Option<Box<Diagnostic>>| HarnessError {
        app: app.name.to_string(),
        message,
        diagnostic,
    };

    let env = app.build_env();
    // Parse as a two-file program (app source + test suite, distinct span
    // file ids) so dynamic-check sites cannot collide across files.  Parsing
    // never fails: recovery diagnostics (poisoned methods, error statements)
    // ride along and join the row's diagnostic bag below, so a broken method
    // costs exactly its own diagnostic and nothing else.
    let (program, _sources, parse_diags) = app.parse();

    // Interprocedural effect summaries: inferred bottom-up over the call
    // graph on the same worker budget, seeded from the environment the
    // checker itself trusts.  They feed three consumers below — the
    // checker's inferred effect layer, the taint-aware lint pass, and the
    // TERM0004 annotation-conflict warnings.
    let seed = crate::effects::seed_map(&env);
    let summaries = crate::effects::effects_pass(&program, &seed, check_threads);
    let inferred = crate::effects::summaries_to_inferred(&summaries);

    // Static checking with comp types (timed), with the inferred
    // summaries installed below the explicit annotation layer.
    let started = Instant::now();
    let comp_result = if check_threads > 1 {
        TypeChecker::check_labeled_parallel_with_effects(
            &env,
            &program,
            CheckOptions::default(),
            "app",
            check_threads,
            &inferred,
        )
    } else {
        let mut checker = TypeChecker::new(&env, &program, CheckOptions::default());
        checker.install_inferred_effects(&inferred);
        checker.check_labeled("app")
    };
    let check_time = started.elapsed();

    // The dataflow lint pass over the same parse, split across the same
    // worker budget as the checking run.  The split is output-invisible:
    // results merge back into method order and sort canonically.  The
    // summaries make `LINT0105` interprocedural.
    let lints = crate::lints::lint_bag(&crate::lints::lint_pass_with_summaries(
        &program,
        Some(&summaries),
        check_threads,
    ));

    // Static checking in plain-RDL mode (comp types disabled).
    let rdl_result = TypeChecker::new(
        &env,
        &program,
        CheckOptions { use_comp_types: false, ..CheckOptions::default() },
    )
    .check_labeled("app");

    // Run the test suite without checks.
    let plain = Interpreter::new(program.clone());
    let started = Instant::now();
    plain.eval_program().map_err(|e| {
        err(format!("test suite failed without checks: {e}"), Some(Box::new(e.into())))
    })?;
    let test_time_no_chk = started.elapsed();

    // Run the test suite with the inserted dynamic checks, collecting (not
    // raising) blame so migrating suites like `apps::sequel` complete and
    // report their full blame diagnostics.  Registering (rather than just
    // deriving) the namespace labels the app's row in `format_memo_stats`.
    let hook = comprdl::make_hook_shared(
        comp_result.checks(),
        comp_result.store.clone(),
        env.classes.clone(),
        env.helpers.clone(),
        CheckConfig { raise_blame: false, ..CheckConfig::default() },
        memo.clone(),
        memo.register_namespace(app.name),
    );
    let mut checked = Interpreter::new(program.clone());
    checked.set_hook(hook.clone());
    let started = Instant::now();
    checked.eval_program().map_err(|e| {
        err(format!("test suite failed with dynamic checks: {e}"), Some(Box::new(e.into())))
    })?;
    let test_time_with_chk = started.elapsed();
    let runtime_blames: DiagnosticBag =
        hook.take_blames().into_iter().map(Diagnostic::from).collect();

    // Canonical diagnostic order (span, then code): the checker already
    // returns methods in program order, but sorting here guarantees the
    // rendered output is stable even for aggregators that interleave.
    // TERM0004 annotation-conflict warnings (annotated stronger than
    // inferred) join the bag; they are warnings, so `Table2Row::errors`
    // and the seeded-bug pins are unaffected.
    let mut diagnostics: DiagnosticBag =
        comp_result.errors().into_iter().cloned().map(Diagnostic::from).collect();
    diagnostics.extend(
        TypeChecker::effect_conflicts(&env, &program, &inferred).into_iter().map(Diagnostic::from),
    );
    diagnostics.extend(parse_diags);
    diagnostics.sort_by_span_then_code();

    Ok(Table2Row {
        program: app.name.to_string(),
        group: app.group.to_string(),
        methods: comp_result.methods_checked(),
        loc: ruby_syntax::count_loc(app.source),
        extra_annotations: app.extra_annotations,
        casts: comp_result.total_casts(),
        casts_rdl: rdl_result.total_casts(),
        check_time,
        test_time_no_chk,
        test_time_with_chk,
        dynamic_checks_run: checked.checks_performed(),
        diagnostics,
        runtime_blames,
        lints,
    })
}

/// Aggregates diagnostics across evaluated rows: per app, the bag of every
/// type error its comp-type checking run produced (the per-app error counts
/// of the paper's Table 2, but carrying full span/code information).
pub fn corpus_diagnostics(rows: &[Table2Row]) -> Vec<(String, DiagnosticBag)> {
    rows.iter().map(|row| (row.program.clone(), row.diagnostics.clone())).collect()
}

/// Renders the per-app diagnostic aggregation as a compact table: app name,
/// error/warning counts, and counts by diagnostic code.
pub fn format_diagnostic_summary(per_app: &[(String, DiagnosticBag)]) -> String {
    let mut out = String::new();
    out.push_str(
        "Diagnostics per app (aggregated through the shared spine).
",
    );
    for (app, bag) in per_app {
        out.push_str(&format!(
            "{app:<12} {bag}
"
        ));
    }
    let total: usize = per_app.iter().map(|(_, b)| b.len()).sum();
    out.push_str(&format!(
        "{:<12} {total} diagnostics
",
        "Total"
    ));
    out
}

/// Runs the evaluation for every app in the corpus, sequentially, against
/// one shared runtime memo.
///
/// # Errors
///
/// Propagates the first [`HarnessError`] encountered.
pub fn table2() -> Result<Vec<Table2Row>, HarnessError> {
    let memo = Arc::new(SharedMemo::new());
    crate::apps::all().iter().map(|app| evaluate_app_shared(app, 1, &memo)).collect()
}

/// Runs the evaluation for every app in the corpus concurrently: one scoped
/// thread per app (the class table, annotations and helper registries are
/// `Send + Sync`, so each thread assembles and uses its environment
/// independently), with per-method work-stealing inside each app's checking
/// run.  All per-app hooks record into **one** [`SharedMemo`]; a store
/// mutation on any thread (e.g. the Sequel app's mid-suite migration) bumps
/// the memo's global epoch, so no thread can replay a verdict recorded
/// before it.  Rows come back in corpus order, each row's diagnostics are
/// sorted canonically and its runtime blames are deterministic per app, so
/// everything except the measured wall-clock timings is byte-identical to a
/// [`table2`] run.
///
/// # Errors
///
/// Propagates the [`HarnessError`] of the first app (in corpus order) that
/// failed.
pub fn table2_parallel() -> Result<Vec<Table2Row>, HarnessError> {
    table2_parallel_shared(&Arc::new(SharedMemo::new()))
}

/// [`table2_parallel`] against a caller-provided [`SharedMemo`], so
/// harnesses and benches can inspect shard occupancy and hit rates after
/// the run.
///
/// # Errors
///
/// See [`table2_parallel`].
pub fn table2_parallel_shared(memo: &Arc<SharedMemo>) -> Result<Vec<Table2Row>, HarnessError> {
    table2_parallel_faulted(memo, &crate::fault::FaultPlan::none())
}

/// [`table2_parallel_shared`] with seeded fault injection: each app worker
/// runs under `catch_unwind`, and a panic — injected by `plan` or genuine —
/// degrades to a placeholder row carrying one `ICE0001` diagnostic instead
/// of aborting the suite.  Every app not named by the plan evaluates exactly
/// as it would under [`FaultPlan::none`](crate::fault::FaultPlan::none)
/// (which is what [`table2_parallel_shared`] passes), so the healthy rows
/// are byte-identical under [`stable_report`] either way.
///
/// # Errors
///
/// Propagates the [`HarnessError`] of the first app (in corpus order) whose
/// evaluation *returned* an error.  Panics never propagate.
pub fn table2_parallel_faulted(
    memo: &Arc<SharedMemo>,
    plan: &crate::fault::FaultPlan,
) -> Result<Vec<Table2Row>, HarnessError> {
    let apps = crate::apps::all();
    let per_app_threads = std::thread::available_parallelism()
        .map(|n| n.get().div_ceil(apps.len().max(1)).max(2))
        .unwrap_or(2);
    let results: Vec<Result<Table2Row, HarnessError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = apps
            .iter()
            .map(|app| {
                scope.spawn(move || {
                    // AssertUnwindSafe: on panic the worker's partially
                    // mutated state (its private checker, its memo
                    // namespace) is discarded wholesale — nothing of it
                    // escapes into the placeholder row.
                    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        if plan.panics_for(app.name) {
                            panic!("injected fault: {} worker", app.name);
                        }
                        evaluate_app_shared(app, per_app_threads, memo)
                    }));
                    run.unwrap_or_else(|payload| Ok(ice_row(app, &*payload)))
                })
            })
            .collect();
        // The worker already converted panics; a panic reaching join here
        // would be a bug in the conversion itself, so fail loudly.
        handles.into_iter().map(|h| h.join().expect("fault isolation failed")).collect()
    });
    results.into_iter().collect()
}

/// The placeholder row for an app whose evaluation worker panicked: zero
/// counters, one `ICE0001` diagnostic naming the panic.  The diagnostic is
/// an error (the app was *not* evaluated) and [`stable_report`] renders it
/// on a distinct `ICE:`-prefixed line.
fn ice_row(app: &App, payload: &(dyn std::any::Any + Send)) -> Table2Row {
    let mut diagnostics = DiagnosticBag::new();
    diagnostics.push(
        Diagnostic::error(
            crate::fault::ICE_CODE,
            format!(
                "internal harness error: evaluation worker for `{}` panicked: {}",
                app.name,
                crate::fault::panic_message(payload)
            ),
        )
        .with_note("the app was not evaluated; all other apps completed normally"),
    );
    Table2Row {
        program: app.name.to_string(),
        group: app.group.to_string(),
        methods: 0,
        loc: ruby_syntax::count_loc(app.source),
        extra_annotations: app.extra_annotations,
        casts: 0,
        casts_rdl: 0,
        check_time: Duration::ZERO,
        test_time_no_chk: Duration::ZERO,
        test_time_with_chk: Duration::ZERO,
        dynamic_checks_run: 0,
        diagnostics,
        runtime_blames: DiagnosticBag::new(),
        lints: DiagnosticBag::new(),
    }
}

/// One row of the Table 2 **overhead** evaluation: the app's test-suite
/// wall-clock under four configurations (no dynamic checks at all, the
/// paper's pay-at-every-hit checks, the memoized fast path against a cold
/// shared memo, and a **warm** re-run against the now-populated memo), plus
/// the correctness evidence that makes the timings comparable — identical
/// check counts and byte-identical blame *sequences* across every checked
/// run.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Program name.
    pub program: String,
    /// Test-suite time with no hook installed.
    pub no_hook: Duration,
    /// Test-suite time with `CompRdlHook`, memoization off (the paper's
    /// baseline: every hit pays the full re-evaluation).
    pub unmemoized: Duration,
    /// Test-suite time with `CompRdlHook`, memoization on (cold memo).
    pub memoized: Duration,
    /// Test-suite time of a second memoized run against the same shared
    /// memo (warm: the run replays the first run's verdicts).
    pub memoized_warm: Duration,
    /// Dynamic checks executed (identical across all checked runs).
    pub checks_run: u64,
    /// Blame diagnostics produced (byte-identical sequence across all
    /// checked runs; 0 for every app whose suite does not migrate).
    pub blames: usize,
    /// Memo counters from the cold memoized run.
    pub memo_stats: comprdl::CacheStats,
    /// Memo counters from the warm memoized run (mostly hits, unless a
    /// mid-suite migration forces re-validation).
    pub warm_memo_stats: comprdl::CacheStats,
    /// Store-backed types interned after the unmemoized run.
    pub store_unmemoized: usize,
    /// Store-backed types interned after the memoized run (bounded by the
    /// number of distinct value shapes, not by hit count).
    pub store_memoized: usize,
}

impl OverheadRow {
    /// Dynamic-check overhead of the unmemoized hook as a fraction of the
    /// no-hook baseline.
    pub fn overhead_unmemoized(&self) -> f64 {
        overhead_fraction(self.no_hook, self.unmemoized)
    }

    /// Dynamic-check overhead of the memoized hook as a fraction of the
    /// no-hook baseline.
    pub fn overhead_memoized(&self) -> f64 {
        overhead_fraction(self.no_hook, self.memoized)
    }

    /// Dynamic-check overhead of the warm memoized run as a fraction of the
    /// no-hook baseline.
    pub fn overhead_memoized_warm(&self) -> f64 {
        overhead_fraction(self.no_hook, self.memoized_warm)
    }
}

fn overhead_fraction(base: Duration, with: Duration) -> f64 {
    let base = base.as_secs_f64();
    if base == 0.0 {
        return 0.0;
    }
    (with.as_secs_f64() - base) / base
}

/// Runs one app's test suite under the Table 2 overhead configurations
/// against a private shared memo.  See [`evaluate_overhead_shared`].
///
/// # Errors
///
/// See [`evaluate_overhead_shared`].
pub fn evaluate_overhead(app: &App) -> Result<OverheadRow, HarnessError> {
    evaluate_overhead_shared(app, &Arc::new(SharedMemo::new()))
}

/// Runs one app's test suite under the four Table 2 overhead
/// configurations — no hook, pay-at-every-hit, memoized against the given
/// (cold for this app) [`SharedMemo`], and a **warm** memoized re-run
/// against the same memo — and gates the result on run-to-run agreement:
///
/// * the memoized and unmemoized runs must execute the same number of
///   checks and produce **byte-identical blame sequences** (not just sets:
///   replay order is part of observable behaviour), and
/// * the warm run must agree with the cold one on both — a divergence means
///   the shared memo leaked a verdict across runs (cross-talk), and the row
///   is an error, not a measurement.
///
/// Blame is collected rather than raised (`CheckConfig::raise_blame` off)
/// so the comparison always sees the complete sequence.
///
/// # Errors
///
/// Returns a [`HarnessError`] on parse/runtime failure or when a
/// correctness gate fails.
pub fn evaluate_overhead_shared(
    app: &App,
    memo: &Arc<SharedMemo>,
) -> Result<OverheadRow, HarnessError> {
    let err = |message: String, diagnostic: Option<Box<Diagnostic>>| HarnessError {
        app: app.name.to_string(),
        message,
        diagnostic,
    };

    let env = app.build_env();
    let (program, _sources, _parse_diags) = app.parse();
    let comp = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("app");

    // Baseline: no hook installed.
    let plain = Interpreter::new(program.clone());
    let started = Instant::now();
    plain.eval_program().map_err(|e| {
        err(format!("test suite failed without checks: {e}"), Some(Box::new(e.into())))
    })?;
    let no_hook = started.elapsed();

    // One checked run; returns (time, checks, blames, stats, store size).
    let checked_run = |memoize: bool| {
        let hook = comprdl::make_hook_shared(
            comp.checks(),
            comp.store.clone(),
            env.classes.clone(),
            env.helpers.clone(),
            CheckConfig { memoize, raise_blame: false, ..CheckConfig::default() },
            memo.clone(),
            memo.register_namespace(app.name),
        );
        let mut interp = Interpreter::new(program.clone());
        interp.set_hook(hook.clone());
        let started = Instant::now();
        interp.eval_program().map_err(|e| {
            err(format!("test suite failed with dynamic checks: {e}"), Some(Box::new(e.into())))
        })?;
        let elapsed = started.elapsed();
        Ok((
            elapsed,
            interp.checks_performed(),
            hook.take_blames(),
            hook.memo_stats(),
            hook.store_size(),
        ))
    };
    let (unmemoized, checks_unmemo, blames_unmemo, _, store_unmemoized) = checked_run(false)?;
    let (memoized, checks_memo, blames_memo, memo_stats, store_memoized) = checked_run(true)?;

    // The correctness gate: memoization must not change observable
    // behaviour.
    if checks_unmemo != checks_memo {
        return Err(err(
            format!(
                "memoized run executed {checks_memo} dynamic checks, unmemoized {checks_unmemo}"
            ),
            None,
        ));
    }
    if blames_unmemo != blames_memo {
        return Err(err(
            blame_divergence("unmemoized", &blames_unmemo, "memoized", &blames_memo),
            None,
        ));
    }

    // The warm-run gate: a second memoized run against the now-populated
    // shared memo must reproduce the cold run exactly.  A divergence here
    // means a verdict leaked across runs or namespaces (shared-memo
    // cross-talk) and fails loudly.
    let (memoized_warm, checks_warm, blames_warm, warm_memo_stats, _) = checked_run(true)?;
    if checks_warm != checks_memo {
        return Err(err(
            format!(
                "shared-memo cross-talk: warm run executed {checks_warm} dynamic checks, cold \
                 run {checks_memo}"
            ),
            None,
        ));
    }
    if blames_warm != blames_memo {
        return Err(err(
            format!(
                "shared-memo cross-talk: {}",
                blame_divergence("cold", &blames_memo, "warm", &blames_warm)
            ),
            None,
        ));
    }

    Ok(OverheadRow {
        program: app.name.to_string(),
        no_hook,
        unmemoized,
        memoized,
        memoized_warm,
        checks_run: checks_memo,
        blames: blames_memo.len(),
        memo_stats,
        warm_memo_stats,
        store_unmemoized,
        store_memoized,
    })
}

/// Describes how two blame sequences differ — first index of divergence
/// included, since order (not just membership) is gated.
fn blame_divergence(
    left_name: &str,
    left: &[BlameDiagnostic],
    right_name: &str,
    right: &[BlameDiagnostic],
) -> String {
    let at = left
        .iter()
        .zip(right.iter())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| left.len().min(right.len()));
    format!(
        "{left_name} and {right_name} blame sequences diverged at index {at} \
         ({} vs {} blames):\n  {left_name}: {left:?}\n  {right_name}: {right:?}",
        left.len(),
        right.len()
    )
}

/// Runs the Table 2 overhead evaluation for every app in the corpus against
/// one shared memo (see [`evaluate_overhead_shared`]).
///
/// # Errors
///
/// Propagates the first [`HarnessError`] encountered — including a
/// correctness-gate failure, which is what the CI smoke bench relies on.
pub fn table2_overhead() -> Result<Vec<OverheadRow>, HarnessError> {
    table2_overhead_shared(&Arc::new(SharedMemo::new()))
}

/// [`table2_overhead`] against a caller-provided [`SharedMemo`], so benches
/// can report its shard hit/miss statistics after the run.
///
/// # Errors
///
/// See [`table2_overhead`].
pub fn table2_overhead_shared(memo: &Arc<SharedMemo>) -> Result<Vec<OverheadRow>, HarnessError> {
    crate::apps::all().iter().map(|app| evaluate_overhead_shared(app, memo)).collect()
}

/// Renders a [`SharedMemo`]'s statistics — aggregate hit / miss /
/// invalidation / eviction counters, hit rate, per-shard occupancy, and one
/// row per registered namespace (epoch and counters per app) — as the
/// block the CI smoke benches print, so regressions in cross-thread hit
/// rate or in namespace isolation are visible in CI logs.
pub fn format_memo_stats(memo: &SharedMemo) -> String {
    let stats = memo.stats();
    // One pass over the shards: the headline total must agree with the
    // per-shard list even if hooks are still recording concurrently.
    let sizes = memo.shard_sizes();
    let total: usize = sizes.iter().sum();
    let rendered: Vec<String> = sizes.iter().map(usize::to_string).collect();
    let mut out = format!(
        "SharedMemo: {total} entries across {} shards (capacity {}) [{}]\n\
         SharedMemo: {} hits / {} misses / {} invalidations / {} evictions \
         ({:.1}% hit rate)\n",
        memo.shard_count(),
        memo.capacity(),
        rendered.join(" "),
        stats.hits,
        stats.misses,
        stats.invalidations,
        stats.evictions,
        stats.hit_rate() * 100.0,
    );
    // Per-namespace rows: each app's epoch (how many migrations its hooks
    // observed) and its own counters, so one app's churn is attributable
    // instead of being smeared across the aggregate line.
    for ns in memo.namespace_stats() {
        let label = if ns.label.is_empty() {
            format!("ns#{:016x}", ns.namespace)
        } else {
            ns.label.clone()
        };
        out.push_str(&format!(
            "  {label:<12} epoch {:>3}  {:>6} hits / {:>6} misses / {:>4} inval / {:>4} evict \
             ({:.1}% hit rate)\n",
            ns.epoch,
            ns.stats.hits,
            ns.stats.misses,
            ns.stats.invalidations,
            ns.stats.evictions,
            ns.stats.hit_rate() * 100.0,
        ));
    }
    out
}

/// Renders the overhead rows in roughly the layout of the paper's Table 2
/// overhead columns, extended with the memoized fast path (cold and warm
/// against the shared memo) and the memo's evidence (hit counts, store
/// sizes).
pub fn format_overhead(rows: &[OverheadRow]) -> String {
    let mut out = String::new();
    out.push_str("Table 2 (overhead). Test-suite time under dynamic checks.\n");
    out.push_str(&format!(
        "{:<12} {:>7} {:>10} {:>11} {:>7} {:>11} {:>7} {:>9} {:>7} {:>9} {:>13} {:>6}\n",
        "Program",
        "DynChk",
        "NoHook(ms)",
        "Unmemo(ms)",
        "Ovh%",
        "Memo(ms)",
        "Ovh%",
        "Warm(ms)",
        "Ovh%",
        "Hits(c/w)",
        "Store(un/me)",
        "Blames"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>7} {:>10.3} {:>11.3} {:>7.1} {:>11.3} {:>7.1} {:>9.3} {:>7.1} \
             {:>4}/{:<4} {:>6}/{:<6} {:>6}\n",
            r.program,
            r.checks_run,
            r.no_hook.as_secs_f64() * 1000.0,
            r.unmemoized.as_secs_f64() * 1000.0,
            r.overhead_unmemoized() * 100.0,
            r.memoized.as_secs_f64() * 1000.0,
            r.overhead_memoized() * 100.0,
            r.memoized_warm.as_secs_f64() * 1000.0,
            r.overhead_memoized_warm() * 100.0,
            r.memo_stats.hits,
            r.warm_memo_stats.hits,
            r.store_unmemoized,
            r.store_memoized,
            r.blames
        ));
    }
    let total_un: f64 = rows.iter().map(|r| r.unmemoized.as_secs_f64()).sum();
    let total_memo: f64 = rows.iter().map(|r| r.memoized.as_secs_f64()).sum();
    let total_warm: f64 = rows.iter().map(|r| r.memoized_warm.as_secs_f64()).sum();
    let total_base: f64 = rows.iter().map(|r| r.no_hook.as_secs_f64()).sum();
    if total_base > 0.0 {
        out.push_str(&format!(
            "Overhead across the corpus: {:.1}% unmemoized, {:.1}% memoized, {:.1}% warm\n",
            (total_un - total_base) / total_base * 100.0,
            (total_memo - total_base) / total_base * 100.0,
            (total_warm - total_base) / total_base * 100.0
        ));
    }
    out
}

/// Renders every deterministic column of the given rows (plus each row's
/// diagnostic summary) — everything in Table 2 except the measured
/// wall-clock timings.  Sequential and parallel runs over the same corpus
/// must produce byte-identical output from this function; the test suite
/// and the CI smoke bench enforce that.
pub fn stable_report(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>6} {:>6} {:>7} {:>6} {:>10} {:>7} {:>5} {:>5}\n",
        "Program", "Meths", "LoC", "Annots", "Casts", "Casts(RDL)", "DynChk", "Errs", "Lints"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>6} {:>6} {:>7} {:>6} {:>10} {:>7} {:>5} {:>5}\n",
            r.program,
            r.methods,
            r.loc,
            r.extra_annotations,
            r.casts,
            r.casts_rdl,
            r.dynamic_checks_run,
            r.errors(),
            r.lint_warnings()
        ));
        for d in r.diagnostics.iter() {
            // Internal errors (worker panics) render on a distinct line so
            // a degraded row can never be mistaken for checker output.
            if d.code == crate::fault::ICE_CODE {
                out.push_str(&format!("    ICE: {d}\n"));
            } else {
                out.push_str(&format!("    {d}\n"));
            }
        }
        // Runtime blames in execution order: deterministic per app, so this
        // stays byte-identical between sequential / parallel and memoized /
        // unmemoized runs.
        for d in r.runtime_blames.iter() {
            out.push_str(&format!("    blame: {d}\n"));
        }
        // Lint warnings in canonical order (sorted when the row was built).
        for d in r.lints.iter() {
            out.push_str(&format!("    {d}\n"));
        }
    }
    out.push_str(&format_diagnostic_summary(&corpus_diagnostics(rows)));
    out
}

/// Renders an app's runtime blame diagnostics as annotated source snippets
/// through `diagnostics::render_in`, resolving each blame's call-site span
/// against the app's two-file [`diagnostics::SourceSet`].  Returns the
/// empty string for apps that never blamed.
pub fn render_runtime_blames(app: &App, row: &Table2Row) -> String {
    if row.runtime_blames.is_empty() {
        return String::new();
    }
    let (_, sources, _) = app.parse();
    let mut out = String::new();
    for d in row.runtime_blames.iter() {
        out.push_str(&diagnostics::render_in(&sources, d));
        out.push('\n');
    }
    out
}

/// Renders Table 1 in roughly the paper's layout.
pub fn format_table1(rows: &[Table1Row], helper_count: usize) -> String {
    let mut out = String::new();
    out.push_str("Table 1. Library methods with comp type definitions.\n");
    out.push_str(&format!(
        "{:<14} {:>20} {:>10}\n",
        "Library", "Comp Type Definitions", "Ruby LoC"
    ));
    let mut total_defs = 0;
    let mut total_loc = 0;
    for r in rows {
        total_defs += r.comp_type_definitions;
        total_loc += r.ruby_loc;
        out.push_str(&format!(
            "{:<14} {:>20} {:>10}\n",
            r.library, r.comp_type_definitions, r.ruby_loc
        ));
    }
    out.push_str(&format!("{:<14} {:>20} {:>10}\n", "Total", total_defs, total_loc));
    out.push_str(&format!("Helper methods (shared): {helper_count}\n"));
    out
}

/// Renders Table 2 in roughly the paper's layout.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 2. Type checking results.\n");
    out.push_str(&format!(
        "{:<12} {:>6} {:>6} {:>7} {:>6} {:>10} {:>10} {:>12} {:>12} {:>5}\n",
        "Program",
        "Meths",
        "LoC",
        "Annots",
        "Casts",
        "Casts(RDL)",
        "Check(ms)",
        "NoChk(ms)",
        "w/Chk(ms)",
        "Errs"
    ));
    let mut totals = (0usize, 0usize, 0usize, 0usize, 0usize, 0usize, 0.0f64, 0.0f64, 0.0f64);
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>6} {:>6} {:>7} {:>6} {:>10} {:>10.2} {:>12.3} {:>12.3} {:>5}\n",
            r.program,
            r.methods,
            r.loc,
            r.extra_annotations,
            r.casts,
            r.casts_rdl,
            r.check_time.as_secs_f64() * 1000.0,
            r.test_time_no_chk.as_secs_f64() * 1000.0,
            r.test_time_with_chk.as_secs_f64() * 1000.0,
            r.errors()
        ));
        totals.0 += r.methods;
        totals.1 += r.loc;
        totals.2 += r.extra_annotations;
        totals.3 += r.casts;
        totals.4 += r.casts_rdl;
        totals.5 += r.errors();
        totals.6 += r.check_time.as_secs_f64() * 1000.0;
        totals.7 += r.test_time_no_chk.as_secs_f64() * 1000.0;
        totals.8 += r.test_time_with_chk.as_secs_f64() * 1000.0;
    }
    out.push_str(&format!(
        "{:<12} {:>6} {:>6} {:>7} {:>6} {:>10} {:>10.2} {:>12.3} {:>12.3} {:>5}\n",
        "Total",
        totals.0,
        totals.1,
        totals.2,
        totals.3,
        totals.4,
        totals.6,
        totals.7,
        totals.8,
        totals.5
    ));
    let ratio = if totals.3 > 0 { totals.4 as f64 / totals.3 as f64 } else { f64::INFINITY };
    out.push_str(&format!("Cast reduction (RDL / CompRDL): {ratio:.2}x\n"));
    if totals.7 > 0.0 {
        out.push_str(&format!(
            "Dynamic check overhead: {:.1}%\n",
            (totals.8 - totals.7) / totals.7 * 100.0
        ));
    }
    out
}
