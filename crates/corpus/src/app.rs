//! The definition of a subject program ("app") in the evaluation corpus.

use comprdl::CompRdl;
use db_types::DbRegistry;

/// A synthetic subject program, standing in for one of the six apps the
/// paper evaluates (Wikipedia client, Twitter gem, Discourse, Huginn,
/// Code.org, Journey).
pub struct App {
    /// Display name used in Table 2.
    pub name: &'static str,
    /// Which group the app belongs to ("API client libraries" or "Rails
    /// Applications"), mirroring Table 2's grouping.
    pub group: &'static str,
    /// The database schema / associations the app uses (`None` for the API
    /// client libraries).
    pub db: Option<DbRegistry>,
    /// App-specific annotations: the signatures (with `typecheck: "app"`
    /// labels) of the methods selected for checking, plus the "extra
    /// annotations" for globals, instance variables and helper methods.
    pub annotate: fn(&mut CompRdl),
    /// The app's Ruby-subset source: the classes and methods under check
    /// plus the runtime fixtures they need.
    pub source: &'static str,
    /// A small test suite (top-level expressions using `assert` /
    /// `assert_equal`) exercising the checked methods, used to measure the
    /// overhead of the inserted dynamic checks.
    pub test_suite: &'static str,
    /// Number of "extra annotations" (paper Table 2 column) the app needed.
    pub extra_annotations: usize,
    /// Number of genuine errors seeded in the app (Table 2 "Errs").
    pub expected_errors: usize,
}

impl App {
    /// The full program source: app code followed by the test suite.
    ///
    /// This is the *single-file* view (everything in file `0`); prefer
    /// [`App::parse`], which keeps the app and its test suite as separate
    /// files so their spans stay distinguishable.
    pub fn full_source(&self) -> String {
        format!("{}\n{}\n", self.source, self.test_suite)
    }

    fn slug(&self) -> String {
        self.name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
            .collect()
    }

    /// Display name of the app's source file (e.g. `journey.rb`).
    pub fn source_file_name(&self) -> String {
        format!("{}.rb", self.slug())
    }

    /// Display name of the app's test-suite file (e.g. `journey_test.rb`).
    pub fn test_file_name(&self) -> String {
        format!("{}_test.rb", self.slug())
    }

    /// Parses the app as a **two-file** program — the app source and its
    /// test suite each get their own file id — returning the merged program,
    /// the [`diagnostics::SourceSet`] that maps every span's file id back to
    /// a named buffer, and any parse-recovery diagnostics.  Byte offsets
    /// restart at `0` in each file, so the file id in each span is what keeps
    /// call-site identities (and therefore the inserted dynamic checks) from
    /// colliding across files.
    ///
    /// Parsing never fails: malformed regions degrade to error placeholders
    /// / poisoned methods (see `ruby_syntax::parse_program`) and each is
    /// reported through the returned diagnostics.
    pub fn parse(
        &self,
    ) -> (ruby_syntax::Program, diagnostics::SourceSet, Vec<diagnostics::Diagnostic>) {
        self.parse_with_source(self.source)
    }

    /// Like [`App::parse`], but with the app's source text replaced by
    /// `source` (the test suite is kept as-is).  This is the entry point for
    /// incremental re-checking and fault-injection experiments: the driver
    /// injects an edited (possibly syntactically broken) variant of the app
    /// and compares which methods need re-checking or which diagnostics
    /// appear.
    pub fn parse_with_source(
        &self,
        source: &str,
    ) -> (ruby_syntax::Program, diagnostics::SourceSet, Vec<diagnostics::Diagnostic>) {
        let mut sources = diagnostics::SourceSet::new();
        let app_file = sources.add(self.source_file_name(), source);
        let test_file = sources.add(self.test_file_name(), self.test_suite);
        let (app, mut diags) = ruby_syntax::parse_program_in_file(source, app_file);
        let (tests, mut test_diags) =
            ruby_syntax::parse_program_in_file(self.test_suite, test_file);
        diags.append(&mut test_diags);
        (app.merge(tests), sources, diags)
    }

    /// Builds the CompRDL environment for this app: core library
    /// annotations, DB DSL annotations (when the app uses a database), and
    /// the app's own annotations.
    pub fn build_env(&self) -> CompRdl {
        let mut env = CompRdl::new();
        comprdl::stdlib::register_all(&mut env);
        if let Some(db) = &self.db {
            db_types::register_all(&mut env, std::sync::Arc::new(db.clone()));
        }
        (self.annotate)(&mut env);
        env
    }
}
