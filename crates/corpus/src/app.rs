//! The definition of a subject program ("app") in the evaluation corpus.

use comprdl::CompRdl;
use db_types::DbRegistry;

/// A synthetic subject program, standing in for one of the six apps the
/// paper evaluates (Wikipedia client, Twitter gem, Discourse, Huginn,
/// Code.org, Journey).
pub struct App {
    /// Display name used in Table 2.
    pub name: &'static str,
    /// Which group the app belongs to ("API client libraries" or "Rails
    /// Applications"), mirroring Table 2's grouping.
    pub group: &'static str,
    /// The database schema / associations the app uses (`None` for the API
    /// client libraries).
    pub db: Option<DbRegistry>,
    /// App-specific annotations: the signatures (with `typecheck: "app"`
    /// labels) of the methods selected for checking, plus the "extra
    /// annotations" for globals, instance variables and helper methods.
    pub annotate: fn(&mut CompRdl),
    /// The app's Ruby-subset source: the classes and methods under check
    /// plus the runtime fixtures they need.
    pub source: &'static str,
    /// A small test suite (top-level expressions using `assert` /
    /// `assert_equal`) exercising the checked methods, used to measure the
    /// overhead of the inserted dynamic checks.
    pub test_suite: &'static str,
    /// Number of "extra annotations" (paper Table 2 column) the app needed.
    pub extra_annotations: usize,
    /// Number of genuine errors seeded in the app (Table 2 "Errs").
    pub expected_errors: usize,
}

impl App {
    /// The full program source: app code followed by the test suite.
    pub fn full_source(&self) -> String {
        format!("{}\n{}\n", self.source, self.test_suite)
    }

    /// Builds the CompRDL environment for this app: core library
    /// annotations, DB DSL annotations (when the app uses a database), and
    /// the app's own annotations.
    pub fn build_env(&self) -> CompRdl {
        let mut env = CompRdl::new();
        comprdl::stdlib::register_all(&mut env);
        if let Some(db) = &self.db {
            db_types::register_all(&mut env, std::sync::Arc::new(db.clone()));
        }
        (self.annotate)(&mut env);
        env
    }
}
