//! Incremental re-checking of the corpus against a persistent
//! [`CheckCache`].
//!
//! A from-scratch corpus run ([`crate::table2`]) type checks every labeled
//! method of every app.  The incremental driver here re-checks only the
//! methods whose **Merkle dependency hash** moved since the cached run:
//!
//! 1. Parse the app (optionally with an edited source, see
//!    [`crate::App::parse_with_source`]) and build its
//!    [`comprdl::semdep::DepGraph`], which assigns every labeled method a
//!    Merkle hash over its own structure plus everything its verdict depends
//!    on (callees, annotation signatures, type-level helper bodies).
//! 2. **Phase A (replay):** for each labeled method, ask the cache for a
//!    verdict stored under the same `(app, env hash, method, Merkle hash)`;
//!    hits are thawed into a fresh [`rdl_types::TypeStore`] with their spans
//!    re-anchored against the *current* parse, so layout-only edits replay
//!    byte-identically.
//! 3. **Phase B (check):** the misses are checked for real via
//!    [`TypeChecker::check_methods`]; the phase-B store is merged into the
//!    replay store exactly like the parallel harness merges worker stores
//!    (absorb + shift of every inserted check's store-backed types).
//! 4. Both checking runs — comp types on, and the plain-RDL comparison run
//!    (comp types off, cached under `"<app>::plain"`) — are recorded back
//!    into the cache, which the caller persists with
//!    [`CheckCache::save`].
//!
//! The resulting [`Table2Row`] is built by exactly the same recipe as
//! [`crate::evaluate_app_shared`], so [`crate::stable_report`] over an
//! incremental run is byte-identical to a from-scratch run — that equality
//! is what makes replaying a cached verdict *sound to observe*: if it ever
//! broke, the cache would be changing answers, not just saving work.

use crate::app::App;
use crate::harness::{HarnessError, Table2Row};
use comprdl::persist::content_hash;
use comprdl::semdep::{env_hash, DepGraph};
use comprdl::{
    CheckCache, CheckConfig, CheckOptions, CompRdl, MethodCheckResult, ProgramCheckResult,
    SharedMemo, TypeChecker,
};
use diagnostics::{Diagnostic, DiagnosticBag};
use rdl_types::TypeStore;
use ruby_interp::Interpreter;
use ruby_syntax::ast::MethodDef;
use ruby_syntax::Program;
use std::sync::Arc;
use std::time::Instant;

/// How much of one checking pass was replayed from the cache versus
/// re-checked for real.
#[derive(Debug, Clone, Default)]
pub struct RecheckStats {
    /// Labeled methods in the pass.
    pub total: usize,
    /// Methods whose verdicts replayed from the cache.
    pub replayed: usize,
    /// Methods that had to be re-checked, as `(owner, name, singleton)`
    /// identities in program order (`checked_methods.len()` is the re-check
    /// count).
    pub checked_methods: Vec<(String, String, bool)>,
}

impl RecheckStats {
    /// Number of methods that had to be re-checked.
    pub fn checked(&self) -> usize {
        self.checked_methods.len()
    }

    /// True when every verdict came from the cache.
    pub fn all_replayed(&self) -> bool {
        self.replayed == self.total && self.checked_methods.is_empty()
    }
}

/// Replay/re-check counters for one app's two checking passes.
#[derive(Debug, Clone)]
pub struct AppRecheck {
    /// App name.
    pub app: String,
    /// The comp-type checking pass.
    pub comp: RecheckStats,
    /// The plain-RDL comparison pass (comp types disabled), cached under
    /// `"<app>::plain"`.
    pub plain: RecheckStats,
    /// The dataflow lint pass.  Keyed by each method's **Merkle**
    /// dependency hash — `LINT0105` follows taint through calls, so a lint
    /// verdict depends on the method's transitive callees, exactly what
    /// the Merkle hash covers.  Layout-only edits still replay every
    /// finding (the hash is layout-invariant).
    pub lint: RecheckStats,
    /// The effect-summary inference pass (termination / purity / taint),
    /// Merkle-keyed like the lints.  Replay is per-SCC: a component is
    /// replayed only when every member's cached record matches.
    pub effects: RecheckStats,
}

impl AppRecheck {
    /// True when both checking passes, the lint pass and the effect
    /// inference replayed every verdict.
    pub fn all_replayed(&self) -> bool {
        self.comp.all_replayed()
            && self.plain.all_replayed()
            && self.lint.all_replayed()
            && self.effects.all_replayed()
    }
}

/// One incremental checking pass: replay what the cache can prove unchanged,
/// check the rest, and merge the two stores so the result is
/// indistinguishable from a from-scratch [`TypeChecker::check_labeled`] run.
#[allow(clippy::too_many_arguments)]
fn check_incremental(
    cache: &CheckCache,
    cache_key: &str,
    env: &CompRdl,
    program: &Program,
    options: CheckOptions,
    env_h: u64,
    files: &[u64],
    graph: &DepGraph,
    effects: &[comprdl::InferredEffect],
) -> (ProgramCheckResult, RecheckStats) {
    let selected = TypeChecker::labeled_methods(env, program, "app");
    let total = selected.len();

    // Phase A: replay.  Thawed types land in a fresh store, so phase B's
    // absorbed ids never collide with replayed ones.
    let mut store = TypeStore::new();
    let mut slots: Vec<Option<MethodCheckResult>> = Vec::with_capacity(total);
    let mut to_check: Vec<(usize, (String, &MethodDef))> = Vec::new();
    for (idx, (owner, def)) in selected.iter().enumerate() {
        let replayed = graph.merkle(owner, &def.name, def.singleton).and_then(|merkle| {
            cache.replay(cache_key, env, env_h, files, owner, def, merkle, &mut store)
        });
        match replayed {
            Some(result) => slots.push(Some(result)),
            None => {
                slots.push(None);
                to_check.push((idx, (owner.clone(), *def)));
            }
        }
    }
    let replayed = total - to_check.len();
    let checked_methods: Vec<(String, String, bool)> = to_check
        .iter()
        .map(|(_, (owner, def))| (owner.clone(), def.name.clone(), def.singleton))
        .collect();

    // Phase B: really check the misses, then merge their store into the
    // replay store the same way the parallel harness merges worker stores.
    let mut cache_stats = comprdl::CacheStats::default();
    if !to_check.is_empty() {
        let subset: Vec<(String, &MethodDef)> =
            to_check.iter().map(|(_, pair)| pair.clone()).collect();
        // Install the same inferred effect layer the from-scratch harness
        // uses, so a re-checked method gets the same verdict it would get
        // cold.  (Replayed verdicts already saw it: a summary can only
        // change if some transitive callee changed, which moves the
        // caller's Merkle hash and forces a re-check.)
        let mut checker = TypeChecker::new(env, program, options);
        checker.install_inferred_effects(effects);
        let fresh = checker.check_methods(&subset);
        cache_stats = fresh.cache_stats;
        let shift = store.absorb(fresh.store);
        for ((idx, _), mut result) in to_check.into_iter().zip(fresh.methods) {
            for check in &mut result.checks {
                check.expected_return = shift.apply(&check.expected_return);
                if let Some(consistency) = &mut check.consistency {
                    consistency.expected = shift.apply(&consistency.expected);
                }
            }
            slots[idx] = Some(result);
        }
    }

    let methods: Vec<MethodCheckResult> = slots.into_iter().flatten().collect();
    debug_assert_eq!(methods.len(), total);
    (
        ProgramCheckResult { methods, store, cache_stats },
        RecheckStats { total, replayed, checked_methods },
    )
}

/// Cache key for an app's plain-RDL (comp types disabled) checking pass.
fn plain_key(app: &App) -> String {
    format!("{}::plain", app.name)
}

/// Runs the full evaluation for one app **incrementally** against `cache`,
/// optionally with its source replaced by `source_override` (the edited-file
/// scenario).  Produces the same [`Table2Row`] as
/// [`crate::evaluate_app_shared`] — byte-identical under
/// [`crate::stable_report`] — plus the replay/re-check counters, and records
/// the (possibly refreshed) verdicts back into `cache`.
///
/// # Errors
///
/// See [`crate::evaluate_app`].
pub fn evaluate_app_incremental(
    app: &App,
    source_override: Option<&str>,
    cache: &mut CheckCache,
    memo: &Arc<SharedMemo>,
) -> Result<(Table2Row, AppRecheck), HarnessError> {
    let err = |message: String, diagnostic: Option<Box<Diagnostic>>| HarnessError {
        app: app.name.to_string(),
        message,
        diagnostic,
    };

    let source = source_override.unwrap_or(app.source);
    let env = app.build_env();
    // Parsing never fails; recovery diagnostics join the row's bag below,
    // exactly as in `evaluate_app_shared`, so a warm run over a broken file
    // renders byte-identically to a cold one.
    let (program, _sources, parse_diags) = app.parse_with_source(source);

    // The cache validators: content hashes of both files (indexed by span
    // file id: app = 0, tests = 1), the environment hash, and the Merkle
    // dependency hashes of every method.
    let files = vec![content_hash(source), content_hash(app.test_suite)];
    let env_h = env_hash(&env);
    let graph = DepGraph::build(&env, &program);

    // Interprocedural effect summaries, incrementally: every cached record
    // whose Merkle hash still matches replays verbatim; the rest are
    // inferred against that baseline (whole SCCs at a time — a component
    // replays only when every member hits).  The summaries feed the same
    // three consumers as in `evaluate_app_shared`: the checker's inferred
    // effect layer, the taint-aware lint pass, and the TERM0004 warnings.
    let seed = crate::effects::seed_map(&env);
    let fixed = crate::effects::replay_baseline(cache, app.name, &program, &graph);
    let (summaries, _) = analysis::ProgramSummaries::infer_with_baseline(&program, &seed, &fixed);
    let all_methods = program.methods();
    let resummarized_sccs: std::collections::BTreeSet<usize> = {
        let mut members: std::collections::BTreeMap<usize, Vec<(String, String, bool)>> =
            std::collections::BTreeMap::new();
        for s in summaries.iter() {
            members.entry(s.scc).or_default().push((s.owner.clone(), s.name.clone(), s.singleton));
        }
        members
            .into_iter()
            .filter(|(_, ids)| !ids.iter().all(|id| fixed.contains_key(id)))
            .map(|(scc, _)| scc)
            .collect()
    };
    let effect_checked: Vec<(String, String, bool)> = all_methods
        .iter()
        .filter(|(owner, def)| {
            summaries
                .get(owner, &def.name, def.singleton)
                .is_some_and(|s| resummarized_sccs.contains(&s.scc))
        })
        .map(|(owner, def)| (owner.clone(), def.name.clone(), def.singleton))
        .collect();
    let effect_stats = RecheckStats {
        total: all_methods.len(),
        replayed: all_methods.len() - effect_checked.len(),
        checked_methods: effect_checked,
    };
    let inferred = crate::effects::summaries_to_inferred(&summaries);

    // Static checking with comp types (timed; replay + re-check).
    let started = Instant::now();
    let (comp_result, comp_stats) = check_incremental(
        cache,
        app.name,
        &env,
        &program,
        CheckOptions::default(),
        env_h,
        &files,
        &graph,
        &inferred,
    );
    let check_time = started.elapsed();

    // The lint pass, incrementally: replay any method whose **Merkle**
    // hash matches the cached verdict (`LINT0105` follows taint through
    // calls, so a lint verdict depends on the method's transitive callees
    // — the semhash alone would replay stale findings after a callee
    // edit), and lint the rest for real against the current summaries.
    // This reads the cache *before* `record_app` below rebuilds the app
    // entry against the current file table.  Replayed records render
    // through the same code-derived notes as fresh findings, so the bag is
    // byte-identical either way.
    let mut lint_stats =
        RecheckStats { total: all_methods.len(), replayed: 0, checked_methods: Vec::new() };
    let mut lint_bag = DiagnosticBag::new();
    let mut lint_records: Vec<(String, &MethodDef, u64, Vec<comprdl::LintRecord>)> =
        Vec::with_capacity(all_methods.len());
    for (owner, def) in &all_methods {
        let merkle = graph
            .merkle(owner, &def.name, def.singleton)
            .unwrap_or_else(|| ruby_syntax::method_hash(def));
        match cache.replay_lints(app.name, &files, owner, def, merkle) {
            Some(records) => {
                lint_stats.replayed += 1;
                lint_bag.extend(records.iter().map(crate::lints::record_to_diagnostic));
                lint_records.push((owner.clone(), *def, merkle, records));
            }
            None => {
                lint_stats.checked_methods.push((owner.clone(), def.name.clone(), def.singleton));
                let fresh = analysis::lint_method_with_summaries(owner, def, Some(&summaries));
                lint_bag.extend(fresh.findings.iter().map(diagnostics::Diagnostic::from));
                lint_records.push((
                    owner.clone(),
                    *def,
                    merkle,
                    crate::lints::findings_to_records(&fresh),
                ));
            }
        }
    }
    lint_bag.sort_by_span_then_code();
    let lint_files = files.clone();

    // Static checking in plain-RDL mode, incrementally under its own key
    // (same Merkle hashes: the dependency graph is options-independent).
    let (rdl_result, plain_stats) = check_incremental(
        cache,
        &plain_key(app),
        &env,
        &program,
        CheckOptions { use_comp_types: false, ..CheckOptions::default() },
        env_h,
        &files,
        &graph,
        &inferred,
    );

    // Record both passes back into the cache (replacing the app's entries)
    // before the suites run, so a suite failure still leaves a fresh cache.
    let selected = TypeChecker::labeled_methods(&env, &program, "app");
    fn freeze_list<'a>(
        selected: &[(String, &'a MethodDef)],
        graph: &DepGraph,
        result: &'a ProgramCheckResult,
    ) -> Vec<(String, &'a MethodDef, u64, &'a MethodCheckResult)> {
        selected
            .iter()
            .zip(&result.methods)
            .map(|((owner, def), verdict)| {
                let merkle = graph.merkle(owner, &def.name, def.singleton).unwrap_or(0);
                (owner.clone(), *def, merkle, verdict)
            })
            .collect()
    }
    cache.record_app(
        app.name,
        env_h,
        files.clone(),
        &freeze_list(&selected, &graph, &comp_result),
        &comp_result.store,
    );
    cache.record_app(
        &plain_key(app),
        env_h,
        files,
        &freeze_list(&selected, &graph, &rdl_result),
        &rdl_result.store,
    );

    // Record the (possibly refreshed) lint and effect sections.  These
    // must come after `record_app`, which rebuilds the app entry against
    // the current file table (dropping any stale lint section along the
    // way; the span-free effect section is preserved and replaced here).
    cache.record_lints(app.name, lint_files, &lint_records);
    cache.record_effects(app.name, crate::effects::summaries_to_records(&summaries, &graph));

    // From here on the recipe is exactly `evaluate_app_shared`.
    let plain = Interpreter::new(program.clone());
    let started = Instant::now();
    plain.eval_program().map_err(|e| {
        err(format!("test suite failed without checks: {e}"), Some(Box::new(e.into())))
    })?;
    let test_time_no_chk = started.elapsed();

    let hook = comprdl::make_hook_shared(
        comp_result.checks(),
        comp_result.store.clone(),
        env.classes.clone(),
        env.helpers.clone(),
        CheckConfig { raise_blame: false, ..CheckConfig::default() },
        memo.clone(),
        memo.register_namespace(app.name),
    );
    let mut checked = Interpreter::new(program.clone());
    checked.set_hook(hook.clone());
    let started = Instant::now();
    checked.eval_program().map_err(|e| {
        err(format!("test suite failed with dynamic checks: {e}"), Some(Box::new(e.into())))
    })?;
    let test_time_with_chk = started.elapsed();
    let runtime_blames: DiagnosticBag =
        hook.take_blames().into_iter().map(Diagnostic::from).collect();

    let mut diagnostics: DiagnosticBag =
        comp_result.errors().into_iter().cloned().map(Diagnostic::from).collect();
    diagnostics.extend(
        TypeChecker::effect_conflicts(&env, &program, &inferred).into_iter().map(Diagnostic::from),
    );
    diagnostics.extend(parse_diags);
    diagnostics.sort_by_span_then_code();

    let row = Table2Row {
        program: app.name.to_string(),
        group: app.group.to_string(),
        methods: comp_result.methods_checked(),
        loc: ruby_syntax::count_loc(source),
        extra_annotations: app.extra_annotations,
        casts: comp_result.total_casts(),
        casts_rdl: rdl_result.total_casts(),
        check_time,
        test_time_no_chk,
        test_time_with_chk,
        dynamic_checks_run: checked.checks_performed(),
        diagnostics,
        runtime_blames,
        lints: lint_bag,
    };
    let stats = AppRecheck {
        app: app.name.to_string(),
        comp: comp_stats,
        plain: plain_stats,
        lint: lint_stats,
        effects: effect_stats,
    };
    Ok((row, stats))
}

/// Runs the whole corpus incrementally against `cache` (all checked runs
/// sharing one runtime memo, like [`crate::table2`]), returning the Table 2
/// rows plus the per-app replay/re-check counters.  The caller owns loading
/// and saving the cache ([`CheckCache::load`] / [`CheckCache::save`]).
///
/// # Errors
///
/// See [`crate::evaluate_app`].
pub fn table2_incremental(
    cache: &mut CheckCache,
) -> Result<(Vec<Table2Row>, Vec<AppRecheck>), HarnessError> {
    let memo = Arc::new(SharedMemo::new());
    let mut rows = Vec::new();
    let mut stats = Vec::new();
    for app in crate::apps::all() {
        let (row, app_stats) = evaluate_app_incremental(&app, None, cache, &memo)?;
        rows.push(row);
        stats.push(app_stats);
    }
    Ok((rows, stats))
}

// ---------------------------------------------------------------------------
// Seeded edit injection
// ---------------------------------------------------------------------------

/// Applies seeded **layout-only** noise to a source file: comment lines
/// before method definitions, blank lines after `end`, trailing whitespace.
/// Every byte offset downstream of an insertion moves, but no semantic hash
/// may — that invariant is what the property tests pin down.
pub fn with_layout_noise(source: &str, seed: u64) -> String {
    let mut rng = test_rng::Rng::new(seed | 1);
    let mut out = String::new();
    for line in source.lines() {
        let trimmed = line.trim_start();
        let indent = &line[..line.len() - trimmed.len()];
        if trimmed.starts_with("def ") && rng.below(2) == 0 {
            out.push_str(indent);
            out.push_str(&format!("# noise {}\n", rng.below(10_000)));
        }
        out.push_str(line);
        if rng.below(4) == 0 {
            out.push_str("  ");
        }
        out.push('\n');
        if trimmed == "end" && rng.below(2) == 0 {
            out.push('\n');
        }
    }
    out
}

/// Injects a **syntax error** into the named method by overwriting its
/// first body line with an unparsable one (a stray `)`) padded with spaces
/// to exactly the original line's byte length, so every span *outside* the
/// poisoned method keeps its byte offsets and line numbers — which is what
/// lets the robustness tests assert byte-identical diagnostics for every
/// other method.  Returns `None` when no `def <method>` line exists or the
/// def line has no body line after it.
pub fn with_broken_method(source: &str, method: &str) -> Option<String> {
    let plain = format!("def {method}(");
    let singleton = format!("def self.{method}(");
    let lines: Vec<&str> = source.lines().collect();
    let def_idx = lines.iter().position(|line| {
        let t = line.trim_start();
        t.starts_with(&plain) || t.starts_with(&singleton)
    })?;
    let body = lines.get(def_idx + 1)?;
    if body.trim() == "end" {
        // Overwriting the `end` of an empty method would unbalance the
        // whole file instead of poisoning one def.
        return None;
    }
    let mut broken = String::from("  )");
    while broken.len() < body.len() {
        broken.push(' ');
    }
    let mut out = String::new();
    for (i, line) in lines.iter().enumerate() {
        out.push_str(if i == def_idx + 1 { &broken } else { line });
        out.push('\n');
    }
    Some(out)
}

/// Injects a **semantic** edit into the named method: a harmless local
/// assignment as the first body statement.  The method still parses, still
/// type checks to the same verdict shape, and its test suite still passes —
/// but its structural hash (and therefore the Merkle hash of the method and
/// every transitive caller) moves.  Returns `None` when no `def <method>`
/// line exists.
pub fn with_method_edit(source: &str, method: &str) -> Option<String> {
    let plain = format!("def {method}(");
    let singleton = format!("def self.{method}(");
    let mut out = String::new();
    let mut hit = false;
    for line in source.lines() {
        out.push_str(line);
        out.push('\n');
        let trimmed = line.trim_start();
        if !hit && (trimmed.starts_with(&plain) || trimmed.starts_with(&singleton)) {
            out.push_str("  __edit_probe = 1\n");
            hit = true;
        }
    }
    hit.then_some(out)
}
