//! # corpus
//!
//! The evaluation corpus for CompRDL-rs: synthetic subject programs
//! standing in for the paper's Wikipedia client, Twitter gem, Discourse,
//! Huginn, Code.org and Journey (each with a schema, annotations, the three
//! confirmed bugs seeded in the right places, and a small runnable test
//! suite), plus the grown corpus's additions — the call-site-dense Redmine
//! analogue and the Sequel-DSL subject whose suite migrates its schema
//! mid-run — and the harness that regenerates Table 1, Table 2 and the
//! Table 2 dynamic-check overhead comparison
//! ([`harness::table2_overhead`]), all checked runs sharing one concurrent
//! runtime memo ([`comprdl::SharedMemo`]).
//!
//! Each app parses as a **two-file** program — source plus test suite, each
//! with its own span file id (see [`App::parse`]) — so call-site identities
//! never collide across files.
//!
//! ```
//! let (rows, helpers) = corpus::table1();
//! assert_eq!(rows.len(), 7);
//! assert!(helpers > 10);
//! ```

#![warn(missing_docs)]

pub mod app;
pub mod apps;
pub mod effects;
pub mod fault;
pub mod harness;
pub mod incremental;
pub mod lints;

pub use app::App;
pub use effects::{
    effects_pass, record_to_summary, replay_baseline, seed_map, summaries_to_inferred,
    summaries_to_records, summary_to_record,
};
pub use fault::FaultPlan;
pub use harness::{
    corpus_diagnostics, evaluate_app, evaluate_app_shared, evaluate_app_with, evaluate_overhead,
    evaluate_overhead_shared, format_diagnostic_summary, format_memo_stats, format_overhead,
    format_table1, format_table2, render_runtime_blames, stable_report, table1, table2,
    table2_overhead, table2_overhead_shared, table2_parallel, table2_parallel_faulted,
    table2_parallel_shared, HarnessError, OverheadRow, Table1Row, Table2Row,
};
pub use incremental::{
    evaluate_app_incremental, table2_incremental, with_broken_method, with_layout_noise,
    with_method_edit, AppRecheck, RecheckStats,
};
pub use lints::{
    findings_to_records, lint_bag, lint_pass, lint_pass_with_summaries, record_to_diagnostic,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_all_seven_libraries() {
        let (rows, helpers) = table1();
        assert_eq!(rows.len(), 7);
        for row in &rows {
            assert!(row.comp_type_definitions > 0, "{} has no annotations", row.library);
            assert!(row.ruby_loc > 0, "{} has no LoC", row.library);
        }
        let total: usize = rows.iter().map(|r| r.comp_type_definitions).sum();
        assert!(total >= 450, "expected hundreds of annotations, got {total}");
        assert!(helpers >= 20, "expected a shared helper-method pool, got {helpers}");
        let rendered = format_table1(&rows, helpers);
        assert!(rendered.contains("ActiveRecord"));
        assert!(rendered.contains("Total"));
    }

    #[test]
    fn every_app_parses_and_type_checks_with_expected_errors() {
        for app in apps::all() {
            let env = app.build_env();
            let program = ruby_syntax::parse_program_strict(&app.full_source())
                .unwrap_or_else(|e| panic!("{}: parse error: {e}", app.name));
            let result =
                comprdl::TypeChecker::new(&env, &program, comprdl::CheckOptions::default())
                    .check_labeled("app");
            assert_eq!(
                result.errors().len(),
                app.expected_errors,
                "{}: unexpected error set {:#?}",
                app.name,
                result.errors()
            );
            assert!(result.methods_checked() >= 3, "{}: too few methods checked", app.name);
        }
    }

    #[test]
    fn comp_types_need_fewer_casts_than_plain_rdl() {
        let rows = table2().expect("harness");
        let casts: usize = rows.iter().map(|r| r.casts).sum();
        let casts_rdl: usize = rows.iter().map(|r| r.casts_rdl).sum();
        assert!(
            casts_rdl > casts,
            "expected plain RDL to need more casts ({casts_rdl} vs {casts})"
        );
        assert!(
            casts_rdl as f64 >= 2.0 * casts.max(1) as f64,
            "expected a substantial cast reduction ({casts_rdl} vs {casts})"
        );
    }

    #[test]
    fn the_three_seeded_bugs_are_found() {
        let rows = table2().expect("harness");
        let errors: usize = rows.iter().map(|r| r.errors()).sum();
        assert_eq!(errors, 3, "{rows:#?}");
        let by_name = |name: &str| rows.iter().find(|r| r.program == name).unwrap().errors();
        assert_eq!(by_name("Code.org"), 1);
        assert_eq!(by_name("Journey"), 2);
        assert_eq!(by_name("Discourse"), 0);
    }

    #[test]
    fn parallel_table2_output_is_byte_identical_to_sequential() {
        let sequential = table2().expect("sequential harness");
        let parallel = table2_parallel().expect("parallel harness");
        assert_eq!(
            stable_report(&sequential),
            stable_report(&parallel),
            "sequential and parallel corpus runs must agree on every deterministic column"
        );
    }

    #[test]
    fn overhead_rows_cover_the_whole_corpus_and_pass_the_gate() {
        let rows = table2_overhead().expect("overhead harness (includes the blame-set gate)");
        assert_eq!(rows.len(), 8, "eight apps: the paper's six plus Redmine and Sequel");
        for row in &rows {
            assert!(row.checks_run > 0, "{}: no dynamic checks executed", row.program);
            if row.program == "Sequel" {
                // The migrating app blames by design — three post-migration
                // hits of `amount_of`'s consistency check per run.
                assert_eq!(row.blames, 3, "{}: migration blames expected", row.program);
            } else {
                assert_eq!(row.blames, 0, "{}: healthy app must not blame", row.program);
            }
            assert!(
                row.store_memoized <= row.store_unmemoized,
                "{}: memoized interning grew the store past the baseline ({} > {})",
                row.program,
                row.store_memoized,
                row.store_unmemoized
            );
        }
        // The dense app is the one the memo is for: its sites repeat, so the
        // memo must actually hit, and interning must stay bounded well below
        // one allocation batch per hit.
        let redmine = rows.iter().find(|r| r.program == "Redmine").expect("redmine row");
        assert!(redmine.checks_run > 300, "dense workload: {} checks", redmine.checks_run);
        assert!(
            redmine.memo_stats.hits > redmine.memo_stats.misses,
            "memo should mostly hit on the dense workload: {:?}",
            redmine.memo_stats
        );
        assert!(
            redmine.store_memoized < redmine.store_unmemoized / 2,
            "memoized store should stay far smaller ({} vs {})",
            redmine.store_memoized,
            redmine.store_unmemoized
        );
        let rendered = format_overhead(&rows);
        assert!(rendered.contains("Redmine"), "{rendered}");
        assert!(rendered.contains("Overhead across the corpus"), "{rendered}");
    }

    #[test]
    fn multi_file_parsing_fires_the_same_checks_as_the_single_file_view() {
        // Regression for the span-collision bug: in the two-file parse the
        // test suite's byte offsets restart at 0 and overlap the app
        // source's; only the file id in the span keeps the inserted checks
        // from firing at test-file sites.  The single-file concatenation
        // never collides (offsets are disjoint), so equal dynamic-check
        // counts mean the file id did its job.
        for app in apps::all() {
            let env = app.build_env();
            let single = ruby_syntax::parse_program_strict(&app.full_source()).expect("parses");
            let (multi, sources, _) = app.parse();
            assert_eq!(sources.len(), 2);

            let run = |program: &ruby_syntax::Program| {
                let result =
                    comprdl::TypeChecker::new(&env, program, comprdl::CheckOptions::default())
                        .check_labeled("app");
                // Blame is collected, not raised: the Sequel app's suite
                // blames by design after its mid-suite migration.
                let hook = comprdl::make_hook(
                    result.checks(),
                    result.store.clone(),
                    env.classes.clone(),
                    env.helpers.clone(),
                    comprdl::CheckConfig { raise_blame: false, ..comprdl::CheckConfig::default() },
                );
                let mut interp = ruby_interp::Interpreter::new(program.clone());
                interp.set_hook(hook);
                interp.eval_program().expect("suite passes");
                interp.checks_performed()
            };
            assert_eq!(
                run(&single),
                run(&multi),
                "{}: dynamic-check count changed between single- and multi-file parsing",
                app.name
            );
        }
    }

    #[test]
    fn sequel_blames_render_as_snippets_byte_identical_across_runs() {
        // The acceptance criterion: warm-run blame output renders as
        // span-annotated snippets via `render_in`, byte-identical to the
        // unmemoized sequential run.
        let app = apps::sequel::app();

        // Unmemoized sequential baseline, assembled by hand.
        let env = app.build_env();
        let (program, sources, _) = app.parse();
        let comp = comprdl::TypeChecker::new(&env, &program, comprdl::CheckOptions::default())
            .check_labeled("app");
        let hook = comprdl::make_hook(
            comp.checks(),
            comp.store.clone(),
            env.classes.clone(),
            env.helpers.clone(),
            comprdl::CheckConfig {
                memoize: false,
                raise_blame: false,
                ..comprdl::CheckConfig::default()
            },
        );
        let mut interp = ruby_interp::Interpreter::new(program.clone());
        interp.set_hook(hook.clone());
        interp.eval_program().expect("suite passes with blame collected");
        let baseline: Vec<diagnostics::Diagnostic> =
            hook.take_blames().into_iter().map(Into::into).collect();
        assert_eq!(baseline.len(), 3, "three post-migration consistency blames");
        let rendered_baseline: String =
            baseline.iter().map(|d| diagnostics::render_in(&sources, d) + "\n").collect();
        assert!(rendered_baseline.contains("--> sequel.rb:"), "{rendered_baseline}");
        assert!(rendered_baseline.contains("^"), "carets annotate the call site");
        assert!(
            rendered_baseline.contains("blame raised at this checked call"),
            "{rendered_baseline}"
        );
        assert!(rendered_baseline.contains("type-check time"), "{rendered_baseline}");

        // A cold and then a warm memoized run against one shared memo must
        // both reproduce the baseline's rendered output byte for byte.
        let memo = std::sync::Arc::new(comprdl::SharedMemo::new());
        let cold = evaluate_app_shared(&app, 1, &memo).expect("cold run");
        let warm = evaluate_app_shared(&app, 1, &memo).expect("warm run");
        for (label, row) in [("cold", &cold), ("warm", &warm)] {
            assert_eq!(
                render_runtime_blames(&app, row),
                rendered_baseline,
                "{label} memoized run's rendered blame diverged from the unmemoized baseline"
            );
        }
        assert!(memo.stats().hits > 0, "the warm run must replay from the shared memo");
    }

    #[test]
    fn test_suites_run_with_dynamic_checks_enabled() {
        let rows = table2().expect("harness");
        for row in &rows {
            assert!(row.dynamic_checks_run > 0, "{}: no dynamic checks executed", row.program);
            assert!(row.methods >= 3);
        }
        let rendered = format_table2(&rows);
        assert!(rendered.contains("Cast reduction"));
    }
}
