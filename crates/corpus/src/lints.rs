//! Corpus-side glue for the [`analysis`] lint suite.
//!
//! The lint pass runs over each app's parsed two-file program (the same
//! parse the type checker sees), produces `LINT01xx` warnings, and joins
//! the Table 2 row as [`crate::Table2Row::lints`].  Two conversions live
//! here because neither neighbouring crate may depend on the other:
//!
//! * [`analysis::LintFinding`] → [`diagnostics::Diagnostic`] (rendering) is
//!   provided by `analysis` itself, and
//! * [`analysis::LintFinding`] ↔ [`comprdl::LintRecord`] (persistence) is
//!   this module — `comprdl::persist` stores lint verdicts as plain
//!   span-carrying records without knowing what a lint is, and `analysis`
//!   stays ignorant of the cache.  Notes are **derived from the code at
//!   render time** ([`analysis::note_for`]), so a replayed record renders
//!   byte-identically to a fresh finding without persisting the note.

use analysis::{LintFinding, MethodLints};
use comprdl::LintRecord;
use diagnostics::{Diagnostic, DiagnosticBag};
use ruby_syntax::Program;

/// Converts one method's findings into persistable [`LintRecord`]s.
pub fn findings_to_records(m: &MethodLints) -> Vec<LintRecord> {
    m.findings
        .iter()
        .map(|f| LintRecord {
            code: f.code.clone(),
            message: f.message.clone(),
            label: f.label.clone(),
            span: f.span,
        })
        .collect()
}

/// Renders a replayed [`LintRecord`] exactly like a fresh finding: a
/// warning with the stored label plus the code-derived note.
pub fn record_to_diagnostic(r: &LintRecord) -> Diagnostic {
    let finding = LintFinding {
        code: r.code.clone(),
        message: r.message.clone(),
        label: r.label.clone(),
        span: r.span,
    };
    Diagnostic::from(&finding)
}

/// Collects every finding of a lint pass into a canonically sorted
/// [`DiagnosticBag`] (the same span-then-code order the error bag uses), so
/// the rendered warnings are byte-identical regardless of which worker
/// linted which method.
pub fn lint_bag(methods: &[MethodLints]) -> DiagnosticBag {
    let mut bag: DiagnosticBag =
        methods.iter().flat_map(|m| m.findings.iter()).map(Diagnostic::from).collect();
    bag.sort_by_span_then_code();
    bag
}

/// Runs the lint suite over a parsed program with `threads` workers
/// (1 = sequential) and returns the per-method results.  The parallel
/// splitting is output-invisible: [`analysis::lint_program_parallel`]
/// merges worker results back into method-index order.
pub fn lint_pass(program: &Program, threads: usize) -> Vec<MethodLints> {
    lint_pass_with_summaries(program, None, threads)
}

/// Like [`lint_pass`], but threads interprocedural effect summaries into
/// the suite so `LINT0105` follows taint through calls (a caller that
/// concatenates user input and passes it to a callee whose summary says
/// the parameter reaches a SQL sink is flagged at the call site).
pub fn lint_pass_with_summaries(
    program: &Program,
    summaries: Option<&analysis::ProgramSummaries>,
    threads: usize,
) -> Vec<MethodLints> {
    if threads > 1 {
        analysis::lint_program_parallel_with_summaries(program, summaries, threads)
    } else {
        analysis::lint_program_with_summaries(program, summaries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trip_renders_byte_identically() {
        let program =
            ruby_syntax::parse_program_strict("def leftover(a)\n  unused = a\n  a\nend\n").unwrap();
        let fresh = lint_pass(&program, 1);
        let bag = lint_bag(&fresh);
        assert_eq!(bag.warning_count(), 1, "{bag}");

        // Through the persistence representation and back.
        let records: Vec<LintRecord> = fresh.iter().flat_map(findings_to_records).collect();
        let mut replayed: DiagnosticBag = records.iter().map(record_to_diagnostic).collect();
        replayed.sort_by_span_then_code();
        let render =
            |b: &DiagnosticBag| b.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n");
        assert_eq!(render(&bag), render(&replayed));
    }
}
