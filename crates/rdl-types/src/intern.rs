//! The global hash-consing type interner.
//!
//! Every check in this system — static comp-type evaluation and the
//! inserted dynamic checks alike — bottoms out in structural walks over
//! [`Type`] trees: subtyping recurses, fingerprinting digests every node,
//! rendering rebuilds strings.  Once the memo layers read lock-free (PR 5)
//! those walks *are* the hot path.  This module makes identity a handle
//! instead of a traversal:
//!
//! * [`intern`] deduplicates `Type` nodes bottom-up into a **global,
//!   append-only arena**, so two structurally equal trees — built on any
//!   thread, at any time — always map to the same [`TypeId`].  Structural
//!   equality becomes id equality, and `is_subtype` can short-circuit on
//!   id-equal nodes.
//! * Each interned node carries a **precomputed structural fingerprint**
//!   (the same Merkle digest [`TypeStore::fingerprint`] computes by
//!   walking), so fingerprinting a store-free type is a field read.
//! * Each interned node lazily caches its **rendered string** (identical
//!   to [`TypeStore::render`] for store-free types), so blame formatting
//!   stops re-walking.
//!
//! ## Store-backed types
//!
//! Tuple / finite-hash / const-string types are *mutable* (weak updates,
//! promotion — §4 of the paper) and their ids are **per-store**: two
//! different [`TypeStore`]s can both hold `#fhash0` with different
//! content.  Such nodes are interned as opaque raw-id leaves and flagged
//! [`NodeInfo::store_backed`]; their precomputed digest and render are
//! meaningless and never exposed ([`NodeInfo::digest`] /
//! [`NodeInfo::render`] return `None`).  Fingerprinting and rendering
//! store-involving types stays the store's job (which has its own
//! generation-stamped caches).
//!
//! ## Concurrency
//!
//! The arena is process-global and append-only.  Node data lives in a
//! chunked pointer table read entirely lock-free (an `Acquire` load per
//! chunk and per slot); the dedup maps are sharded `RwLock`s taken briefly
//! on the intern path only.  Nothing is ever removed: the arena is bounded
//! by the number of *distinct* types the process constructs, which the
//! checking workloads bound by program size, not by run length.
//!
//! [`TypeStore`]: crate::store::TypeStore
//! [`TypeStore::fingerprint`]: crate::store::TypeStore::fingerprint
//! [`TypeStore::render`]: crate::store::TypeStore::render

use crate::fingerprint::Fingerprint;
use crate::ty::{SingVal, Type};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

/// Handle of an interned type node in the global arena.  Two types intern
/// to the same id **iff** they are structurally equal, so `==` on ids is
/// structural equality in O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(u32);

impl TypeId {
    /// The raw arena index (stable for the life of the process).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// The shallow, child-id form of one interned type node.  Children are
/// [`TypeId`]s, so consumers (the id-space subtype checker, renderers)
/// walk the arena without ever rebuilding owned [`Type`] trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// `%any`.
    Top,
    /// `%bot`.
    Bot,
    /// `%bool`.
    Bool,
    /// `%dyn`.
    Dynamic,
    /// A nominal class type.
    Nominal(Box<str>),
    /// A singleton type.
    Singleton(SingVal),
    /// A generic instantiation; `args` are interned children.
    Generic {
        /// The base class name.
        base: Box<str>,
        /// Interned type arguments.
        args: Box<[TypeId]>,
    },
    /// A union of interned members (normalized order preserved from the
    /// source [`Type::Union`]).
    Union(Box<[TypeId]>),
    /// `?T`.
    Optional(TypeId),
    /// `*T`.
    Vararg(TypeId),
    /// A type variable.
    Var(Box<str>),
    /// An opaque per-store tuple id (see the module docs).
    Tuple(u32),
    /// An opaque per-store finite hash id.
    FiniteHash(u32),
    /// An opaque per-store const string id.
    ConstString(u32),
}

/// Immutable data recorded for one interned node.
pub struct NodeInfo {
    node: Node,
    digest: u64,
    store_backed: bool,
    render: OnceLock<Box<str>>,
}

impl NodeInfo {
    /// The shallow node (children as [`TypeId`]s).
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// True when this node or any descendant is a store-backed (mutable)
    /// type, whose meaning lives in a [`TypeStore`](crate::TypeStore)
    /// rather than in the arena.
    pub fn store_backed(&self) -> bool {
        self.store_backed
    }

    /// The precomputed structural fingerprint — identical to what
    /// [`TypeStore::fingerprint`](crate::TypeStore::fingerprint) computes
    /// by walking — or `None` for store-backed nodes (their digest depends
    /// on store content the arena cannot see).
    pub fn digest(&self) -> Option<u64> {
        if self.store_backed {
            None
        } else {
            Some(self.digest)
        }
    }

    /// The cached rendered form — identical to
    /// [`TypeStore::render`](crate::TypeStore::render) for store-free
    /// types — or `None` for store-backed nodes.  Computed on first use,
    /// then a pointer read.
    pub fn render(&self) -> Option<&str> {
        if self.store_backed {
            return None;
        }
        Some(self.render.get_or_init(|| {
            let mut out = String::new();
            render_into(&self.node, &mut out);
            out.into_boxed_str()
        }))
    }
}

/// Interning / arena counters, exposed so benches and tests can verify
/// the arena is deduplicating rather than growing per call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Distinct nodes interned so far (the arena size).
    pub nodes: u64,
    /// Intern calls answered by an existing node.
    pub hits: u64,
    /// Intern calls that allocated a new node.
    pub misses: u64,
}

// ---- arena storage ------------------------------------------------------

/// Nodes per chunk (kept small so a lightly used process allocates a few
/// KB of pointer table, not megabytes of slots).
const CHUNK: usize = 1024;
/// Maximum chunks: `CHUNK * CHUNKS` (≈ 4M) distinct nodes per process —
/// far above any real checking workload's distinct-type count.
const CHUNKS: usize = 4096;
/// Dedup map shards; interning takes exactly one shard lock.
const MAP_SHARDS: usize = 64;

struct Chunk {
    slots: [AtomicPtr<NodeInfo>; CHUNK],
}

impl Chunk {
    fn new() -> Box<Chunk> {
        Box::new(Chunk { slots: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())) })
    }
}

/// Pass-through hasher for pre-hashed `u64` map keys.
#[derive(Default)]
struct PreHashed(u64);

impl Hasher for PreHashed {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("pre-hashed keys are written as u64");
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// One dedup shard: node hash → candidate ids (almost always exactly one;
/// genuine 64-bit collisions fall back to a short scan).
type ShardMap = HashMap<u64, Vec<u32>, BuildHasherDefault<PreHashed>>;

struct Arena {
    chunks: [AtomicPtr<Chunk>; CHUNKS],
    shards: [RwLock<ShardMap>; MAP_SHARDS],
    /// Whole-tree prehash → candidate root ids: a warm re-intern of an
    /// already-seen tree costs one hash walk plus one lock-free lockstep
    /// verification against the arena, instead of a dedup-shard probe per
    /// node.  Bounded by the arena itself (one entry per distinct root).
    trees: [RwLock<ShardMap>; MAP_SHARDS],
    /// Serializes chunk installation (id allocation itself happens under
    /// the owning map shard's write lock; the publish order below makes
    /// nodes visible before their ids escape).
    chunk_alloc: Mutex<()>,
    count: AtomicU32,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn arena() -> &'static Arena {
    static ARENA: OnceLock<Arena> = OnceLock::new();
    ARENA.get_or_init(|| Arena {
        chunks: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        shards: std::array::from_fn(|_| RwLock::new(ShardMap::default())),
        trees: std::array::from_fn(|_| RwLock::new(ShardMap::default())),
        chunk_alloc: Mutex::new(()),
        count: AtomicU32::new(0),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

impl Arena {
    fn chunk(&self, index: usize) -> Option<&Chunk> {
        let ptr = self.chunks[index].load(Ordering::Acquire);
        if ptr.is_null() {
            None
        } else {
            // Published with `Release` below and never freed.
            Some(unsafe { &*ptr })
        }
    }

    fn ensure_chunk(&self, index: usize) -> &Chunk {
        if let Some(chunk) = self.chunk(index) {
            return chunk;
        }
        let _guard = self.chunk_alloc.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(chunk) = self.chunk(index) {
            return chunk;
        }
        let fresh = Box::leak(Chunk::new());
        self.chunks[index].store(fresh, Ordering::Release);
        fresh
    }

    /// The published node for `id`.  Ids only escape after publication,
    /// so a valid id always resolves.
    fn node(&self, id: u32) -> &'static NodeInfo {
        let chunk = self
            .chunk(id as usize / CHUNK)
            .expect("interned id must point into an allocated chunk");
        let ptr = chunk.slots[id as usize % CHUNK].load(Ordering::Acquire);
        debug_assert!(!ptr.is_null(), "interned id must be published");
        unsafe { &*ptr }
    }
}

// ---- interning ----------------------------------------------------------

/// A borrowed candidate node: lets the hot lookup path hash and compare
/// without allocating the owned [`Node`] it would insert on a miss.
enum NodeKey<'a> {
    Leaf(u8),
    Nominal(&'a str),
    Singleton(&'a SingVal),
    Generic { base: &'a str, args: &'a [TypeId] },
    Union(&'a [TypeId]),
    Wrapper(u8, TypeId),
    Var(&'a str),
    StoreBacked(u8, u32),
}

/// Leaf tags (shared between hashing and the owned node constructors).
const TAG_TOP: u8 = 0;
const TAG_BOT: u8 = 1;
const TAG_BOOL: u8 = 2;
const TAG_DYNAMIC: u8 = 3;
const TAG_OPTIONAL: u8 = 9;
const TAG_VARARG: u8 = 10;
const TAG_TUPLE: u8 = 11;
const TAG_FINITE_HASH: u8 = 12;
const TAG_CONST_STRING: u8 = 13;

fn write_sing_val(fp: &mut Fingerprint, sv: &SingVal) {
    match sv {
        SingVal::Nil => fp.write_u8(0),
        SingVal::True => fp.write_u8(1),
        SingVal::False => fp.write_u8(2),
        SingVal::Int(i) => {
            fp.write_u8(3);
            fp.write_i64(*i);
        }
        SingVal::FloatBits(b) => {
            fp.write_u8(4);
            fp.write_u64(*b);
        }
        SingVal::Sym(s) => {
            fp.write_u8(5);
            fp.write_str(s);
        }
        SingVal::Class(c) => {
            fp.write_u8(6);
            fp.write_str(c);
        }
    }
}

impl NodeKey<'_> {
    /// The dedup-map hash: over node shape and **child ids** (not child
    /// digests), so it is cheap and independent of the structural
    /// fingerprint scheme.
    fn map_hash(&self) -> u64 {
        let mut fp = Fingerprint::new();
        match self {
            NodeKey::Leaf(tag) => fp.write_u8(*tag),
            NodeKey::Nominal(n) => {
                fp.write_u8(4);
                fp.write_str(n);
            }
            NodeKey::Singleton(sv) => {
                fp.write_u8(6);
                write_sing_val(&mut fp, sv);
            }
            NodeKey::Generic { base, args } => {
                fp.write_u8(7);
                fp.write_str(base);
                fp.write_usize(args.len());
                for a in *args {
                    fp.write_u32(a.0);
                }
            }
            NodeKey::Union(args) => {
                fp.write_u8(8);
                fp.write_usize(args.len());
                for a in *args {
                    fp.write_u32(a.0);
                }
            }
            NodeKey::Wrapper(tag, inner) => {
                fp.write_u8(*tag);
                fp.write_u32(inner.0);
            }
            NodeKey::Var(v) => {
                fp.write_u8(5);
                fp.write_str(v);
            }
            NodeKey::StoreBacked(tag, raw) => {
                fp.write_u8(*tag);
                fp.write_u32(*raw);
            }
        }
        fp.finish()
    }

    fn matches(&self, node: &Node) -> bool {
        match (self, node) {
            (NodeKey::Leaf(TAG_TOP), Node::Top)
            | (NodeKey::Leaf(TAG_BOT), Node::Bot)
            | (NodeKey::Leaf(TAG_BOOL), Node::Bool)
            | (NodeKey::Leaf(TAG_DYNAMIC), Node::Dynamic) => true,
            (NodeKey::Nominal(a), Node::Nominal(b)) => *a == &**b,
            (NodeKey::Singleton(a), Node::Singleton(b)) => *a == b,
            (NodeKey::Generic { base, args }, Node::Generic { base: b, args: bs }) => {
                *base == &**b && *args == &**bs
            }
            (NodeKey::Union(args), Node::Union(bs)) => *args == &**bs,
            (NodeKey::Wrapper(TAG_OPTIONAL, a), Node::Optional(b)) => a == b,
            (NodeKey::Wrapper(TAG_VARARG, a), Node::Vararg(b)) => a == b,
            (NodeKey::Var(a), Node::Var(b)) => *a == &**b,
            (NodeKey::StoreBacked(TAG_TUPLE, a), Node::Tuple(b))
            | (NodeKey::StoreBacked(TAG_FINITE_HASH, a), Node::FiniteHash(b))
            | (NodeKey::StoreBacked(TAG_CONST_STRING, a), Node::ConstString(b)) => a == b,
            _ => false,
        }
    }

    fn to_node(&self) -> Node {
        match self {
            NodeKey::Leaf(TAG_TOP) => Node::Top,
            NodeKey::Leaf(TAG_BOT) => Node::Bot,
            NodeKey::Leaf(TAG_BOOL) => Node::Bool,
            NodeKey::Leaf(_) => Node::Dynamic,
            NodeKey::Nominal(n) => Node::Nominal((*n).into()),
            NodeKey::Singleton(sv) => Node::Singleton((*sv).clone()),
            NodeKey::Generic { base, args } => {
                Node::Generic { base: (*base).into(), args: (*args).into() }
            }
            NodeKey::Union(args) => Node::Union((*args).into()),
            NodeKey::Wrapper(TAG_OPTIONAL, inner) => Node::Optional(*inner),
            NodeKey::Wrapper(_, inner) => Node::Vararg(*inner),
            NodeKey::Var(v) => Node::Var((*v).into()),
            NodeKey::StoreBacked(TAG_TUPLE, raw) => Node::Tuple(*raw),
            NodeKey::StoreBacked(TAG_FINITE_HASH, raw) => Node::FiniteHash(*raw),
            NodeKey::StoreBacked(_, raw) => Node::ConstString(*raw),
        }
    }
}

/// The structural (Merkle) fingerprint of a node from its children's
/// digests — the composition [`TypeStore::fingerprint`] mirrors when it
/// walks store-involving trees.
///
/// [`TypeStore::fingerprint`]: crate::store::TypeStore::fingerprint
fn compute_digest(key: &NodeKey<'_>, a: &Arena) -> (u64, bool) {
    let mut fp = Fingerprint::new();
    let mut store_backed = false;
    let mut child = |fp: &mut Fingerprint, id: TypeId| {
        let info = a.node(id.0);
        store_backed |= info.store_backed;
        fp.write_u64(info.digest);
    };
    match key {
        NodeKey::Leaf(tag) => fp.write_u8(*tag),
        NodeKey::Nominal(n) => {
            fp.write_u8(4);
            fp.write_str(n);
        }
        NodeKey::Var(v) => {
            fp.write_u8(5);
            fp.write_str(v);
        }
        NodeKey::Singleton(sv) => {
            fp.write_u8(6);
            write_sing_val(&mut fp, sv);
        }
        NodeKey::Generic { base, args } => {
            fp.write_u8(7);
            fp.write_str(base);
            fp.write_usize(args.len());
            for id in *args {
                child(&mut fp, *id);
            }
        }
        NodeKey::Union(args) => {
            fp.write_u8(8);
            fp.write_usize(args.len());
            for id in *args {
                child(&mut fp, *id);
            }
        }
        NodeKey::Wrapper(tag, inner) => {
            fp.write_u8(*tag);
            child(&mut fp, *inner);
        }
        NodeKey::StoreBacked(tag, raw) => {
            // Placeholder digest, never exposed: the node's meaning lives
            // in a store the arena cannot see.
            store_backed = true;
            fp.write_u8(0xFD);
            fp.write_u8(*tag);
            fp.write_u32(*raw);
        }
    }
    (fp.finish(), store_backed)
}

fn intern_key(key: &NodeKey<'_>) -> TypeId {
    let a = arena();
    let hash = key.map_hash();
    let shard = &a.shards[(hash as usize) % MAP_SHARDS];
    if let Some(ids) = shard.read().unwrap_or_else(|e| e.into_inner()).get(&hash) {
        for id in ids {
            if key.matches(&a.node(*id).node) {
                a.hits.fetch_add(1, Ordering::Relaxed);
                return TypeId(*id);
            }
        }
    }
    let mut map = shard.write().unwrap_or_else(|e| e.into_inner());
    let ids = map.entry(hash).or_default();
    for id in ids.iter() {
        if key.matches(&a.node(*id).node) {
            a.hits.fetch_add(1, Ordering::Relaxed);
            return TypeId(*id);
        }
    }
    let (digest, store_backed) = compute_digest(key, a);
    let id = a.count.fetch_add(1, Ordering::Relaxed);
    assert!((id as usize) < CHUNK * CHUNKS, "type intern arena exhausted");
    let info = Box::leak(Box::new(NodeInfo {
        node: key.to_node(),
        digest,
        store_backed,
        render: OnceLock::new(),
    }));
    let chunk = a.ensure_chunk(id as usize / CHUNK);
    // Publish the node before its id escapes (the map insert below and
    // every parent that embeds this id happen after this store).
    chunk.slots[id as usize % CHUNK].store(info, Ordering::Release);
    ids.push(id);
    a.misses.fetch_add(1, Ordering::Relaxed);
    TypeId(id)
}

/// A flat structural prehash of a whole [`Type`] tree, keying the
/// [`Arena::trees`] cache.  Only a prehash: candidates are always verified
/// with [`tree_eq`], so collisions cost a scan, never a wrong id.
fn tree_hash_into(ty: &Type, fp: &mut Fingerprint) {
    match ty {
        Type::Top => fp.write_u8(TAG_TOP),
        Type::Bot => fp.write_u8(TAG_BOT),
        Type::Bool => fp.write_u8(TAG_BOOL),
        Type::Dynamic => fp.write_u8(TAG_DYNAMIC),
        Type::Nominal(n) => {
            fp.write_u8(4);
            fp.write_str(n);
        }
        Type::Var(v) => {
            fp.write_u8(5);
            fp.write_str(v);
        }
        Type::Singleton(sv) => {
            fp.write_u8(6);
            write_sing_val(fp, sv);
        }
        Type::Generic { base, args } => {
            fp.write_u8(7);
            fp.write_str(base);
            fp.write_usize(args.len());
            for a in args {
                tree_hash_into(a, fp);
            }
        }
        Type::Union(ts) => {
            fp.write_u8(8);
            fp.write_usize(ts.len());
            for t in ts {
                tree_hash_into(t, fp);
            }
        }
        Type::Optional(t) => {
            fp.write_u8(TAG_OPTIONAL);
            tree_hash_into(t, fp);
        }
        Type::Vararg(t) => {
            fp.write_u8(TAG_VARARG);
            tree_hash_into(t, fp);
        }
        Type::Tuple(id) => {
            fp.write_u8(TAG_TUPLE);
            fp.write_u32(id.0);
        }
        Type::FiniteHash(id) => {
            fp.write_u8(TAG_FINITE_HASH);
            fp.write_u32(id.0);
        }
        Type::ConstString(id) => {
            fp.write_u8(TAG_CONST_STRING);
            fp.write_u32(id.0);
        }
    }
}

/// Lockstep structural equality between an owned [`Type`] tree and an
/// interned subtree — entirely lock-free (`Acquire` chunk/slot loads only),
/// which is what makes the warm re-intern path cheap.
fn tree_eq(ty: &Type, id: TypeId, a: &Arena) -> bool {
    match (ty, &a.node(id.0).node) {
        (Type::Top, Node::Top)
        | (Type::Bot, Node::Bot)
        | (Type::Bool, Node::Bool)
        | (Type::Dynamic, Node::Dynamic) => true,
        (Type::Nominal(x), Node::Nominal(y)) => x.as_str() == &**y,
        (Type::Var(x), Node::Var(y)) => x.as_str() == &**y,
        (Type::Singleton(x), Node::Singleton(y)) => x == y,
        (Type::Generic { base, args }, Node::Generic { base: b, args: ids }) => {
            base.as_str() == &**b
                && args.len() == ids.len()
                && args.iter().zip(ids.iter()).all(|(t, i)| tree_eq(t, *i, a))
        }
        (Type::Union(ts), Node::Union(ids)) => {
            ts.len() == ids.len() && ts.iter().zip(ids.iter()).all(|(t, i)| tree_eq(t, *i, a))
        }
        (Type::Optional(t), Node::Optional(i)) | (Type::Vararg(t), Node::Vararg(i)) => {
            tree_eq(t, *i, a)
        }
        (Type::Tuple(x), Node::Tuple(y)) => x.0 == *y,
        (Type::FiniteHash(x), Node::FiniteHash(y)) => x.0 == *y,
        (Type::ConstString(x), Node::ConstString(y)) => x.0 == *y,
        _ => false,
    }
}

/// Interns a type tree, returning the id of its root node.  Structurally
/// equal trees always return equal ids.
///
/// A tree seen before (by any thread) is answered from the whole-tree
/// cache: one prehash walk plus one lock-free verification.  First sight
/// falls back to the bottom-up per-node walk (one dedup-map lookup per
/// node, allocating only nodes the arena has never seen).
pub fn intern(ty: &Type) -> TypeId {
    let a = arena();
    let mut fp = Fingerprint::new();
    tree_hash_into(ty, &mut fp);
    let hash = fp.finish();
    let shard = &a.trees[(hash as usize) % MAP_SHARDS];
    if let Some(ids) = shard.read().unwrap_or_else(|e| e.into_inner()).get(&hash) {
        for id in ids {
            if tree_eq(ty, TypeId(*id), a) {
                a.hits.fetch_add(1, Ordering::Relaxed);
                return TypeId(*id);
            }
        }
    }
    let id = intern_tree(ty);
    let mut map = shard.write().unwrap_or_else(|e| e.into_inner());
    let ids = map.entry(hash).or_default();
    if !ids.contains(&id.0) {
        ids.push(id.0);
    }
    id
}

/// The bottom-up per-node intern walk (the whole-tree cache's miss path).
fn intern_tree(ty: &Type) -> TypeId {
    match ty {
        Type::Top => intern_key(&NodeKey::Leaf(TAG_TOP)),
        Type::Bot => intern_key(&NodeKey::Leaf(TAG_BOT)),
        Type::Bool => intern_key(&NodeKey::Leaf(TAG_BOOL)),
        Type::Dynamic => intern_key(&NodeKey::Leaf(TAG_DYNAMIC)),
        Type::Nominal(n) => intern_key(&NodeKey::Nominal(n)),
        Type::Singleton(sv) => intern_key(&NodeKey::Singleton(sv)),
        Type::Generic { base, args } => {
            let ids: Vec<TypeId> = args.iter().map(intern).collect();
            intern_key(&NodeKey::Generic { base, args: &ids })
        }
        Type::Union(ts) => {
            let ids: Vec<TypeId> = ts.iter().map(intern).collect();
            intern_key(&NodeKey::Union(&ids))
        }
        Type::Optional(t) => {
            let inner = intern(t);
            intern_key(&NodeKey::Wrapper(TAG_OPTIONAL, inner))
        }
        Type::Vararg(t) => {
            let inner = intern(t);
            intern_key(&NodeKey::Wrapper(TAG_VARARG, inner))
        }
        Type::Var(v) => intern_key(&NodeKey::Var(v)),
        Type::Tuple(id) => intern_key(&NodeKey::StoreBacked(TAG_TUPLE, id.0)),
        Type::FiniteHash(id) => intern_key(&NodeKey::StoreBacked(TAG_FINITE_HASH, id.0)),
        Type::ConstString(id) => intern_key(&NodeKey::StoreBacked(TAG_CONST_STRING, id.0)),
    }
}

/// The immutable info recorded for an interned id.
pub fn info(id: TypeId) -> &'static NodeInfo {
    arena().node(id.0)
}

/// Current arena / dedup counters.
pub fn stats() -> InternStats {
    let a = arena();
    InternStats {
        nodes: u64::from(a.count.load(Ordering::Relaxed)),
        hits: a.hits.load(Ordering::Relaxed),
        misses: a.misses.load(Ordering::Relaxed),
    }
}

// ---- rendering ----------------------------------------------------------

/// Renders a store-free node exactly as [`Type`]'s `Display` (and
/// therefore exactly as [`TypeStore::render`](crate::TypeStore::render),
/// which coincides with `Display` on store-free types).
fn render_into(node: &Node, out: &mut String) {
    match node {
        Node::Top => out.push_str("%any"),
        Node::Bot => out.push_str("%bot"),
        Node::Bool => out.push_str("%bool"),
        Node::Dynamic => out.push_str("%dyn"),
        Node::Nominal(n) => out.push_str(n),
        Node::Var(v) => out.push_str(v),
        Node::Singleton(sv) => {
            let _ = write!(out, "{sv}");
        }
        Node::Generic { base, args } => {
            out.push_str(base);
            out.push('<');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_into(&info(*a).node, out);
            }
            out.push('>');
        }
        Node::Union(ts) => {
            for (i, t) in ts.iter().enumerate() {
                if i > 0 {
                    out.push_str(" or ");
                }
                render_into(&info(*t).node, out);
            }
        }
        Node::Optional(t) => {
            out.push('?');
            render_into(&info(*t).node, out);
        }
        Node::Vararg(t) => {
            out.push('*');
            render_into(&info(*t).node, out);
        }
        // Unreachable through `NodeInfo::render` (store-backed nodes
        // return `None`), but keep the raw-id form for debugging walks.
        Node::Tuple(id) => {
            let _ = write!(out, "#tuple{id}");
        }
        Node::FiniteHash(id) => {
            let _ = write!(out, "#fhash{id}");
        }
        Node::ConstString(id) => {
            let _ = write!(out, "#cstr{id}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::TupleId;

    #[test]
    fn equal_trees_intern_to_equal_ids() {
        let a = Type::array(Type::union([Type::nominal("Integer"), Type::nominal("String")]));
        let b = Type::array(Type::union([Type::nominal("Integer"), Type::nominal("String")]));
        assert_eq!(intern(&a), intern(&b));
        let c = Type::array(Type::nominal("Integer"));
        assert_ne!(intern(&a), intern(&c));
    }

    #[test]
    fn digests_match_equality_and_render_matches_display() {
        let types = [
            Type::Top,
            Type::nil(),
            Type::sym("emails"),
            Type::class_of("User"),
            Type::Optional(Box::new(Type::Bool)),
            Type::Vararg(Box::new(Type::nominal("String"))),
            Type::hash(Type::nominal("Symbol"), Type::union([Type::int(1), Type::nil()])),
            Type::Var("t".into()),
        ];
        for t in &types {
            let id = intern(t);
            let info = info(id);
            assert!(!info.store_backed());
            assert_eq!(info.render().unwrap(), t.to_string(), "render mismatch for {t}");
            assert_eq!(info.digest(), Some(info.digest().unwrap()));
        }
        // Distinct structures get distinct digests (w.h.p.).
        let d1 = info(intern(&types[2])).digest().unwrap();
        let d2 = info(intern(&types[3])).digest().unwrap();
        assert_ne!(d1, d2);
    }

    #[test]
    fn store_backed_nodes_are_flagged_and_opaque() {
        let t = Type::Tuple(TupleId(3));
        let id = intern(&t);
        assert!(info(id).store_backed());
        assert_eq!(info(id).digest(), None);
        assert_eq!(info(id).render(), None);
        let wrapped = Type::array(t.clone());
        let wid = intern(&wrapped);
        assert!(info(wid).store_backed(), "store-backedness must propagate to parents");
        // Same raw id under a different store-backed kind is a different
        // node.
        let h = Type::FiniteHash(crate::ty::FiniteHashId(3));
        assert_ne!(intern(&h), id);
    }

    #[test]
    fn interning_is_idempotent_and_counts_hits() {
        let t = Type::array(Type::nominal("Float"));
        let first = intern(&t);
        let before = stats();
        for _ in 0..10 {
            assert_eq!(intern(&t), first);
        }
        let after = stats();
        assert_eq!(after.nodes, before.nodes, "re-interning must not grow the arena");
        assert!(after.hits >= before.hits + 10);
    }

    #[test]
    fn concurrent_interning_agrees_on_ids() {
        let mk = |i: usize| {
            Type::hash(
                Type::sym(format!("k{}", i % 7)),
                Type::union([Type::int(i as i64 % 5), Type::nominal("String")]),
            )
        };
        let ids: Vec<Vec<TypeId>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(move || (0..64).map(|i| intern(&mk(i))).collect::<Vec<_>>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panics")).collect()
        });
        for other in &ids[1..] {
            assert_eq!(&ids[0], other, "all threads must agree on interned ids");
        }
    }
}
