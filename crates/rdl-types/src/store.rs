//! The mutable type store.
//!
//! RDL represents tuple, finite hash and const string types as *objects*
//! that may be mutated (weak updates, §4 of the paper) and *promoted* to
//! `Array`, `Hash` and `String` respectively when an operation outside the
//! precise fragment is applied.  Aliasing matters: in
//!
//! ```ruby
//! a = [1, 'foo']; if ... then b = a end; a[0] = 'one'
//! ```
//!
//! the types of `a` and `b` share one tuple object, so mutating it affects
//! both.  The [`TypeStore`] reproduces this sharing: store-backed types are
//! indices into the store, and every constraint asserted against them is
//! recorded so it can be *replayed* after a weak update or promotion.

use crate::ty::{ConstStringId, FiniteHashId, HashKey, TupleId, Type};

/// A recorded subtyping constraint `lhs <= rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// The left-hand side of the constraint.
    pub lhs: Type,
    /// The right-hand side of the constraint.
    pub rhs: Type,
    /// A human readable description of where the constraint came from.
    pub origin: String,
}

/// Data backing a tuple type.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleData {
    /// Element types, in order.
    pub elems: Vec<Type>,
    /// If the tuple was promoted, the `Array<T>` type it was promoted to.
    pub promoted: Option<Type>,
    /// Constraints asserted against this tuple.
    pub constraints: Vec<Constraint>,
}

/// Data backing a finite hash type.
#[derive(Debug, Clone, PartialEq)]
pub struct FiniteHashData {
    /// Known entries in insertion order.
    pub entries: Vec<(HashKey, Type)>,
    /// The "rest" type for open finite hashes (`{ a: X, **rest }`), if any.
    pub rest: Option<Box<Type>>,
    /// If the hash was promoted, the `Hash<K, V>` type it was promoted to.
    pub promoted: Option<Type>,
    /// Constraints asserted against this hash.
    pub constraints: Vec<Constraint>,
}

impl FiniteHashData {
    /// Looks up the type of a key.
    pub fn get(&self, key: &HashKey) -> Option<&Type> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, t)| t)
    }
}

/// Data backing a const string type.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstStringData {
    /// The string contents, if still known precisely.
    pub value: Option<String>,
    /// Whether the const string has been promoted to plain `String`.
    pub promoted: bool,
    /// Constraints asserted against this const string.
    pub constraints: Vec<Constraint>,
}

/// The store of mutable (tuple / finite hash / const string) types.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeStore {
    tuples: Vec<TupleData>,
    hashes: Vec<FiniteHashData>,
    strings: Vec<ConstStringData>,
}

impl TypeStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TypeStore::default()
    }

    // ---- creation -------------------------------------------------------

    /// Allocates a new tuple type with the given element types.
    pub fn new_tuple(&mut self, elems: Vec<Type>) -> Type {
        let id = TupleId(self.tuples.len() as u32);
        self.tuples.push(TupleData { elems, promoted: None, constraints: Vec::new() });
        Type::Tuple(id)
    }

    /// Allocates a new finite hash type with the given entries.
    pub fn new_finite_hash(&mut self, entries: Vec<(HashKey, Type)>) -> Type {
        let id = FiniteHashId(self.hashes.len() as u32);
        self.hashes.push(FiniteHashData {
            entries,
            rest: None,
            promoted: None,
            constraints: Vec::new(),
        });
        Type::FiniteHash(id)
    }

    /// Allocates a new const string type for the given literal.
    pub fn new_const_string(&mut self, value: impl Into<String>) -> Type {
        let id = ConstStringId(self.strings.len() as u32);
        self.strings.push(ConstStringData {
            value: Some(value.into()),
            promoted: false,
            constraints: Vec::new(),
        });
        Type::ConstString(id)
    }

    // ---- access ---------------------------------------------------------

    /// The data backing a tuple type.
    pub fn tuple(&self, id: TupleId) -> &TupleData {
        &self.tuples[id.0 as usize]
    }

    /// The data backing a finite hash type.
    pub fn finite_hash(&self, id: FiniteHashId) -> &FiniteHashData {
        &self.hashes[id.0 as usize]
    }

    /// The data backing a const string type.
    pub fn const_string(&self, id: ConstStringId) -> &ConstStringData {
        &self.strings[id.0 as usize]
    }

    /// The known literal value of a const string, unless promoted.
    pub fn const_string_value(&self, id: ConstStringId) -> Option<&str> {
        let data = self.const_string(id);
        if data.promoted {
            None
        } else {
            data.value.as_deref()
        }
    }

    /// Resolves one level of promotion: a promoted tuple / finite hash /
    /// const string resolves to its promoted type, everything else resolves
    /// to itself.
    pub fn resolve(&self, ty: &Type) -> Type {
        match ty {
            Type::Tuple(id) => match &self.tuple(*id).promoted {
                Some(p) => p.clone(),
                None => ty.clone(),
            },
            Type::FiniteHash(id) => match &self.finite_hash(*id).promoted {
                Some(p) => p.clone(),
                None => ty.clone(),
            },
            Type::ConstString(id) => {
                if self.const_string(*id).promoted {
                    Type::nominal("String")
                } else {
                    ty.clone()
                }
            }
            other => other.clone(),
        }
    }

    /// The number of allocated store-backed types (used by stats / tests).
    pub fn len(&self) -> usize {
        self.tuples.len() + self.hashes.len() + self.strings.len()
    }

    /// True if nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ---- constraints ----------------------------------------------------

    /// Records a constraint against a store-backed type so it can be
    /// replayed after weak updates (§4: "we use this same mechanism to
    /// replay previous constraints on these types whenever they are
    /// mutated").
    pub fn record_constraint(&mut self, on: &Type, lhs: Type, rhs: Type, origin: &str) {
        let c = Constraint { lhs, rhs, origin: origin.to_string() };
        match on {
            Type::Tuple(id) => self.tuples[id.0 as usize].constraints.push(c),
            Type::FiniteHash(id) => self.hashes[id.0 as usize].constraints.push(c),
            Type::ConstString(id) => self.strings[id.0 as usize].constraints.push(c),
            _ => {}
        }
    }

    /// All constraints recorded against a store-backed type.
    pub fn constraints_on(&self, ty: &Type) -> Vec<Constraint> {
        match ty {
            Type::Tuple(id) => self.tuple(*id).constraints.clone(),
            Type::FiniteHash(id) => self.finite_hash(*id).constraints.clone(),
            Type::ConstString(id) => self.const_string(*id).constraints.clone(),
            _ => Vec::new(),
        }
    }

    // ---- promotion ------------------------------------------------------

    /// Promotes a tuple to `Array<T>` where `T` is the union of its element
    /// types, and returns the promoted type.
    pub fn promote_tuple(&mut self, id: TupleId) -> Type {
        let data = &self.tuples[id.0 as usize];
        if let Some(p) = &data.promoted {
            return p.clone();
        }
        let elem = Type::union(data.elems.iter().cloned());
        let elem = if elem == Type::Bot { Type::object() } else { elem };
        let promoted = Type::array(elem);
        self.tuples[id.0 as usize].promoted = Some(promoted.clone());
        promoted
    }

    /// Promotes a finite hash to `Hash<K, V>` and returns the promoted type.
    pub fn promote_finite_hash(&mut self, id: FiniteHashId) -> Type {
        let data = &self.hashes[id.0 as usize];
        if let Some(p) = &data.promoted {
            return p.clone();
        }
        let mut key_types: Vec<Type> = Vec::new();
        let mut val_types: Vec<Type> = Vec::new();
        for (k, v) in &data.entries {
            key_types.push(match k {
                HashKey::Sym(_) => Type::nominal("Symbol"),
                HashKey::Str(_) => Type::nominal("String"),
                HashKey::Int(_) => Type::nominal("Integer"),
            });
            val_types.push(v.clone());
        }
        if let Some(rest) = &data.rest {
            val_types.push((**rest).clone());
        }
        let key =
            if key_types.is_empty() { Type::nominal("Symbol") } else { Type::union(key_types) };
        let val = if val_types.is_empty() { Type::object() } else { Type::union(val_types) };
        let promoted = Type::hash(key, val);
        self.hashes[id.0 as usize].promoted = Some(promoted.clone());
        promoted
    }

    /// Promotes a const string to plain `String`.
    pub fn promote_const_string(&mut self, id: ConstStringId) -> Type {
        self.strings[id.0 as usize].promoted = true;
        Type::nominal("String")
    }

    /// Promotes any store-backed type; other types are returned unchanged.
    pub fn promote(&mut self, ty: &Type) -> Type {
        match ty {
            Type::Tuple(id) => self.promote_tuple(*id),
            Type::FiniteHash(id) => self.promote_finite_hash(*id),
            Type::ConstString(id) => self.promote_const_string(*id),
            other => other.clone(),
        }
    }

    // ---- weak updates ---------------------------------------------------

    /// Weakly updates element `index` of a tuple with `new_ty`: the element
    /// type becomes the union of its old type and `new_ty` (§4).  Indexes
    /// past the end extend the tuple.  Returns the constraints that must be
    /// replayed.
    pub fn weak_update_tuple(
        &mut self,
        id: TupleId,
        index: usize,
        new_ty: Type,
    ) -> Vec<Constraint> {
        let data = &mut self.tuples[id.0 as usize];
        if index < data.elems.len() {
            let old = data.elems[index].clone();
            data.elems[index] = Type::union([old, new_ty]);
        } else {
            data.elems.push(new_ty);
        }
        if data.promoted.is_some() {
            // Keep the promoted view in sync.
            let elem = Type::union(data.elems.iter().cloned());
            data.promoted = Some(Type::array(elem));
        }
        data.constraints.clone()
    }

    /// Weakly updates the value type of `key` in a finite hash (adding the
    /// key if absent).  Returns the constraints that must be replayed.
    pub fn weak_update_hash(
        &mut self,
        id: FiniteHashId,
        key: HashKey,
        new_ty: Type,
    ) -> Vec<Constraint> {
        let data = &mut self.hashes[id.0 as usize];
        match data.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => {
                let old = v.clone();
                *v = Type::union([old, new_ty]);
            }
            None => data.entries.push((key, new_ty)),
        }
        if data.promoted.is_some() {
            let vals = Type::union(data.entries.iter().map(|(_, v)| v.clone()));
            data.promoted = Some(Type::hash(Type::nominal("Symbol"), vals));
        }
        data.constraints.clone()
    }

    /// Records that a const string was mutated (e.g. `<<` or `gsub!`): its
    /// precise value is forgotten and it behaves as `String` from now on.
    /// Returns the constraints that must be replayed.
    pub fn weak_update_const_string(&mut self, id: ConstStringId) -> Vec<Constraint> {
        let data = &mut self.strings[id.0 as usize];
        data.value = None;
        data.promoted = true;
        data.constraints.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::SingVal;

    #[test]
    fn tuple_promotion_unions_elements() {
        let mut store = TypeStore::new();
        let t = store.new_tuple(vec![Type::nominal("Integer"), Type::nominal("String")]);
        let Type::Tuple(id) = t else { panic!() };
        let p = store.promote_tuple(id);
        assert_eq!(
            p,
            Type::array(Type::union([Type::nominal("Integer"), Type::nominal("String")]))
        );
        assert_eq!(store.resolve(&t), p);
    }

    #[test]
    fn finite_hash_promotion() {
        let mut store = TypeStore::new();
        let t = store.new_finite_hash(vec![
            (HashKey::Sym("info".into()), Type::array(Type::nominal("String"))),
            (HashKey::Sym("title".into()), Type::nominal("String")),
        ]);
        let Type::FiniteHash(id) = t else { panic!() };
        let p = store.promote_finite_hash(id);
        match p {
            Type::Generic { base, args } => {
                assert_eq!(base, "Hash");
                assert_eq!(args[0], Type::nominal("Symbol"));
                assert!(matches!(&args[1], Type::Union(_)));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn const_string_tracks_value_until_promoted() {
        let mut store = TypeStore::new();
        let t = store.new_const_string("SELECT * FROM users");
        let Type::ConstString(id) = t else { panic!() };
        assert_eq!(store.const_string_value(id), Some("SELECT * FROM users"));
        store.weak_update_const_string(id);
        assert_eq!(store.const_string_value(id), None);
        assert_eq!(store.resolve(&t), Type::nominal("String"));
    }

    #[test]
    fn weak_update_tuple_unions_element() {
        let mut store = TypeStore::new();
        let t = store.new_tuple(vec![Type::nominal("Integer"), Type::nominal("String")]);
        let Type::Tuple(id) = t else { panic!() };
        store.record_constraint(&t, Type::Var("alpha".into()), t.clone(), "test");
        let replay = store.weak_update_tuple(id, 0, Type::nominal("String"));
        assert_eq!(replay.len(), 1);
        assert_eq!(
            store.tuple(id).elems[0],
            Type::union([Type::nominal("Integer"), Type::nominal("String")])
        );
    }

    #[test]
    fn weak_update_hash_adds_missing_keys() {
        let mut store = TypeStore::new();
        let t = store.new_finite_hash(vec![(HashKey::Sym("a".into()), Type::int(1))]);
        let Type::FiniteHash(id) = t else { panic!() };
        store.weak_update_hash(id, HashKey::Sym("b".into()), Type::nominal("String"));
        assert_eq!(store.finite_hash(id).entries.len(), 2);
        store.weak_update_hash(id, HashKey::Sym("a".into()), Type::nominal("Integer"));
        let a_ty = store.finite_hash(id).get(&HashKey::Sym("a".into())).unwrap().clone();
        assert_eq!(a_ty, Type::union([Type::Singleton(SingVal::Int(1)), Type::nominal("Integer")]));
    }

    #[test]
    fn promotion_is_idempotent() {
        let mut store = TypeStore::new();
        let t = store.new_tuple(vec![Type::nominal("Integer")]);
        let Type::Tuple(id) = t else { panic!() };
        let p1 = store.promote_tuple(id);
        let p2 = store.promote_tuple(id);
        assert_eq!(p1, p2);
    }

    #[test]
    fn empty_collections_promote_sensibly() {
        let mut store = TypeStore::new();
        let t = store.new_tuple(vec![]);
        let p = store.promote(&t);
        assert_eq!(p, Type::array(Type::object()));
        let h = store.new_finite_hash(vec![]);
        let p = store.promote(&h);
        assert_eq!(p, Type::hash(Type::nominal("Symbol"), Type::object()));
    }
}
