//! The mutable type store.
//!
//! RDL represents tuple, finite hash and const string types as *objects*
//! that may be mutated (weak updates, §4 of the paper) and *promoted* to
//! `Array`, `Hash` and `String` respectively when an operation outside the
//! precise fragment is applied.  Aliasing matters: in
//!
//! ```ruby
//! a = [1, 'foo']; if ... then b = a end; a[0] = 'one'
//! ```
//!
//! the types of `a` and `b` share one tuple object, so mutating it affects
//! both.  The [`TypeStore`] reproduces this sharing: store-backed types are
//! indices into the store, and every constraint asserted against them is
//! recorded so it can be *replayed* after a weak update or promotion.

use crate::fingerprint::Fingerprint;
use crate::ty::{ConstStringId, FiniteHashId, HashKey, SingVal, TupleId, Type};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A recorded subtyping constraint `lhs <= rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// The left-hand side of the constraint.
    pub lhs: Type,
    /// The right-hand side of the constraint.
    pub rhs: Type,
    /// A human readable description of where the constraint came from.
    pub origin: String,
}

/// Data backing a tuple type.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleData {
    /// Element types, in order.
    pub elems: Vec<Type>,
    /// If the tuple was promoted, the `Array<T>` type it was promoted to.
    pub promoted: Option<Type>,
    /// Constraints asserted against this tuple.
    pub constraints: Vec<Constraint>,
}

/// Data backing a finite hash type.
#[derive(Debug, Clone, PartialEq)]
pub struct FiniteHashData {
    /// Known entries in insertion order.
    pub entries: Vec<(HashKey, Type)>,
    /// The "rest" type for open finite hashes (`{ a: X, **rest }`), if any.
    pub rest: Option<Box<Type>>,
    /// If the hash was promoted, the `Hash<K, V>` type it was promoted to.
    pub promoted: Option<Type>,
    /// Constraints asserted against this hash.
    pub constraints: Vec<Constraint>,
}

impl FiniteHashData {
    /// Looks up the type of a key.
    pub fn get(&self, key: &HashKey) -> Option<&Type> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, t)| t)
    }
}

/// Data backing a const string type.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstStringData {
    /// The string contents, if still known precisely.
    pub value: Option<String>,
    /// Whether the const string has been promoted to plain `String`.
    pub promoted: bool,
    /// Constraints asserted against this const string.
    pub constraints: Vec<Constraint>,
}

/// Per-store digest / render caches for store-backed ids, keyed on
/// `(kind, raw id)` and stamped with the generation they were computed
/// under: any promotion, weak update or named-slot change bumps the
/// generation and implicitly drops every entry.  (Store-*free* types never
/// land here — their digests and renders are precomputed by the global
/// interner, see [`crate::intern`].)
#[derive(Default)]
struct StoreCaches {
    digests: Mutex<HashMap<(u8, u32), (u64, u64)>>,
    renders: Mutex<RenderMap>,
}

/// Generation-stamped rendered strings, keyed like `digests`.
type RenderMap = HashMap<(u8, u32), (u64, Arc<str>)>;

impl StoreCaches {
    fn get_digest(&self, key: (u8, u32), generation: u64) -> Option<u64> {
        let map = self.digests.lock().unwrap_or_else(|e| e.into_inner());
        map.get(&key).filter(|(g, _)| *g == generation).map(|(_, d)| *d)
    }

    fn put_digest(&self, key: (u8, u32), generation: u64, digest: u64) {
        let mut map = self.digests.lock().unwrap_or_else(|e| e.into_inner());
        map.insert(key, (generation, digest));
    }

    fn get_render(&self, key: (u8, u32), generation: u64) -> Option<Arc<str>> {
        let map = self.renders.lock().unwrap_or_else(|e| e.into_inner());
        map.get(&key).filter(|(g, _)| *g == generation).map(|(_, s)| s.clone())
    }

    fn put_render(&self, key: (u8, u32), generation: u64, rendered: &str) {
        let mut map = self.renders.lock().unwrap_or_else(|e| e.into_inner());
        map.insert(key, (generation, rendered.into()));
    }
}

/// The `(kind, raw id)` cache key of a bare store-backed type, if any.
fn store_cache_key(ty: &Type) -> Option<(u8, u32)> {
    match ty {
        Type::Tuple(id) => Some((0, id.0)),
        Type::FiniteHash(id) => Some((1, id.0)),
        Type::ConstString(id) => Some((2, id.0)),
        _ => None,
    }
}

/// The store of mutable (tuple / finite hash / const string) types.
#[derive(Default)]
pub struct TypeStore {
    tuples: Vec<TupleData>,
    hashes: Vec<FiniteHashData>,
    strings: Vec<ConstStringData>,
    /// Named type-level slots: mutable global state addressable by name,
    /// the analogue of RDL's type-level globals (e.g. a schema version a
    /// migration flips).  A first-write-ordered `Vec`, so two stores
    /// compare equal exactly when they applied the same writes in the same
    /// order — which deterministic replays of one program do.
    named: Vec<(String, Type)>,
    /// Bumped on every mutation that can change what a store-backed type
    /// *means* (promotion, weak update, named-slot update).  Caches keyed on
    /// store-backed types compare this against the generation they captured
    /// at insert time and treat any difference as an invalidation, so cached
    /// results can never go stale (plain allocation does not bump it — a
    /// fresh id cannot alter the meaning of an existing one).
    generation: u64,
    /// Generation-stamped digest / render caches (identity, not content:
    /// excluded from `Clone`, `PartialEq` and `Debug`).
    caches: StoreCaches,
}

impl Clone for TypeStore {
    fn clone(&self) -> Self {
        // The clone starts with cold caches: sound unconditionally, and
        // clones (worker forks, snapshots) rarely re-render the same ids.
        TypeStore {
            tuples: self.tuples.clone(),
            hashes: self.hashes.clone(),
            strings: self.strings.clone(),
            named: self.named.clone(),
            generation: self.generation,
            caches: StoreCaches::default(),
        }
    }
}

impl PartialEq for TypeStore {
    fn eq(&self, other: &Self) -> bool {
        self.tuples == other.tuples
            && self.hashes == other.hashes
            && self.strings == other.strings
            && self.named == other.named
            && self.generation == other.generation
    }
}

impl std::fmt::Debug for TypeStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TypeStore")
            .field("tuples", &self.tuples)
            .field("hashes", &self.hashes)
            .field("strings", &self.strings)
            .field("named", &self.named)
            .field("generation", &self.generation)
            .finish_non_exhaustive()
    }
}

/// Id offsets returned by [`TypeStore::absorb`]: how far the absorbed
/// store's tuple / finite hash / const string ids were shifted.  Apply with
/// [`StoreShift::apply`] to every [`Type`] that was minted against the
/// absorbed store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreShift {
    /// Offset added to absorbed [`TupleId`]s.
    pub tuples: u32,
    /// Offset added to absorbed [`FiniteHashId`]s.
    pub hashes: u32,
    /// Offset added to absorbed [`ConstStringId`]s.
    pub strings: u32,
}

impl StoreShift {
    /// True when absorbing did not move any ids (absorbing into an empty
    /// store).
    pub fn is_identity(&self) -> bool {
        *self == StoreShift::default()
    }

    /// Rewrites every store-backed id inside `ty` by this shift.
    pub fn apply(&self, ty: &Type) -> Type {
        if self.is_identity() {
            return ty.clone();
        }
        match ty {
            Type::Tuple(id) => Type::Tuple(TupleId(id.0 + self.tuples)),
            Type::FiniteHash(id) => Type::FiniteHash(FiniteHashId(id.0 + self.hashes)),
            Type::ConstString(id) => Type::ConstString(ConstStringId(id.0 + self.strings)),
            Type::Generic { base, args } => Type::Generic {
                base: base.clone(),
                args: args.iter().map(|a| self.apply(a)).collect(),
            },
            Type::Union(ts) => Type::Union(ts.iter().map(|t| self.apply(t)).collect()),
            Type::Optional(t) => Type::Optional(Box::new(self.apply(t))),
            Type::Vararg(t) => Type::Vararg(Box::new(self.apply(t))),
            other => other.clone(),
        }
    }

    fn apply_constraint(&self, c: &Constraint) -> Constraint {
        Constraint { lhs: self.apply(&c.lhs), rhs: self.apply(&c.rhs), origin: c.origin.clone() }
    }
}

impl TypeStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TypeStore::default()
    }

    // ---- creation -------------------------------------------------------

    /// Allocates a new tuple type with the given element types.
    pub fn new_tuple(&mut self, elems: Vec<Type>) -> Type {
        let id = TupleId(self.tuples.len() as u32);
        self.tuples.push(TupleData { elems, promoted: None, constraints: Vec::new() });
        Type::Tuple(id)
    }

    /// Allocates a new finite hash type with the given entries.
    pub fn new_finite_hash(&mut self, entries: Vec<(HashKey, Type)>) -> Type {
        let id = FiniteHashId(self.hashes.len() as u32);
        self.hashes.push(FiniteHashData {
            entries,
            rest: None,
            promoted: None,
            constraints: Vec::new(),
        });
        Type::FiniteHash(id)
    }

    /// Allocates a new const string type for the given literal.
    pub fn new_const_string(&mut self, value: impl Into<String>) -> Type {
        let id = ConstStringId(self.strings.len() as u32);
        self.strings.push(ConstStringData {
            value: Some(value.into()),
            promoted: false,
            constraints: Vec::new(),
        });
        Type::ConstString(id)
    }

    // ---- access ---------------------------------------------------------

    /// The data backing a tuple type.
    pub fn tuple(&self, id: TupleId) -> &TupleData {
        &self.tuples[id.0 as usize]
    }

    /// The data backing a finite hash type.
    pub fn finite_hash(&self, id: FiniteHashId) -> &FiniteHashData {
        &self.hashes[id.0 as usize]
    }

    /// The data backing a const string type.
    pub fn const_string(&self, id: ConstStringId) -> &ConstStringData {
        &self.strings[id.0 as usize]
    }

    /// The known literal value of a const string, unless promoted.
    pub fn const_string_value(&self, id: ConstStringId) -> Option<&str> {
        let data = self.const_string(id);
        if data.promoted {
            None
        } else {
            data.value.as_deref()
        }
    }

    /// Resolves one level of promotion: a promoted tuple / finite hash /
    /// const string resolves to its promoted type, everything else resolves
    /// to itself.
    pub fn resolve(&self, ty: &Type) -> Type {
        match ty {
            Type::Tuple(id) => match &self.tuple(*id).promoted {
                Some(p) => p.clone(),
                None => ty.clone(),
            },
            Type::FiniteHash(id) => match &self.finite_hash(*id).promoted {
                Some(p) => p.clone(),
                None => ty.clone(),
            },
            Type::ConstString(id) => {
                if self.const_string(*id).promoted {
                    Type::nominal("String")
                } else {
                    ty.clone()
                }
            }
            other => other.clone(),
        }
    }

    /// The number of allocated store-backed types (used by stats / tests).
    pub fn len(&self) -> usize {
        self.tuples.len() + self.hashes.len() + self.strings.len()
    }

    /// True if nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current mutation generation: incremented by every promotion and
    /// weak update.  Consumers that cache anything derived from store-backed
    /// types must revalidate when this changes.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn bump_generation(&mut self) {
        self.generation += 1;
    }

    // ---- named slots -----------------------------------------------------

    /// The type currently held in the named type-level slot `name`, if set.
    pub fn named(&self, name: &str) -> Option<&Type> {
        self.named.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Sets the named type-level slot `name` to `ty`.  Like a weak update,
    /// this changes what type-level state *means*, so it bumps the
    /// generation — unless the slot already holds an equal type, in which
    /// case the write is a no-op (re-running an idempotent migration must
    /// not invalidate every generation-guarded cache again).
    pub fn set_named(&mut self, name: &str, ty: Type) {
        match self.named.iter_mut().find(|(n, _)| n == name) {
            Some((_, existing)) => {
                if *existing == ty {
                    return;
                }
                *existing = ty;
            }
            None => self.named.push((name.to_string(), ty)),
        }
        self.bump_generation();
    }

    // ---- merging --------------------------------------------------------

    /// Appends every type from `other` into this store, returning the id
    /// shift that must be applied to types minted against `other`.  Used by
    /// the parallel checker to merge per-worker stores into the single store
    /// the dynamic-check hook resolves against.
    pub fn absorb(&mut self, other: TypeStore) -> StoreShift {
        let shift = StoreShift {
            tuples: self.tuples.len() as u32,
            hashes: self.hashes.len() as u32,
            strings: self.strings.len() as u32,
        };
        for t in other.tuples {
            self.tuples.push(TupleData {
                elems: t.elems.iter().map(|e| shift.apply(e)).collect(),
                promoted: t.promoted.as_ref().map(|p| shift.apply(p)),
                constraints: t.constraints.iter().map(|c| shift.apply_constraint(c)).collect(),
            });
        }
        for h in other.hashes {
            self.hashes.push(FiniteHashData {
                entries: h.entries.iter().map(|(k, v)| (k.clone(), shift.apply(v))).collect(),
                rest: h.rest.as_ref().map(|r| Box::new(shift.apply(r))),
                promoted: h.promoted.as_ref().map(|p| shift.apply(p)),
                constraints: h.constraints.iter().map(|c| shift.apply_constraint(c)).collect(),
            });
        }
        for s in other.strings {
            self.strings.push(ConstStringData {
                value: s.value,
                promoted: s.promoted,
                constraints: s.constraints.iter().map(|c| shift.apply_constraint(c)).collect(),
            });
        }
        for (name, ty) in other.named {
            // Named slots are global type-level state.  Workers fork with
            // *fresh* stores, so a slot in `other` is one the worker itself
            // wrote; the first absorbed writer lands it and later writers
            // are dropped.  That reproduces sequential checking only while
            // at most one worker writes a given slot per merge — program-
            // order overwrites cannot be reconstructed from absorb order —
            // so helpers that write slots during *checking* must be
            // single-writer (runtime-gated writes, like the corpus's
            // singleton-gated migration helper, never reach this path).
            if self.named(&name).is_none() {
                let ty = shift.apply(&ty);
                self.named.push((name, ty));
            }
        }
        // Keep the counter monotonic across the merge so generation-guarded
        // caches built against either source remain conservative.
        self.generation += other.generation;
        shift
    }

    /// Recursively copies every store-backed type inside `ty` into fresh
    /// store entries, returning a type with the same structure but brand-new
    /// ids.  The copies start with **no recorded constraints** — exactly
    /// like ids a fresh evaluation would have allocated.  Used by the
    /// comp-type cache on hits: handing out the originally cached ids would
    /// alias mutable state across call sites (a weak update at one site
    /// would change another site's type).
    pub fn deep_copy(&mut self, ty: &Type) -> Type {
        let mut memo = std::collections::HashMap::new();
        self.deep_copy_inner(ty, &mut memo)
    }

    fn deep_copy_inner(
        &mut self,
        ty: &Type,
        memo: &mut std::collections::HashMap<Type, Type>,
    ) -> Type {
        match ty {
            Type::Tuple(id) => {
                if let Some(copied) = memo.get(ty) {
                    return copied.clone();
                }
                // Allocate the copy first so self-referential data maps to
                // the new id instead of recursing forever.
                let copy = self.new_tuple(Vec::new());
                memo.insert(ty.clone(), copy.clone());
                let data = self.tuple(*id).clone();
                let elems = data.elems.iter().map(|e| self.deep_copy_inner(e, memo)).collect();
                let promoted = data.promoted.as_ref().map(|p| self.deep_copy_inner(p, memo));
                let Type::Tuple(new_id) = copy else { unreachable!("new_tuple returns a tuple") };
                self.tuples[new_id.0 as usize].elems = elems;
                self.tuples[new_id.0 as usize].promoted = promoted;
                Type::Tuple(new_id)
            }
            Type::FiniteHash(id) => {
                if let Some(copied) = memo.get(ty) {
                    return copied.clone();
                }
                let copy = self.new_finite_hash(Vec::new());
                memo.insert(ty.clone(), copy.clone());
                let data = self.finite_hash(*id).clone();
                let entries = data
                    .entries
                    .iter()
                    .map(|(k, v)| (k.clone(), self.deep_copy_inner(v, memo)))
                    .collect();
                let rest = data.rest.as_ref().map(|r| Box::new(self.deep_copy_inner(r, memo)));
                let promoted = data.promoted.as_ref().map(|p| self.deep_copy_inner(p, memo));
                let Type::FiniteHash(new_id) = copy else {
                    unreachable!("new_finite_hash returns a finite hash")
                };
                self.hashes[new_id.0 as usize].entries = entries;
                self.hashes[new_id.0 as usize].rest = rest;
                self.hashes[new_id.0 as usize].promoted = promoted;
                Type::FiniteHash(new_id)
            }
            Type::ConstString(id) => {
                if let Some(copied) = memo.get(ty) {
                    return copied.clone();
                }
                let data = self.const_string(*id).clone();
                let new_id = ConstStringId(self.strings.len() as u32);
                self.strings.push(ConstStringData {
                    value: data.value,
                    promoted: data.promoted,
                    constraints: Vec::new(),
                });
                let copy = Type::ConstString(new_id);
                memo.insert(ty.clone(), copy.clone());
                copy
            }
            Type::Generic { base, args } => Type::Generic {
                base: base.clone(),
                args: args.iter().map(|a| self.deep_copy_inner(a, memo)).collect(),
            },
            Type::Union(ts) => {
                Type::Union(ts.iter().map(|t| self.deep_copy_inner(t, memo)).collect())
            }
            Type::Optional(t) => Type::Optional(Box::new(self.deep_copy_inner(t, memo))),
            Type::Vararg(t) => Type::Vararg(Box::new(self.deep_copy_inner(t, memo))),
            other => other.clone(),
        }
    }

    // ---- display --------------------------------------------------------

    /// Renders a type with store-backed parts expanded structurally:
    /// `[Integer, String]` for tuples, `{ info: Array<String> }` for finite
    /// hashes, `"literal"` for const strings.  Unlike [`Type`]'s `Display`
    /// (which prints raw store ids such as `#fhash3`), this output is
    /// independent of allocation order, so diagnostics built from it are
    /// byte-identical across cached / uncached and parallel / sequential
    /// runs.
    ///
    /// Store-free types take a fast path through the global interner's
    /// per-id string cache; store-backed ids hit a per-store cache stamped
    /// with the current generation.  Both produce exactly the bytes the
    /// structural walk ([`TypeStore::render_uncached`]) produces.
    pub fn render(&self, ty: &Type) -> String {
        if !ty.contains_store_backed() {
            let info = crate::intern::info(crate::intern::intern(ty));
            return info.render().expect("store-free types always render").to_string();
        }
        let mut out = String::new();
        self.render_into(ty, &mut Vec::new(), &mut out, true);
        out
    }

    /// [`TypeStore::render`] without the interner or per-store caches: the
    /// plain structural walk, kept public as the oracle the cached path is
    /// property-tested against (and as the baseline the `type_core` bench
    /// measures).
    pub fn render_uncached(&self, ty: &Type) -> String {
        let mut out = String::new();
        self.render_into(ty, &mut Vec::new(), &mut out, false);
        out
    }

    fn render_into(&self, ty: &Type, visiting: &mut Vec<Type>, out: &mut String, caches: bool) {
        use std::fmt::Write;
        // Weak updates can make a store-backed type reference itself
        // (`a[0] = a`); fall back to the raw id display on re-entry.
        if ty.is_store_backed() && visiting.contains(ty) {
            let _ = write!(out, "{ty}");
            return;
        }
        // Cached strings are only consulted for store-backed ids reached
        // with an empty visiting stack: a standalone render of such an id
        // sees exactly the same cycle structure, so splicing it in is
        // byte-equivalent.  (Deeper in, a subtree may reference an id on
        // the outer stack, which a standalone render cannot know about.)
        let cache_key = if caches && visiting.is_empty() { store_cache_key(ty) } else { None };
        if let Some(key) = cache_key {
            if let Some(s) = self.caches.get_render(key, self.generation) {
                out.push_str(&s);
                return;
            }
        }
        let start = out.len();
        match &self.resolve(ty) {
            Type::Tuple(id) => {
                visiting.push(ty.clone());
                out.push('[');
                for (i, e) in self.tuple(*id).elems.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.render_into(e, visiting, out, caches);
                }
                out.push(']');
                visiting.pop();
            }
            Type::FiniteHash(id) => {
                visiting.push(ty.clone());
                let data = self.finite_hash(*id);
                out.push_str("{ ");
                for (i, (k, v)) in data.entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{k} ");
                    self.render_into(v, visiting, out, caches);
                }
                if data.entries.is_empty() {
                    // `{  }` reads badly; normalise the empty hash.
                    out.truncate(out.len() - 2);
                    out.push('{');
                }
                out.push_str(" }");
                visiting.pop();
            }
            Type::ConstString(id) => match self.const_string_value(*id) {
                Some(v) => {
                    let _ = write!(out, "{v:?}");
                }
                None => out.push_str("String"),
            },
            Type::Generic { base, args } => {
                let _ = write!(out, "{base}<");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.render_into(a, visiting, out, caches);
                }
                out.push('>');
            }
            Type::Union(ts) => {
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" or ");
                    }
                    self.render_into(t, visiting, out, caches);
                }
            }
            Type::Optional(t) => {
                out.push('?');
                self.render_into(t, visiting, out, caches);
            }
            Type::Vararg(t) => {
                out.push('*');
                self.render_into(t, visiting, out, caches);
            }
            other => {
                let _ = write!(out, "{other}");
            }
        }
        if let Some(key) = cache_key {
            self.caches.put_render(key, self.generation, &out[start..]);
        }
    }

    /// A stable structural digest of `ty` under this store's **current**
    /// contents: store-backed ids are resolved to their content (so two
    /// freshly allocated ids with identical structure digest identically),
    /// while any weak update or promotion changes the digest.  Cheaper than
    /// building the [`TypeStore::render`] string when only an identity is
    /// needed; the comp-type evaluation cache keys store-backed bindings on
    /// it.  Being a 64-bit digest, distinct structures *can* collide
    /// (probability ~2⁻⁶⁴ per pair) — acceptable for cache keys, not for
    /// anything security-sensitive.
    ///
    /// The digest is *Merkle-composable*: each node digests its own tag and
    /// payload plus the **digests** of its children (written as `u64`s),
    /// rather than splicing child bytes into one flat stream.  That makes
    /// the digest of every store-free node a pure function of its
    /// structure, which is exactly what lets the global interner precompute
    /// it once per distinct node ([`crate::intern`]) and lets this method
    /// answer store-free queries with a field read and store-backed ids
    /// from a generation-stamped per-store cache.
    pub fn fingerprint(&self, ty: &Type) -> u64 {
        if !ty.contains_store_backed() {
            let info = crate::intern::info(crate::intern::intern(ty));
            return info.digest().expect("store-free types always carry a digest");
        }
        self.digest_of(ty, &mut Vec::new(), true)
    }

    /// [`TypeStore::fingerprint`] as the plain structural walk, bypassing
    /// the interner and the per-store caches.  Kept public as the oracle
    /// the cached path is property-tested against and as the baseline the
    /// `type_core` bench measures; always returns the same value as
    /// `fingerprint`.
    pub fn fingerprint_uncached(&self, ty: &Type) -> u64 {
        self.digest_of(ty, &mut Vec::new(), false)
    }

    fn digest_of(&self, ty: &Type, visiting: &mut Vec<Type>, caches: bool) -> u64 {
        // Weak updates can make a store-backed type reference itself; digest
        // the raw id on re-entry, mirroring `render_into`.
        if ty.is_store_backed() && visiting.contains(ty) {
            let mut fp = Fingerprint::new();
            fp.write_u8(0xFE);
            fp.write_str(&ty.to_string());
            return fp.finish();
        }
        // Same empty-stack rule as `render_into`: a standalone digest of a
        // store-backed id is only splice-equivalent when no enclosing
        // store-backed node is mid-visit.
        let cache_key = if caches && visiting.is_empty() { store_cache_key(ty) } else { None };
        if let Some(key) = cache_key {
            if let Some(d) = self.caches.get_digest(key, self.generation) {
                return d;
            }
        }
        let mut fp = Fingerprint::new();
        match &self.resolve(ty) {
            Type::Top => fp.write_u8(0),
            Type::Bot => fp.write_u8(1),
            Type::Bool => fp.write_u8(2),
            Type::Dynamic => fp.write_u8(3),
            Type::Nominal(n) => {
                fp.write_u8(4);
                fp.write_str(n);
            }
            Type::Var(v) => {
                fp.write_u8(5);
                fp.write_str(v);
            }
            Type::Singleton(sv) => {
                fp.write_u8(6);
                match sv {
                    SingVal::Nil => fp.write_u8(0),
                    SingVal::True => fp.write_u8(1),
                    SingVal::False => fp.write_u8(2),
                    SingVal::Int(i) => {
                        fp.write_u8(3);
                        fp.write_i64(*i);
                    }
                    SingVal::FloatBits(b) => {
                        fp.write_u8(4);
                        fp.write_u64(*b);
                    }
                    SingVal::Sym(s) => {
                        fp.write_u8(5);
                        fp.write_str(s);
                    }
                    SingVal::Class(c) => {
                        fp.write_u8(6);
                        fp.write_str(c);
                    }
                }
            }
            Type::Generic { base, args } => {
                fp.write_u8(7);
                fp.write_str(base);
                fp.write_usize(args.len());
                for a in args {
                    let d = self.digest_of(a, visiting, caches);
                    fp.write_u64(d);
                }
            }
            Type::Union(ts) => {
                fp.write_u8(8);
                fp.write_usize(ts.len());
                for t in ts {
                    let d = self.digest_of(t, visiting, caches);
                    fp.write_u64(d);
                }
            }
            Type::Optional(t) => {
                fp.write_u8(9);
                let d = self.digest_of(t, visiting, caches);
                fp.write_u64(d);
            }
            Type::Vararg(t) => {
                fp.write_u8(10);
                let d = self.digest_of(t, visiting, caches);
                fp.write_u64(d);
            }
            Type::Tuple(id) => {
                visiting.push(ty.clone());
                fp.write_u8(11);
                let data = self.tuple(*id);
                fp.write_usize(data.elems.len());
                for e in &data.elems {
                    let d = self.digest_of(e, visiting, caches);
                    fp.write_u64(d);
                }
                visiting.pop();
            }
            Type::FiniteHash(id) => {
                visiting.push(ty.clone());
                fp.write_u8(12);
                let data = self.finite_hash(*id);
                fp.write_usize(data.entries.len());
                for (k, v) in &data.entries {
                    match k {
                        HashKey::Sym(s) => {
                            fp.write_u8(0);
                            fp.write_str(s);
                        }
                        HashKey::Str(s) => {
                            fp.write_u8(1);
                            fp.write_str(s);
                        }
                        HashKey::Int(i) => {
                            fp.write_u8(2);
                            fp.write_i64(*i);
                        }
                    }
                    let d = self.digest_of(v, visiting, caches);
                    fp.write_u64(d);
                }
                match &data.rest {
                    Some(rest) => {
                        fp.write_u8(1);
                        let d = self.digest_of(rest, visiting, caches);
                        fp.write_u64(d);
                    }
                    None => fp.write_u8(0),
                }
                visiting.pop();
            }
            Type::ConstString(id) => match self.const_string_value(*id) {
                Some(v) => {
                    fp.write_u8(13);
                    fp.write_str(v);
                }
                // Promoted const strings behave as plain `String`.
                None => {
                    fp.write_u8(4);
                    fp.write_str("String");
                }
            },
        }
        let digest = fp.finish();
        if let Some(key) = cache_key {
            self.caches.put_digest(key, self.generation, digest);
        }
        digest
    }

    // ---- constraints ----------------------------------------------------

    /// Records a constraint against a store-backed type so it can be
    /// replayed after weak updates (§4: "we use this same mechanism to
    /// replay previous constraints on these types whenever they are
    /// mutated").
    pub fn record_constraint(&mut self, on: &Type, lhs: Type, rhs: Type, origin: &str) {
        let c = Constraint { lhs, rhs, origin: origin.to_string() };
        match on {
            Type::Tuple(id) => self.tuples[id.0 as usize].constraints.push(c),
            Type::FiniteHash(id) => self.hashes[id.0 as usize].constraints.push(c),
            Type::ConstString(id) => self.strings[id.0 as usize].constraints.push(c),
            _ => {}
        }
    }

    /// All constraints recorded against a store-backed type.
    pub fn constraints_on(&self, ty: &Type) -> Vec<Constraint> {
        match ty {
            Type::Tuple(id) => self.tuple(*id).constraints.clone(),
            Type::FiniteHash(id) => self.finite_hash(*id).constraints.clone(),
            Type::ConstString(id) => self.const_string(*id).constraints.clone(),
            _ => Vec::new(),
        }
    }

    // ---- promotion ------------------------------------------------------

    /// Promotes a tuple to `Array<T>` where `T` is the union of its element
    /// types, and returns the promoted type.
    pub fn promote_tuple(&mut self, id: TupleId) -> Type {
        let data = &self.tuples[id.0 as usize];
        if let Some(p) = &data.promoted {
            return p.clone();
        }
        let elem = Type::union(data.elems.iter().cloned());
        let elem = if elem == Type::Bot { Type::object() } else { elem };
        let promoted = Type::array(elem);
        self.tuples[id.0 as usize].promoted = Some(promoted.clone());
        self.bump_generation();
        promoted
    }

    /// Promotes a finite hash to `Hash<K, V>` and returns the promoted type.
    pub fn promote_finite_hash(&mut self, id: FiniteHashId) -> Type {
        let data = &self.hashes[id.0 as usize];
        if let Some(p) = &data.promoted {
            return p.clone();
        }
        let mut key_types: Vec<Type> = Vec::new();
        let mut val_types: Vec<Type> = Vec::new();
        for (k, v) in &data.entries {
            key_types.push(match k {
                HashKey::Sym(_) => Type::nominal("Symbol"),
                HashKey::Str(_) => Type::nominal("String"),
                HashKey::Int(_) => Type::nominal("Integer"),
            });
            val_types.push(v.clone());
        }
        if let Some(rest) = &data.rest {
            val_types.push((**rest).clone());
        }
        let key =
            if key_types.is_empty() { Type::nominal("Symbol") } else { Type::union(key_types) };
        let val = if val_types.is_empty() { Type::object() } else { Type::union(val_types) };
        let promoted = Type::hash(key, val);
        self.hashes[id.0 as usize].promoted = Some(promoted.clone());
        self.bump_generation();
        promoted
    }

    /// Promotes a const string to plain `String`.
    pub fn promote_const_string(&mut self, id: ConstStringId) -> Type {
        if !self.strings[id.0 as usize].promoted {
            self.strings[id.0 as usize].promoted = true;
            self.bump_generation();
        }
        Type::nominal("String")
    }

    /// Promotes any store-backed type; other types are returned unchanged.
    pub fn promote(&mut self, ty: &Type) -> Type {
        match ty {
            Type::Tuple(id) => self.promote_tuple(*id),
            Type::FiniteHash(id) => self.promote_finite_hash(*id),
            Type::ConstString(id) => self.promote_const_string(*id),
            other => other.clone(),
        }
    }

    // ---- weak updates ---------------------------------------------------

    /// Weakly updates element `index` of a tuple with `new_ty`: the element
    /// type becomes the union of its old type and `new_ty` (§4).  Indexes
    /// past the end extend the tuple.  Returns the constraints that must be
    /// replayed.
    pub fn weak_update_tuple(
        &mut self,
        id: TupleId,
        index: usize,
        new_ty: Type,
    ) -> Vec<Constraint> {
        let data = &mut self.tuples[id.0 as usize];
        if index < data.elems.len() {
            let old = data.elems[index].clone();
            data.elems[index] = Type::union([old, new_ty]);
        } else {
            data.elems.push(new_ty);
        }
        if data.promoted.is_some() {
            // Keep the promoted view in sync.
            let elem = Type::union(data.elems.iter().cloned());
            data.promoted = Some(Type::array(elem));
        }
        let constraints = data.constraints.clone();
        self.bump_generation();
        constraints
    }

    /// Weakly updates the value type of `key` in a finite hash (adding the
    /// key if absent).  Returns the constraints that must be replayed.
    pub fn weak_update_hash(
        &mut self,
        id: FiniteHashId,
        key: HashKey,
        new_ty: Type,
    ) -> Vec<Constraint> {
        let data = &mut self.hashes[id.0 as usize];
        match data.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => {
                let old = v.clone();
                *v = Type::union([old, new_ty]);
            }
            None => data.entries.push((key, new_ty)),
        }
        if data.promoted.is_some() {
            let vals = Type::union(data.entries.iter().map(|(_, v)| v.clone()));
            data.promoted = Some(Type::hash(Type::nominal("Symbol"), vals));
        }
        let constraints = data.constraints.clone();
        self.bump_generation();
        constraints
    }

    /// Records that a const string was mutated (e.g. `<<` or `gsub!`): its
    /// precise value is forgotten and it behaves as `String` from now on.
    /// Returns the constraints that must be replayed.
    pub fn weak_update_const_string(&mut self, id: ConstStringId) -> Vec<Constraint> {
        let data = &mut self.strings[id.0 as usize];
        data.value = None;
        data.promoted = true;
        let constraints = data.constraints.clone();
        self.bump_generation();
        constraints
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::SingVal;

    #[test]
    fn tuple_promotion_unions_elements() {
        let mut store = TypeStore::new();
        let t = store.new_tuple(vec![Type::nominal("Integer"), Type::nominal("String")]);
        let Type::Tuple(id) = t else { panic!() };
        let p = store.promote_tuple(id);
        assert_eq!(
            p,
            Type::array(Type::union([Type::nominal("Integer"), Type::nominal("String")]))
        );
        assert_eq!(store.resolve(&t), p);
    }

    #[test]
    fn finite_hash_promotion() {
        let mut store = TypeStore::new();
        let t = store.new_finite_hash(vec![
            (HashKey::Sym("info".into()), Type::array(Type::nominal("String"))),
            (HashKey::Sym("title".into()), Type::nominal("String")),
        ]);
        let Type::FiniteHash(id) = t else { panic!() };
        let p = store.promote_finite_hash(id);
        match p {
            Type::Generic { base, args } => {
                assert_eq!(base, "Hash");
                assert_eq!(args[0], Type::nominal("Symbol"));
                assert!(matches!(&args[1], Type::Union(_)));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn const_string_tracks_value_until_promoted() {
        let mut store = TypeStore::new();
        let t = store.new_const_string("SELECT * FROM users");
        let Type::ConstString(id) = t else { panic!() };
        assert_eq!(store.const_string_value(id), Some("SELECT * FROM users"));
        store.weak_update_const_string(id);
        assert_eq!(store.const_string_value(id), None);
        assert_eq!(store.resolve(&t), Type::nominal("String"));
    }

    #[test]
    fn weak_update_tuple_unions_element() {
        let mut store = TypeStore::new();
        let t = store.new_tuple(vec![Type::nominal("Integer"), Type::nominal("String")]);
        let Type::Tuple(id) = t else { panic!() };
        store.record_constraint(&t, Type::Var("alpha".into()), t.clone(), "test");
        let replay = store.weak_update_tuple(id, 0, Type::nominal("String"));
        assert_eq!(replay.len(), 1);
        assert_eq!(
            store.tuple(id).elems[0],
            Type::union([Type::nominal("Integer"), Type::nominal("String")])
        );
    }

    #[test]
    fn weak_update_hash_adds_missing_keys() {
        let mut store = TypeStore::new();
        let t = store.new_finite_hash(vec![(HashKey::Sym("a".into()), Type::int(1))]);
        let Type::FiniteHash(id) = t else { panic!() };
        store.weak_update_hash(id, HashKey::Sym("b".into()), Type::nominal("String"));
        assert_eq!(store.finite_hash(id).entries.len(), 2);
        store.weak_update_hash(id, HashKey::Sym("a".into()), Type::nominal("Integer"));
        let a_ty = store.finite_hash(id).get(&HashKey::Sym("a".into())).unwrap().clone();
        assert_eq!(a_ty, Type::union([Type::Singleton(SingVal::Int(1)), Type::nominal("Integer")]));
    }

    #[test]
    fn promotion_is_idempotent() {
        let mut store = TypeStore::new();
        let t = store.new_tuple(vec![Type::nominal("Integer")]);
        let Type::Tuple(id) = t else { panic!() };
        let p1 = store.promote_tuple(id);
        let p2 = store.promote_tuple(id);
        assert_eq!(p1, p2);
    }

    #[test]
    fn generation_tracks_promotions_and_weak_updates() {
        let mut store = TypeStore::new();
        let g0 = store.generation();
        let t = store.new_tuple(vec![Type::nominal("Integer")]);
        let h = store.new_finite_hash(vec![(HashKey::Sym("a".into()), Type::int(1))]);
        let s = store.new_const_string("sql");
        assert_eq!(store.generation(), g0, "allocation must not bump the generation");
        let Type::Tuple(tid) = t else { panic!() };
        let Type::FiniteHash(hid) = h else { panic!() };
        let Type::ConstString(sid) = s else { panic!() };
        store.weak_update_tuple(tid, 0, Type::nominal("String"));
        assert_eq!(store.generation(), g0 + 1);
        store.weak_update_hash(hid, HashKey::Sym("b".into()), Type::nil());
        assert_eq!(store.generation(), g0 + 2);
        store.promote_tuple(tid);
        assert_eq!(store.generation(), g0 + 3);
        // Idempotent re-promotion does not bump.
        store.promote_tuple(tid);
        assert_eq!(store.generation(), g0 + 3);
        store.promote_const_string(sid);
        assert_eq!(store.generation(), g0 + 4);
        store.promote_const_string(sid);
        assert_eq!(store.generation(), g0 + 4);
    }

    #[test]
    fn absorb_shifts_ids_and_nested_types() {
        let mut base = TypeStore::new();
        base.new_tuple(vec![Type::nominal("Integer")]);
        base.new_const_string("left");

        let mut other = TypeStore::new();
        let inner = other.new_const_string("right");
        let tup = other.new_tuple(vec![inner.clone(), Type::nominal("Float")]);
        other.record_constraint(&tup, tup.clone(), Type::nominal("Array"), "merge-test");

        let shift = base.absorb(other);
        assert_eq!(shift, StoreShift { tuples: 1, hashes: 0, strings: 1 });
        let moved_tup = shift.apply(&tup);
        let Type::Tuple(id) = moved_tup else { panic!() };
        let data = base.tuple(id);
        // The tuple's inner const-string id was shifted along with it.
        assert_eq!(data.elems[0], shift.apply(&inner));
        let Type::ConstString(sid) = &data.elems[0] else { panic!("{:?}", data.elems) };
        assert_eq!(base.const_string_value(*sid), Some("right"));
        assert_eq!(data.constraints.len(), 1);
        assert_eq!(data.constraints[0].lhs, shift.apply(&tup));
    }

    #[test]
    fn render_is_structural_and_id_free() {
        let mut store = TypeStore::new();
        let s = store.new_const_string("SELECT 1");
        let t = store.new_tuple(vec![Type::nominal("Integer"), s.clone()]);
        let h = store.new_finite_hash(vec![
            (HashKey::Sym("info".into()), Type::array(Type::nominal("String"))),
            (HashKey::Sym("items".into()), t.clone()),
        ]);
        assert_eq!(store.render(&s), "\"SELECT 1\"");
        assert_eq!(store.render(&t), "[Integer, \"SELECT 1\"]");
        assert_eq!(store.render(&h), "{ info: Array<String>, items: [Integer, \"SELECT 1\"] }");
        assert!(!store.render(&Type::hash(Type::nominal("Symbol"), h.clone())).contains("#fhash"));
        // Promoted types render through their promoted view.
        let Type::Tuple(id) = t else { panic!() };
        store.promote_tuple(id);
        assert!(store.render(&t).starts_with("Array<"));
        // Self-referential data falls back to the id display instead of
        // recursing forever.
        let cyc = store.new_tuple(vec![]);
        let Type::Tuple(cid) = cyc else { panic!() };
        store.weak_update_tuple(cid, 0, cyc.clone());
        assert_eq!(store.render(&cyc), "[#tuple1]");
    }

    #[test]
    fn fingerprint_is_structural_and_mutation_sensitive() {
        let mut store = TypeStore::new();
        let h1 = store.new_finite_hash(vec![(HashKey::Sym("id".into()), Type::int(1))]);
        let h2 = store.new_finite_hash(vec![(HashKey::Sym("id".into()), Type::int(1))]);
        assert_ne!(h1, h2, "distinct ids");
        assert_eq!(
            store.fingerprint(&h1),
            store.fingerprint(&h2),
            "structurally identical store types must share a fingerprint"
        );
        assert_ne!(store.fingerprint(&h1), store.fingerprint(&Type::nominal("Hash")));

        // A weak update changes the digest of the mutated id only.
        let before = store.fingerprint(&h1);
        let Type::FiniteHash(id2) = h2 else { panic!() };
        store.weak_update_hash(id2, HashKey::Sym("id".into()), Type::nominal("String"));
        assert_eq!(store.fingerprint(&h1), before);
        assert_ne!(store.fingerprint(&h2), before);

        // Promotion digests through the promoted view; a promoted const
        // string digests as plain String.
        let s = store.new_const_string("users");
        let plain = store.fingerprint(&Type::nominal("String"));
        assert_ne!(store.fingerprint(&s), plain);
        let Type::ConstString(sid) = s else { panic!() };
        store.promote_const_string(sid);
        assert_eq!(store.fingerprint(&s), plain);

        // Self-referential data terminates.
        let cyc = store.new_tuple(vec![]);
        let Type::Tuple(cid) = cyc else { panic!() };
        store.weak_update_tuple(cid, 0, cyc.clone());
        let _ = store.fingerprint(&cyc);
    }

    /// Pins the exact digest values of representative types.  Fingerprints
    /// key the runtime memo and the comp-type cache, and seeded tests and
    /// the corpus harness rely on them being identical on every host:
    /// `Fingerprint` must stay free of platform-width dependence (all
    /// `usize` payloads are written through `write_u64`) and of seeded
    /// hashing.  If this test fails, either the digest scheme changed on
    /// purpose (update the constants and say so in the changelog) or a
    /// platform-dependent write slipped in (fix it).
    #[test]
    fn pinned_digests_are_platform_independent() {
        let mut store = TypeStore::new();
        let array_union =
            Type::array(Type::union([Type::nominal("Integer"), Type::nominal("String")]));
        assert_eq!(store.fingerprint(&array_union), 0xd5ba11b112b3d7db);
        assert_eq!(store.fingerprint(&Type::sym("emails")), 0x0992f94c31f758f7);
        assert_eq!(store.fingerprint(&Type::Optional(Box::new(Type::Bool))), 0xcc329528f9d224ac);
        assert_eq!(store.fingerprint(&Type::nominal("String")), 0xd7702accc6e07c68);
        let h = store.new_finite_hash(vec![
            (HashKey::Sym("id".into()), Type::nominal("Integer")),
            (HashKey::Str("name".into()), Type::nominal("String")),
        ]);
        assert_eq!(store.fingerprint(&h), 0x4a0dfba4b90988d6);
        let s = store.new_const_string("SELECT 1");
        assert_eq!(store.fingerprint(&s), 0xc0a6ae7c1b2c25bb);
        // The uncached walk pins to the same constants.
        assert_eq!(store.fingerprint_uncached(&array_union), 0xd5ba11b112b3d7db);
        assert_eq!(store.fingerprint_uncached(&h), 0x4a0dfba4b90988d6);
    }

    #[test]
    fn cached_paths_match_the_structural_walk() {
        let mut store = TypeStore::new();
        let s = store.new_const_string("SELECT 1");
        let t = store.new_tuple(vec![Type::nominal("Integer"), s.clone()]);
        let h = store.new_finite_hash(vec![
            (HashKey::Sym("items".into()), t.clone()),
            (HashKey::Str("raw".into()), s.clone()),
        ]);
        let mixed = Type::union([Type::array(h.clone()), Type::Optional(Box::new(t.clone()))]);
        let cyc = store.new_tuple(vec![]);
        let Type::Tuple(cid) = cyc else { panic!() };
        store.weak_update_tuple(cid, 0, cyc.clone());
        let wrapped_cycle = Type::array(cyc.clone());
        for ty in [&s, &t, &h, &mixed, &cyc, &wrapped_cycle, &Type::array(Type::nominal("User"))] {
            // Twice, so the second round reads the populated caches.
            for round in 0..2 {
                assert_eq!(
                    store.fingerprint(ty),
                    store.fingerprint_uncached(ty),
                    "digest mismatch for {ty} (round {round})"
                );
                assert_eq!(
                    store.render(ty),
                    store.render_uncached(ty),
                    "render mismatch for {ty} (round {round})"
                );
            }
        }
        // Mutations invalidate: the cached digest must track new content.
        let Type::Tuple(tid) = t else { panic!() };
        let before = store.fingerprint(&t);
        store.weak_update_tuple(tid, 0, Type::nominal("Float"));
        assert_ne!(store.fingerprint(&t), before);
        assert_eq!(store.fingerprint(&t), store.fingerprint_uncached(&t));
        assert_eq!(store.render(&t), store.render_uncached(&t));
    }

    #[test]
    fn named_slots_bump_generation_only_on_change() {
        let mut store = TypeStore::new();
        assert_eq!(store.named("schema.version"), None);
        let g0 = store.generation();
        store.set_named("schema.version", Type::int(1));
        assert_eq!(store.named("schema.version"), Some(&Type::int(1)));
        assert_eq!(store.generation(), g0 + 1, "first write is a mutation");
        store.set_named("schema.version", Type::int(1));
        assert_eq!(store.generation(), g0 + 1, "idempotent rewrite must not bump");
        store.set_named("schema.version", Type::nominal("String"));
        assert_eq!(store.named("schema.version"), Some(&Type::nominal("String")));
        assert_eq!(store.generation(), g0 + 2, "a changed slot is a weak update");
        store.set_named("other", Type::Bool);
        assert_eq!(store.generation(), g0 + 3);
        assert_eq!(store.named("schema.version"), Some(&Type::nominal("String")));
    }

    #[test]
    fn absorb_carries_named_slots_with_shifted_ids() {
        let mut base = TypeStore::new();
        base.new_const_string("occupy-a-string-id");
        base.set_named("shared", Type::int(1));

        let mut other = TypeStore::new();
        let s = other.new_const_string("v2");
        other.set_named("schema", s.clone());
        other.set_named("shared", Type::int(2));

        let shift = base.absorb(other);
        // The absorbed slot's store-backed type was shifted into the base
        // store's id space.
        let moved = base.named("schema").cloned().unwrap();
        assert_eq!(moved, shift.apply(&s));
        let Type::ConstString(id) = moved else { panic!() };
        assert_eq!(base.const_string_value(id), Some("v2"));
        // On collision the receiving store wins.
        assert_eq!(base.named("shared"), Some(&Type::int(1)));
    }

    #[test]
    fn empty_collections_promote_sensibly() {
        let mut store = TypeStore::new();
        let t = store.new_tuple(vec![]);
        let p = store.promote(&t);
        assert_eq!(p, Type::array(Type::object()));
        let h = store.new_finite_hash(vec![]);
        let p = store.promote(&h);
        assert_eq!(p, Type::hash(Type::nominal("Symbol"), Type::object()));
    }
}
