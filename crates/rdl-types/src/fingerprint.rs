//! Stable structural fingerprinting.
//!
//! The run-time dynamic checks memoize per-call-site outcomes keyed on the
//! *structure* of the values that flowed through the site (see
//! `comprdl::runtime`), and the comp-type evaluation cache keys store-backed
//! bindings on the structure of their content
//! ([`crate::TypeStore::fingerprint`]).  Both need a hash that is:
//!
//! - **stable** across runs and platforms (no `RandomState` seeding), so
//!   seeded property tests and the corpus harness stay deterministic;
//! - **structural**, so two freshly allocated store ids with identical
//!   content collide on purpose while any weak update or promotion changes
//!   the digest.
//!
//! [`Fingerprint`] is a straightforward FNV-1a 64 accumulator with
//! length-prefixed writes (so `("ab", "c")` and `("a", "bc")` digest
//! differently).  [`crate::TypeStore::fingerprint`] walks a [`crate::Type`]
//! through it, resolving store-backed ids to their current content.

/// An FNV-1a 64-bit accumulator for structural fingerprints.
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

impl Fingerprint {
    /// Starts a fresh accumulator.
    pub fn new() -> Self {
        Fingerprint(FNV_OFFSET)
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Feeds raw bytes (no length prefix; use [`Fingerprint::write_str`] for
    /// variable-length data).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds an `i64` (little-endian two's complement).
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` (as `u64`, so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The digest accumulated so far (the accumulator stays usable).
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let digest = |f: &dyn Fn(&mut Fingerprint)| {
            let mut fp = Fingerprint::new();
            f(&mut fp);
            fp.finish()
        };
        assert_eq!(digest(&|f| f.write_str("ab")), digest(&|f| f.write_str("ab")));
        assert_ne!(digest(&|f| f.write_str("ab")), digest(&|f| f.write_str("ba")));
        // Length prefixing keeps concatenations apart.
        let ab_c = digest(&|f| {
            f.write_str("ab");
            f.write_str("c");
        });
        let a_bc = digest(&|f| {
            f.write_str("a");
            f.write_str("bc");
        });
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a 64 of "a" is a published test vector.
        let mut fp = Fingerprint::new();
        fp.write_u8(b'a');
        assert_eq!(fp.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    /// `usize` payloads (lengths, counts) must digest through the 8-byte
    /// `u64` encoding, never through the host word size: a 32-bit host
    /// feeding 4 bytes would pin different digests than a 64-bit host, and
    /// fingerprints key caches that seeded tests compare across platforms.
    /// Pinned values so any future re-encoding of `write_usize` fails
    /// loudly instead of silently forking the digest space.
    #[test]
    fn write_usize_is_width_independent() {
        let digest_usize = |v: usize| {
            let mut fp = Fingerprint::new();
            fp.write_usize(v);
            fp.finish()
        };
        let digest_u64 = |v: u64| {
            let mut fp = Fingerprint::new();
            fp.write_u64(v);
            fp.finish()
        };
        for v in [0usize, 1, 255, 256, 0xDEAD_BEEF, usize::MAX] {
            assert_eq!(digest_usize(v), digest_u64(v as u64), "usize {v} must digest as u64");
        }
        // Pinned: FNV-1a 64 over eight zero bytes / 0x01 then seven zero
        // bytes (little-endian u64), computed once and frozen.
        assert_eq!(digest_usize(0), digest_u64(0));
        let mut fp = Fingerprint::new();
        fp.write_bytes(&0u64.to_le_bytes());
        assert_eq!(digest_usize(0), fp.finish());
        let mut fp = Fingerprint::new();
        fp.write_bytes(&1u64.to_le_bytes());
        assert_eq!(digest_usize(1), fp.finish());
    }
}
