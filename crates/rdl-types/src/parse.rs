//! Parser for RDL/CompRDL type annotation strings.
//!
//! This understands the textual signature language the paper writes
//! annotations in, e.g.
//!
//! ```text
//! (String, String) -> %bool
//! (t<:Symbol) -> «if t.is_a?(Singleton) then ... end»
//! («schema_type(tself)») -> Boolean
//! () -> { info: Array<String>, title: String }
//! (k) -> v
//! () { (a) -> b } -> Array<b>
//! ```
//!
//! Comp-type segments are delimited by `«` and `»` (the ASCII spellings
//! `<<<` and `>>>` are also accepted) and contain Ruby-subset expressions
//! parsed with [`ruby_syntax`].  A comp segment may be followed by
//! `/ Type` giving the static bound used in plain-RDL mode, mirroring the
//! `(a<:e1/A1) → e2/A2` form of λC.

use crate::sig::{CompSpec, MethodSig, ParamSig, TypeExpr};
use crate::ty::{HashKey, SingVal, Type};
use std::fmt;

/// An error produced while parsing an annotation string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigParseError {
    /// Description of what went wrong.
    pub message: String,
    /// Character offset in the annotation string.
    pub offset: usize,
}

impl SigParseError {
    /// The offset rendered as a one-character [`diagnostics::Span`] into the
    /// annotation string (annotations are single-line).
    pub fn span(&self) -> diagnostics::Span {
        diagnostics::Span::new(self.offset, self.offset + 1, 1)
    }
}

impl fmt::Display for SigParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "annotation parse error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SigParseError {}

impl From<SigParseError> for diagnostics::Diagnostic {
    fn from(e: SigParseError) -> Self {
        diagnostics::Diagnostic::error("SIG0001", e.message.clone())
            .with_label(e.span(), "in this annotation")
            .with_note("the span is relative to the annotation string, not the Ruby source")
    }
}

type SResult<T> = Result<T, SigParseError>;

/// Parses a method signature annotation such as `"(String) -> %bool"`.
///
/// # Errors
///
/// Returns a [`SigParseError`] if the annotation is malformed.
///
/// # Examples
///
/// ```
/// let sig = rdl_types::parse_method_sig("(String, ?Integer) -> Array<String>").unwrap();
/// assert_eq!(sig.params.len(), 2);
/// assert_eq!(sig.required_arity(), 1);
/// ```
pub fn parse_method_sig(src: &str) -> SResult<MethodSig> {
    let mut p = SigParser::new(src);
    let sig = p.parse_sig()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing characters after signature"));
    }
    Ok(sig)
}

/// Parses a single type annotation such as `"Array<String>"`.
///
/// # Errors
///
/// Returns a [`SigParseError`] if the annotation is malformed.
///
/// # Examples
///
/// ```
/// use rdl_types::TypeExpr;
/// let t = rdl_types::parse_type_expr("Integer or String").unwrap();
/// assert!(matches!(t, TypeExpr::Union(_)));
/// ```
pub fn parse_type_expr(src: &str) -> SResult<TypeExpr> {
    let mut p = SigParser::new(src);
    let t = p.parse_union()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing characters after type"));
    }
    Ok(t)
}

struct SigParser {
    chars: Vec<char>,
    pos: usize,
}

impl SigParser {
    fn new(src: &str) -> Self {
        SigParser { chars: src.chars().collect(), pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.chars.get(self.pos + n).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn error(&self, message: &str) -> SigParseError {
        SigParseError { message: message.to_string(), offset: self.pos }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> SResult<()> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.error(&format!("expected `{c}`")))
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        self.skip_ws();
        let want: Vec<char> = s.chars().collect();
        if self.chars[self.pos.min(self.chars.len())..].starts_with(&want) {
            self.pos += want.len();
            true
        } else {
            false
        }
    }

    fn parse_word(&mut self) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '?' || c == '!' {
                out.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        out
    }

    // ---- signatures -----------------------------------------------------

    fn parse_sig(&mut self) -> SResult<MethodSig> {
        let source: String = self.chars.iter().collect();
        self.skip_ws();
        self.expect('(')?;
        let mut params = Vec::new();
        self.skip_ws();
        if self.peek() != Some(')') {
            loop {
                params.push(self.parse_param()?);
                self.skip_ws();
                if !self.eat(',') {
                    break;
                }
            }
        }
        self.expect(')')?;
        // Optional block signature `{ (...) -> ... }`.
        self.skip_ws();
        let block = if self.peek() == Some('{') && self.block_follows() {
            self.expect('{')?;
            let inner = self.parse_sig()?;
            self.expect('}')?;
            Some(Box::new(inner))
        } else {
            None
        };
        // Arrow: `->` or `→`.
        self.skip_ws();
        if !self.eat_str("->") && !self.eat_str("→") {
            return Err(self.error("expected `->` in method signature"));
        }
        let ret = self.parse_union()?;
        Ok(MethodSig {
            params,
            ret,
            block,
            term: Default::default(),
            purity: Default::default(),
            source,
            typecheck_label: None,
        })
    }

    /// Distinguishes a block signature `{ (..) -> .. }` from a finite hash
    /// return type by looking for `(` as the first non-space char inside.
    fn block_follows(&self) -> bool {
        let mut i = self.pos + 1;
        while let Some(c) = self.chars.get(i) {
            if c.is_whitespace() {
                i += 1;
            } else {
                return *c == '(';
            }
        }
        false
    }

    fn parse_param(&mut self) -> SResult<ParamSig> {
        self.skip_ws();
        // `binder <: type`
        if matches!(self.peek(), Some(c) if c.is_lowercase() || c == '_') {
            // Look ahead for `<:` after the identifier.
            let save = self.pos;
            let word = self.parse_word();
            self.skip_ws();
            if self.peek() == Some('<') && self.peek_at(1) == Some(':') {
                self.pos += 2;
                let ty = self.parse_union()?;
                return Ok(ParamSig { binder: Some(word), ty });
            }
            self.pos = save;
        }
        let ty = self.parse_union()?;
        Ok(ParamSig { binder: None, ty })
    }

    // ---- types ----------------------------------------------------------

    fn parse_union(&mut self) -> SResult<TypeExpr> {
        let mut parts = vec![self.parse_postfix_type()?];
        loop {
            let save = self.pos;
            self.skip_ws();
            let word_start = self.pos;
            if self.peek() == Some('o') && self.peek_at(1) == Some('r') {
                self.pos += 2;
                // make sure `or` is a standalone word
                if matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
                    self.pos = save;
                    break;
                }
                parts.push(self.parse_postfix_type()?);
            } else {
                self.pos = word_start.min(save.max(word_start));
                self.pos = save;
                break;
            }
        }
        if parts.len() == 1 {
            Ok(parts.pop().expect("non-empty"))
        } else {
            Ok(TypeExpr::Union(parts))
        }
    }

    fn parse_postfix_type(&mut self) -> SResult<TypeExpr> {
        let t = self.parse_primary_type()?;
        Ok(t)
    }

    fn parse_primary_type(&mut self) -> SResult<TypeExpr> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.error("expected a type")),
            Some('«') => {
                self.bump();
                self.parse_comp('»')
            }
            Some('<') if self.peek_at(1) == Some('<') && self.peek_at(2) == Some('<') => {
                self.pos += 3;
                self.parse_comp_ascii()
            }
            Some('?') => {
                self.bump();
                let t = self.parse_primary_type()?;
                Ok(TypeExpr::Optional(Box::new(t)))
            }
            Some('*') => {
                self.bump();
                let t = self.parse_primary_type()?;
                Ok(TypeExpr::Vararg(Box::new(t)))
            }
            Some('%') => {
                self.bump();
                let word = self.parse_word();
                match word.as_str() {
                    "any" => Ok(TypeExpr::Simple(Type::Top)),
                    "bot" => Ok(TypeExpr::Simple(Type::Bot)),
                    "bool" => Ok(TypeExpr::Simple(Type::Bool)),
                    "dyn" => Ok(TypeExpr::Simple(Type::Dynamic)),
                    other => Err(self.error(&format!("unknown special type `%{other}`"))),
                }
            }
            Some(':') => {
                self.bump();
                let word = self.parse_word();
                if word.is_empty() {
                    return Err(self.error("expected symbol name after `:`"));
                }
                Ok(TypeExpr::Simple(Type::sym(word)))
            }
            // `${User}` — the singleton type of the class object `User`.
            Some('$') if self.peek_at(1) == Some('{') => {
                self.pos += 2;
                let name = self.parse_word();
                if name.is_empty() {
                    return Err(self.error("expected class name in `${...}`"));
                }
                self.expect('}')?;
                Ok(TypeExpr::Simple(Type::class_of(name)))
            }
            Some('"') | Some('\'') => {
                let quote = self.bump().expect("peeked");
                let mut s = String::new();
                loop {
                    match self.bump() {
                        None => return Err(self.error("unterminated string in annotation")),
                        Some(c) if c == quote => break,
                        Some(c) => s.push(c),
                    }
                }
                Ok(TypeExpr::ConstString(s))
            }
            Some('[') => {
                self.bump();
                let mut elems = Vec::new();
                self.skip_ws();
                if self.peek() != Some(']') {
                    loop {
                        elems.push(self.parse_union()?);
                        if !self.eat(',') {
                            break;
                        }
                    }
                }
                self.expect(']')?;
                Ok(TypeExpr::Tuple(elems))
            }
            Some('{') => {
                self.bump();
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() != Some('}') {
                    loop {
                        self.skip_ws();
                        let key = self.parse_hash_key()?;
                        let value = self.parse_union()?;
                        entries.push((key, value));
                        if !self.eat(',') {
                            break;
                        }
                    }
                }
                self.expect('}')?;
                Ok(TypeExpr::FiniteHash(entries))
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let mut text = String::new();
                if c == '-' {
                    text.push(c);
                    self.bump();
                }
                while matches!(self.peek(), Some(d) if d.is_ascii_digit() || d == '.') {
                    text.push(self.bump().expect("peeked"));
                }
                if text.contains('.') {
                    let f: f64 =
                        text.parse().map_err(|_| self.error(&format!("invalid float `{text}`")))?;
                    Ok(TypeExpr::Simple(Type::Singleton(SingVal::float(f))))
                } else {
                    let i: i64 = text
                        .parse()
                        .map_err(|_| self.error(&format!("invalid integer `{text}`")))?;
                    Ok(TypeExpr::Simple(Type::int(i)))
                }
            }
            Some(c) if c.is_uppercase() => {
                let mut name = self.parse_word();
                while self.peek() == Some(':') && self.peek_at(1) == Some(':') {
                    self.pos += 2;
                    name.push_str("::");
                    name.push_str(&self.parse_word());
                }
                // Generic arguments.
                if self.peek() == Some('<') {
                    self.bump();
                    let mut args = Vec::new();
                    loop {
                        args.push(self.parse_union()?);
                        if !self.eat(',') {
                            break;
                        }
                    }
                    self.skip_ws();
                    self.expect('>')?;
                    return Ok(TypeExpr::Generic(name, args));
                }
                match name.as_str() {
                    "Boolean" => Ok(TypeExpr::Simple(Type::Bool)),
                    "TrueClass" => Ok(TypeExpr::Simple(Type::Singleton(SingVal::True))),
                    "FalseClass" => Ok(TypeExpr::Simple(Type::Singleton(SingVal::False))),
                    "NilClass" => Ok(TypeExpr::Simple(Type::nil())),
                    _ => Ok(TypeExpr::nominal(&name)),
                }
            }
            Some(c) if c.is_lowercase() || c == '_' => {
                let word = self.parse_word();
                match word.as_str() {
                    "nil" => Ok(TypeExpr::Simple(Type::nil())),
                    "true" => Ok(TypeExpr::Simple(Type::Singleton(SingVal::True))),
                    "false" => Ok(TypeExpr::Simple(Type::Singleton(SingVal::False))),
                    "self" => Ok(TypeExpr::Simple(Type::Var("self".to_string()))),
                    _ => Ok(TypeExpr::Simple(Type::Var(word))),
                }
            }
            Some(other) => Err(self.error(&format!("unexpected character `{other}` in type"))),
        }
    }

    fn parse_hash_key(&mut self) -> SResult<HashKey> {
        self.skip_ws();
        match self.peek() {
            Some('"') | Some('\'') => {
                let quote = self.bump().expect("peeked");
                let mut s = String::new();
                loop {
                    match self.bump() {
                        None => return Err(self.error("unterminated string key")),
                        Some(c) if c == quote => break,
                        Some(c) => s.push(c),
                    }
                }
                self.skip_ws();
                if !self.eat_str("=>") {
                    return Err(self.error("expected `=>` after string key"));
                }
                Ok(HashKey::Str(s))
            }
            Some(c) if c.is_ascii_digit() => {
                let mut text = String::new();
                while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                    text.push(self.bump().expect("peeked"));
                }
                self.skip_ws();
                if !self.eat_str("=>") {
                    return Err(self.error("expected `=>` after integer key"));
                }
                Ok(HashKey::Int(text.parse().map_err(|_| self.error("invalid integer key"))?))
            }
            _ => {
                let word = self.parse_word();
                if word.is_empty() {
                    return Err(self.error("expected hash key"));
                }
                self.skip_ws();
                self.expect(':')?;
                Ok(HashKey::Sym(word))
            }
        }
    }

    fn parse_comp(&mut self, close: char) -> SResult<TypeExpr> {
        let mut depth = 1usize;
        let mut body = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated «…» comp type")),
                Some('«') => {
                    depth += 1;
                    body.push('«');
                }
                Some(c) if c == close => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    body.push(c);
                }
                Some(c) => body.push(c),
            }
        }
        self.finish_comp(body)
    }

    fn parse_comp_ascii(&mut self) -> SResult<TypeExpr> {
        // `<<< ruby-code >>>`
        let mut body = String::new();
        loop {
            if self.peek() == Some('>')
                && self.peek_at(1) == Some('>')
                && self.peek_at(2) == Some('>')
            {
                self.pos += 3;
                break;
            }
            match self.bump() {
                None => return Err(self.error("unterminated <<<…>>> comp type")),
                Some(c) => body.push(c),
            }
        }
        self.finish_comp(body)
    }

    fn finish_comp(&mut self, body: String) -> SResult<TypeExpr> {
        let source = body.trim().to_string();
        let expr = ruby_syntax::parse_expr(&source).map_err(|e| SigParseError {
            message: format!("invalid type-level expression: {e}"),
            offset: self.pos,
        })?;
        // Optional `/ Bound` static bound after the comp segment.
        let bound = {
            let save = self.pos;
            if self.eat('/') {
                Box::new(self.parse_primary_type()?)
            } else {
                self.pos = save;
                Box::new(TypeExpr::Simple(Type::Top))
            }
        };
        Ok(TypeExpr::Comp(CompSpec { expr, source, bound }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TypeStore;

    #[test]
    fn parses_basic_signature() {
        let sig = parse_method_sig("(String, String) -> %bool").unwrap();
        assert_eq!(sig.params.len(), 2);
        assert_eq!(sig.ret, TypeExpr::Simple(Type::Bool));
        assert!(!sig.is_comp());
    }

    #[test]
    fn parses_unicode_arrow_and_boolean() {
        let sig = parse_method_sig("(Integer) → Boolean").unwrap();
        assert_eq!(sig.ret, TypeExpr::Simple(Type::Bool));
    }

    #[test]
    fn parses_comp_types_with_binder() {
        let sig = parse_method_sig(
            "(t<:Symbol) -> «if t.is_a?(Singleton) then schema_type(t) else Nominal.new(Table) end»",
        )
        .unwrap();
        assert_eq!(sig.params.len(), 1);
        assert_eq!(sig.params[0].binder.as_deref(), Some("t"));
        assert!(sig.is_comp());
        match &sig.ret {
            TypeExpr::Comp(spec) => assert!(spec.source.contains("is_a?")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_comp_argument_with_bound() {
        let sig =
            parse_method_sig("(«schema_type(tself)» / Hash<Symbol, Object>) -> Boolean").unwrap();
        match &sig.params[0].ty {
            TypeExpr::Comp(spec) => {
                assert_eq!(spec.source, "schema_type(tself)");
                assert_eq!(
                    *spec.bound,
                    TypeExpr::Generic(
                        "Hash".into(),
                        vec![TypeExpr::nominal("Symbol"), TypeExpr::nominal("Object")]
                    )
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_ascii_comp_delimiters() {
        let sig = parse_method_sig("(<<< schema_type(tself) >>>) -> Boolean").unwrap();
        assert!(sig.is_comp());
    }

    #[test]
    fn parses_finite_hash_and_tuple_types() {
        let sig = parse_method_sig("() -> { info: Array<String>, title: String }").unwrap();
        let mut store = TypeStore::new();
        let t = sig.ret.instantiate(&mut store);
        assert!(matches!(t, Type::FiniteHash(_)));

        let t = parse_type_expr("[Integer, String]").unwrap();
        assert!(matches!(t, TypeExpr::Tuple(ref ts) if ts.len() == 2));
    }

    #[test]
    fn parses_unions_optionals_and_varargs() {
        let sig = parse_method_sig("(?Integer, *String) -> Integer or String or nil").unwrap();
        assert!(sig.params[0].is_optional());
        assert!(sig.params[1].is_vararg());
        assert!(matches!(sig.ret, TypeExpr::Union(ref ts) if ts.len() == 3));
        assert!(sig.accepts_arity(0));
        assert!(sig.accepts_arity(7));
    }

    #[test]
    fn parses_type_variables_and_generics() {
        let sig = parse_method_sig("(k) -> v").unwrap();
        assert_eq!(sig.params[0].ty, TypeExpr::Simple(Type::Var("k".into())));
        assert_eq!(sig.ret, TypeExpr::Simple(Type::Var("v".into())));

        let t = parse_type_expr("Hash<Symbol, Array<String>>").unwrap();
        let mut store = TypeStore::new();
        assert_eq!(
            t.instantiate(&mut store),
            Type::hash(Type::nominal("Symbol"), Type::array(Type::nominal("String")))
        );
    }

    #[test]
    fn parses_block_signatures() {
        let sig = parse_method_sig("() { (a) -> b } -> Array<b>").unwrap();
        let block = sig.block.as_ref().expect("block sig");
        assert_eq!(block.params.len(), 1);
        assert_eq!(block.ret, TypeExpr::Simple(Type::Var("b".into())));
    }

    #[test]
    fn parses_singletons_and_const_strings() {
        assert_eq!(parse_type_expr(":model").unwrap(), TypeExpr::Simple(Type::sym("model")));
        assert_eq!(parse_type_expr("42").unwrap(), TypeExpr::Simple(Type::int(42)));
        assert_eq!(parse_type_expr("nil").unwrap(), TypeExpr::Simple(Type::nil()));
        assert_eq!(
            parse_type_expr("'SELECT 1'").unwrap(),
            TypeExpr::ConstString("SELECT 1".into())
        );
        assert_eq!(
            parse_type_expr("3.5").unwrap(),
            TypeExpr::Simple(Type::Singleton(SingVal::float(3.5)))
        );
    }

    #[test]
    fn parses_table_type() {
        let t = parse_type_expr("Table<{ id: Integer, username: String }>").unwrap();
        let mut store = TypeStore::new();
        let ty = t.instantiate(&mut store);
        match ty {
            Type::Generic { base, args } => {
                assert_eq!(base, "Table");
                assert!(matches!(args[0], Type::FiniteHash(_)));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn parses_string_hash_keys() {
        let t = parse_type_expr("{ 'a' => Integer, 2 => String }").unwrap();
        match t {
            TypeExpr::FiniteHash(entries) => {
                assert_eq!(entries[0].0, HashKey::Str("a".into()));
                assert_eq!(entries[1].0, HashKey::Int(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_annotations() {
        assert!(parse_method_sig("String -> Integer").is_err());
        assert!(parse_method_sig("(String)").is_err());
        assert!(parse_type_expr("%frob").is_err());
        assert!(parse_type_expr("Array<String").is_err());
        assert!(parse_type_expr("«1 +»").is_err());
        assert!(parse_type_expr("").is_err());
    }

    #[test]
    fn error_display_mentions_offset() {
        let err = parse_type_expr("%frob").unwrap_err();
        assert!(err.to_string().contains("annotation parse error"));
    }
}
