//! Method signatures, comp types, effects and the annotation table.
//!
//! A CompRDL method annotation such as
//!
//! ```text
//! type Table, :joins, "(t<:Symbol) -> «if t.is_a?(Singleton) then ... end»"
//! ```
//!
//! is represented as a [`MethodSig`] whose parameter and return positions
//! hold [`TypeExpr`]s: either ordinary (static) types or *comp types* —
//! Ruby-subset expressions evaluated during type checking (paper §2).
//!
//! Because tuple / finite-hash / const-string types are store-backed (see
//! [`TypeStore`]), signatures store a structural [`TypeExpr`] and are
//! *instantiated* into a concrete [`Type`] against a particular store when
//! they are used.

use crate::class::ClassTable;
use crate::store::TypeStore;
use crate::ty::{HashKey, Type};
use ruby_syntax::Expr;
use std::collections::HashMap;
use std::fmt;

/// Termination effect of a method (paper §4, Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TermEffect {
    /// `:+` — the method always terminates.
    Terminates,
    /// `:-` — the method may diverge.
    #[default]
    MayDiverge,
    /// `:blockdep` — an iterator that terminates iff its block terminates
    /// and is pure.
    BlockDep,
}

/// Purity effect of a method (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PurityEffect {
    /// `:+` — the method writes no instance/class/global state and calls
    /// only pure methods.
    Pure,
    /// `:-` — the method may mutate state.
    #[default]
    Impure,
}

/// A type-level computation: a Ruby-subset expression evaluated during type
/// checking to produce a type.
#[derive(Debug, Clone, PartialEq)]
pub struct CompSpec {
    /// The parsed type-level expression.
    pub expr: Expr,
    /// The original source text between `«` and `»`.
    pub source: String,
    /// A static fallback bound used when comp-type evaluation is disabled
    /// (plain-RDL mode) and by λC-style checking of the comp type itself.
    pub bound: Box<TypeExpr>,
}

/// A structural type expression as written in an annotation.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExpr {
    /// An ordinary type that needs no store allocation.
    Simple(Type),
    /// A generic instantiation whose arguments may themselves need
    /// instantiation, e.g. `Table<{id: Integer}>`.
    Generic(String, Vec<TypeExpr>),
    /// A union of type expressions.
    Union(Vec<TypeExpr>),
    /// An optional parameter type `?T`.
    Optional(Box<TypeExpr>),
    /// A vararg parameter type `*T`.
    Vararg(Box<TypeExpr>),
    /// A tuple type `[T1, ..., Tn]` (instantiates to a store-backed tuple).
    Tuple(Vec<TypeExpr>),
    /// A finite hash type `{ a: T1, b: T2 }` (store-backed).
    FiniteHash(Vec<(HashKey, TypeExpr)>),
    /// A const string type with a known literal value (store-backed).
    ConstString(String),
    /// A type-level computation `«expr»`.
    Comp(CompSpec),
}

impl TypeExpr {
    /// A simple nominal type expression.
    pub fn nominal(name: &str) -> TypeExpr {
        TypeExpr::Simple(Type::nominal(name))
    }

    /// True if this expression (or any nested part of it) is a comp type.
    pub fn has_comp(&self) -> bool {
        match self {
            TypeExpr::Comp(_) => true,
            TypeExpr::Generic(_, args) | TypeExpr::Union(args) | TypeExpr::Tuple(args) => {
                args.iter().any(TypeExpr::has_comp)
            }
            TypeExpr::Optional(t) | TypeExpr::Vararg(t) => t.has_comp(),
            TypeExpr::FiniteHash(entries) => entries.iter().any(|(_, t)| t.has_comp()),
            _ => false,
        }
    }

    /// Instantiates the expression into a concrete [`Type`], allocating
    /// store entries for tuples, finite hashes and const strings.  Comp
    /// types instantiate to their static *bound* (callers that want to run
    /// the computation do so via the CompRDL type-level evaluator instead).
    pub fn instantiate(&self, store: &mut TypeStore) -> Type {
        match self {
            TypeExpr::Simple(t) => t.clone(),
            TypeExpr::Generic(base, args) => Type::Generic {
                base: base.clone(),
                args: args.iter().map(|a| a.instantiate(store)).collect(),
            },
            TypeExpr::Union(ts) => Type::union(ts.iter().map(|t| t.instantiate(store))),
            TypeExpr::Optional(t) => Type::Optional(Box::new(t.instantiate(store))),
            TypeExpr::Vararg(t) => Type::Vararg(Box::new(t.instantiate(store))),
            TypeExpr::Tuple(ts) => {
                let elems = ts.iter().map(|t| t.instantiate(store)).collect();
                store.new_tuple(elems)
            }
            TypeExpr::FiniteHash(entries) => {
                let entries =
                    entries.iter().map(|(k, t)| (k.clone(), t.instantiate(store))).collect();
                store.new_finite_hash(entries)
            }
            TypeExpr::ConstString(s) => store.new_const_string(s.clone()),
            TypeExpr::Comp(spec) => spec.bound.instantiate(store),
        }
    }
}

impl fmt::Display for TypeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeExpr::Simple(t) => write!(f, "{t}"),
            TypeExpr::Generic(base, args) => {
                write!(f, "{base}<")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ">")
            }
            TypeExpr::Union(ts) => {
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
            TypeExpr::Optional(t) => write!(f, "?{t}"),
            TypeExpr::Vararg(t) => write!(f, "*{t}"),
            TypeExpr::Tuple(ts) => {
                write!(f, "[")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "]")
            }
            TypeExpr::FiniteHash(entries) => {
                write!(f, "{{ ")?;
                for (i, (k, t)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} {t}")?;
                }
                write!(f, " }}")
            }
            TypeExpr::ConstString(s) => write!(f, "{s:?}"),
            TypeExpr::Comp(spec) => write!(f, "«{}»", spec.source),
        }
    }
}

/// A single parameter of a method signature.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSig {
    /// The binder name (`t` in `t<:Symbol`) that the return comp type may
    /// refer to; `None` when the parameter is unnamed.
    pub binder: Option<String>,
    /// The parameter's type expression.
    pub ty: TypeExpr,
}

impl ParamSig {
    /// An unnamed parameter with the given type expression.
    pub fn unnamed(ty: TypeExpr) -> Self {
        ParamSig { binder: None, ty }
    }

    /// True if the parameter is optional (`?T`).
    pub fn is_optional(&self) -> bool {
        matches!(self.ty, TypeExpr::Optional(_))
    }

    /// True if the parameter is a vararg (`*T`).
    pub fn is_vararg(&self) -> bool {
        matches!(self.ty, TypeExpr::Vararg(_))
    }
}

/// Whether a signature describes an instance method or a class (singleton)
/// method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// An ordinary instance method (`A#m`).
    Instance,
    /// A class method (`A.m`).
    Singleton,
}

/// A full method type signature.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodSig {
    /// Parameter signatures in positional order.
    pub params: Vec<ParamSig>,
    /// The return type expression.
    pub ret: TypeExpr,
    /// The block parameter's signature, if the method takes a block.
    pub block: Option<Box<MethodSig>>,
    /// Termination effect annotation.
    pub term: TermEffect,
    /// Purity effect annotation.
    pub purity: PurityEffect,
    /// The original annotation source string (for error messages and LoC
    /// accounting).
    pub source: String,
    /// Label controlling when the method body itself is statically checked
    /// (mirrors RDL's `typecheck:` argument); `None` means the body is
    /// trusted and calls are dynamically checked instead.
    pub typecheck_label: Option<String>,
}

impl MethodSig {
    /// A signature with only static types and default effects.
    pub fn simple(params: Vec<TypeExpr>, ret: TypeExpr) -> Self {
        MethodSig {
            params: params.into_iter().map(ParamSig::unnamed).collect(),
            ret,
            block: None,
            term: TermEffect::default(),
            purity: PurityEffect::default(),
            source: String::new(),
            typecheck_label: None,
        }
    }

    /// True if any position of the signature uses a comp type.
    pub fn is_comp(&self) -> bool {
        self.ret.has_comp() || self.params.iter().any(|p| p.ty.has_comp())
    }

    /// Number of required (non-optional, non-vararg) parameters.
    pub fn required_arity(&self) -> usize {
        self.params.iter().filter(|p| !p.is_optional() && !p.is_vararg()).count()
    }

    /// True if the signature accepts a call with `n` positional arguments.
    pub fn accepts_arity(&self, n: usize) -> bool {
        let required = self.required_arity();
        let has_vararg = self.params.iter().any(|p| p.is_vararg());
        n >= required && (has_vararg || n <= self.params.len())
    }

    /// Sets the termination effect (builder style).
    pub fn with_term(mut self, term: TermEffect) -> Self {
        self.term = term;
        self
    }

    /// Sets the purity effect (builder style).
    pub fn with_purity(mut self, purity: PurityEffect) -> Self {
        self.purity = purity;
        self
    }

    /// Sets the typecheck label (builder style).
    pub fn with_label(mut self, label: &str) -> Self {
        self.typecheck_label = Some(label.to_string());
        self
    }
}

/// The global annotation table: method signatures plus variable type
/// annotations, mirroring RDL's global tables populated by `type`, `var_type`
/// and `global_type` calls.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnnotationTable {
    methods: HashMap<(String, MethodKind, String), MethodSig>,
    ivars: HashMap<(String, String), TypeExpr>,
    gvars: HashMap<String, TypeExpr>,
}

impl AnnotationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        AnnotationTable::default()
    }

    /// Registers an instance method signature (`A#m`).
    pub fn add_instance(&mut self, class: &str, method: &str, sig: MethodSig) {
        self.methods.insert((class.to_string(), MethodKind::Instance, method.to_string()), sig);
    }

    /// Registers a class method signature (`A.m`).
    pub fn add_singleton(&mut self, class: &str, method: &str, sig: MethodSig) {
        self.methods.insert((class.to_string(), MethodKind::Singleton, method.to_string()), sig);
    }

    /// Registers an instance variable type (`var_type :@x, "T"`).
    pub fn add_ivar(&mut self, class: &str, name: &str, ty: TypeExpr) {
        self.ivars.insert((class.to_string(), name.to_string()), ty);
    }

    /// Registers a global variable type.
    pub fn add_gvar(&mut self, name: &str, ty: TypeExpr) {
        self.gvars.insert(name.to_string(), ty);
    }

    /// Looks up a method signature declared *exactly* on `class`.
    pub fn get_exact(&self, class: &str, kind: MethodKind, method: &str) -> Option<&MethodSig> {
        self.methods.get(&(class.to_string(), kind, method.to_string()))
    }

    /// Looks up a method signature on `class` or any of its ancestors.
    pub fn lookup(
        &self,
        classes: &ClassTable,
        class: &str,
        kind: MethodKind,
        method: &str,
    ) -> Option<(String, &MethodSig)> {
        for anc in classes.ancestors(class) {
            if let Some(sig) = self.get_exact(&anc, kind, method) {
                return Some((anc, sig));
            }
        }
        None
    }

    /// Looks up an instance variable type.
    pub fn ivar(&self, class: &str, name: &str) -> Option<&TypeExpr> {
        self.ivars.get(&(class.to_string(), name.to_string()))
    }

    /// Looks up a global variable type.
    pub fn gvar(&self, name: &str) -> Option<&TypeExpr> {
        self.gvars.get(name)
    }

    /// Total number of method signatures registered.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Number of method signatures registered for a specific class.
    pub fn method_count_for(&self, class: &str) -> usize {
        self.methods.keys().filter(|(c, _, _)| c == class).count()
    }

    /// Number of registered signatures for a class that use comp types.
    pub fn comp_count_for(&self, class: &str) -> usize {
        self.methods.iter().filter(|((c, _, _), sig)| c == class && sig.is_comp()).count()
    }

    /// Iterates over every registered method signature.
    pub fn iter(&self) -> impl Iterator<Item = (&(String, MethodKind, String), &MethodSig)> {
        self.methods.iter()
    }

    /// Merges all annotations from `other` into `self` (later registrations
    /// win).
    pub fn merge(&mut self, other: &AnnotationTable) {
        for (k, v) in &other.methods {
            self.methods.insert(k.clone(), v.clone());
        }
        for (k, v) in &other.ivars {
            self.ivars.insert(k.clone(), v.clone());
        }
        for (k, v) in &other.gvars {
            self.gvars.insert(k.clone(), v.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig_returning(ret: TypeExpr) -> MethodSig {
        MethodSig::simple(vec![], ret)
    }

    #[test]
    fn instantiation_allocates_store_entries() {
        let mut store = TypeStore::new();
        let te = TypeExpr::FiniteHash(vec![
            (
                HashKey::Sym("info".into()),
                TypeExpr::Generic("Array".into(), vec![TypeExpr::nominal("String")]),
            ),
            (HashKey::Sym("title".into()), TypeExpr::nominal("String")),
        ]);
        let t = te.instantiate(&mut store);
        assert!(matches!(t, Type::FiniteHash(_)));
        assert_eq!(store.len(), 1);
        // Instantiating twice yields distinct store objects.
        let t2 = te.instantiate(&mut store);
        assert_ne!(t, t2);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn comp_detection() {
        let comp = TypeExpr::Comp(CompSpec {
            expr: ruby_syntax::parse_expr("schema_type(tself)").unwrap(),
            source: "schema_type(tself)".into(),
            bound: Box::new(TypeExpr::nominal("Object")),
        });
        assert!(comp.has_comp());
        let sig = MethodSig::simple(vec![comp], TypeExpr::nominal("Boolean"));
        assert!(sig.is_comp());
        let plain =
            MethodSig::simple(vec![TypeExpr::nominal("String")], TypeExpr::nominal("String"));
        assert!(!plain.is_comp());
    }

    #[test]
    fn arity_with_optionals_and_varargs() {
        let sig = MethodSig {
            params: vec![
                ParamSig::unnamed(TypeExpr::nominal("String")),
                ParamSig::unnamed(TypeExpr::Optional(Box::new(TypeExpr::nominal("Integer")))),
            ],
            ..MethodSig::simple(vec![], TypeExpr::nominal("String"))
        };
        assert_eq!(sig.required_arity(), 1);
        assert!(sig.accepts_arity(1));
        assert!(sig.accepts_arity(2));
        assert!(!sig.accepts_arity(3));
        assert!(!sig.accepts_arity(0));

        let var = MethodSig {
            params: vec![ParamSig::unnamed(TypeExpr::Vararg(Box::new(TypeExpr::nominal(
                "Object",
            ))))],
            ..MethodSig::simple(vec![], TypeExpr::nominal("Object"))
        };
        assert!(var.accepts_arity(0));
        assert!(var.accepts_arity(5));
    }

    #[test]
    fn annotation_lookup_walks_ancestors() {
        let mut classes = ClassTable::with_builtins();
        classes.add_model_class("User", "ActiveRecord::Base");
        let mut table = AnnotationTable::new();
        table.add_singleton(
            "ActiveRecord::Base",
            "exists?",
            sig_returning(TypeExpr::Simple(Type::Bool)),
        );
        table.add_instance("Array", "first", sig_returning(TypeExpr::nominal("Object")));

        let (owner, _) = table
            .lookup(&classes, "User", MethodKind::Singleton, "exists?")
            .expect("inherited signature");
        assert_eq!(owner, "ActiveRecord::Base");
        assert!(table.lookup(&classes, "User", MethodKind::Instance, "exists?").is_none());
        assert!(table.lookup(&classes, "Array", MethodKind::Instance, "first").is_some());
    }

    #[test]
    fn counting_and_merge() {
        let mut a = AnnotationTable::new();
        a.add_instance("Hash", "[]", sig_returning(TypeExpr::nominal("Object")));
        let mut b = AnnotationTable::new();
        b.add_instance("Hash", "keys", sig_returning(TypeExpr::nominal("Array")));
        b.add_gvar("$schema", TypeExpr::nominal("Hash"));
        a.merge(&b);
        assert_eq!(a.method_count(), 2);
        assert_eq!(a.method_count_for("Hash"), 2);
        assert!(a.gvar("$schema").is_some());
    }
}
