//! The class hierarchy.
//!
//! RDL tracks a class table mapping class names to their superclasses; the
//! subtype relation on nominal types follows the subclass relation, with
//! `Object` at the top (the paper's λC similarly assumes the classes form a
//! lattice with `Obj` as top).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocates a process-globally unique class-table stamp.  Stamps are
/// never reused — not even across independently built tables — so a
/// `(sub, sup, stamp)` subtype verdict cached by one table can never be
/// misread as valid for another table that happens to share a counter
/// value.
fn fresh_stamp() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Information recorded about a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassInfo {
    /// The superclass name (`None` only for `Object`).
    pub superclass: Option<String>,
    /// Generic type parameter names declared for the class (e.g. `Array`
    /// has `["a"]`, `Hash` has `["k", "v"]`).
    pub type_params: Vec<String>,
    /// Whether the class models a Rails `ActiveRecord` / `Sequel` model
    /// backed by a DB table.
    pub is_model: bool,
}

impl Default for ClassInfo {
    fn default() -> Self {
        ClassInfo { superclass: Some("Object".to_string()), type_params: vec![], is_model: false }
    }
}

/// The class hierarchy: class name → [`ClassInfo`].
#[derive(Debug, Clone)]
pub struct ClassTable {
    classes: BTreeMap<String, ClassInfo>,
    /// Identity stamp for subtype-verdict caching: globally unique,
    /// re-allocated on every mutation, so a stamp value pins one exact
    /// hierarchy for the life of the process.  (A clone keeps its
    /// source's stamp — same stamp, same content — and restamps itself on
    /// its first own mutation.)
    stamp: u64,
}

impl Default for ClassTable {
    fn default() -> Self {
        ClassTable { classes: BTreeMap::new(), stamp: fresh_stamp() }
    }
}

impl PartialEq for ClassTable {
    fn eq(&self, other: &Self) -> bool {
        // The stamp is a cache identity, not part of the hierarchy.
        self.classes == other.classes
    }
}

impl Eq for ClassTable {}

impl ClassTable {
    /// An empty class table containing only `Object`.
    pub fn new() -> Self {
        let mut ct = ClassTable::default();
        ct.classes.insert(
            "Object".to_string(),
            ClassInfo { superclass: None, type_params: vec![], is_model: false },
        );
        ct
    }

    /// This table's identity stamp.  Two lookups return the same stamp
    /// only if no mutation happened in between, and no two hierarchies
    /// ever share a stamp, so `(query, stamp)` keys are safe to cache
    /// globally.
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// A class table pre-populated with the Ruby core classes CompRDL's
    /// standard library annotations refer to.
    pub fn with_builtins() -> Self {
        let mut ct = ClassTable::new();
        for (name, superclass) in [
            ("BasicObject", "Object"),
            ("Module", "Object"),
            ("Class", "Module"),
            ("NilClass", "Object"),
            ("Boolean", "Object"),
            ("TrueClass", "Boolean"),
            ("FalseClass", "Boolean"),
            ("Comparable", "Object"),
            ("Numeric", "Object"),
            ("Integer", "Numeric"),
            ("Float", "Numeric"),
            ("String", "Comparable"),
            ("Symbol", "Object"),
            ("Regexp", "Object"),
            ("Range", "Object"),
            ("Proc", "Object"),
            ("Exception", "Object"),
            ("StandardError", "Exception"),
            ("ArgumentError", "StandardError"),
            ("TypeError", "StandardError"),
            ("RuntimeError", "StandardError"),
            ("IO", "Object"),
            ("Time", "Object"),
            ("Date", "Object"),
            ("JSON", "Object"),
            ("RDL", "Object"),
            ("Kernel", "Object"),
            ("Struct", "Object"),
            ("ActiveRecord", "Object"),
            ("ActiveRecord::Base", "Object"),
            ("ActiveRecord::Relation", "Object"),
            ("Sequel", "Object"),
            ("Sequel::Model", "Object"),
            ("Sequel::Dataset", "Object"),
        ] {
            ct.add_class(name, Some(superclass));
        }
        ct.add_generic_class("Array", Some("Object"), &["a"]);
        ct.add_generic_class("Hash", Some("Object"), &["k", "v"]);
        ct.add_generic_class("Table", Some("Object"), &["t"]);
        ct.add_generic_class("Enumerator", Some("Object"), &["a"]);
        ct
    }

    /// Adds (or replaces) a class.
    pub fn add_class(&mut self, name: &str, superclass: Option<&str>) {
        self.stamp = fresh_stamp();
        self.classes.insert(
            name.to_string(),
            ClassInfo {
                superclass: superclass.map(|s| s.to_string()),
                type_params: vec![],
                is_model: false,
            },
        );
    }

    /// Adds a class with generic type parameters.
    pub fn add_generic_class(&mut self, name: &str, superclass: Option<&str>, params: &[&str]) {
        self.stamp = fresh_stamp();
        self.classes.insert(
            name.to_string(),
            ClassInfo {
                superclass: superclass.map(|s| s.to_string()),
                type_params: params.iter().map(|p| p.to_string()).collect(),
                is_model: false,
            },
        );
    }

    /// Marks a class as a DB-backed model class.
    pub fn add_model_class(&mut self, name: &str, superclass: &str) {
        self.stamp = fresh_stamp();
        self.classes.insert(
            name.to_string(),
            ClassInfo {
                superclass: Some(superclass.to_string()),
                type_params: vec![],
                is_model: true,
            },
        );
    }

    /// Looks up a class.
    pub fn get(&self, name: &str) -> Option<&ClassInfo> {
        self.classes.get(name)
    }

    /// True if the class is known.
    pub fn contains(&self, name: &str) -> bool {
        self.classes.contains_key(name)
    }

    /// True if the class was registered as a DB model.
    pub fn is_model(&self, name: &str) -> bool {
        self.get(name).map(|c| c.is_model).unwrap_or(false)
    }

    /// All class names in the table.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.classes.keys().map(|s| s.as_str())
    }

    /// The superclass chain of `name`, starting with `name` itself and
    /// ending with `Object`.  Unknown classes get the chain `[name,
    /// "Object"]` so user code referencing unregistered classes still type
    /// checks against `Object`.
    pub fn ancestors(&self, name: &str) -> Vec<String> {
        let mut out = vec![name.to_string()];
        let mut current = name.to_string();
        let mut fuel = 64;
        while fuel > 0 {
            fuel -= 1;
            match self.classes.get(&current).and_then(|c| c.superclass.clone()) {
                Some(sup) => {
                    out.push(sup.clone());
                    current = sup;
                }
                None => break,
            }
        }
        if !self.classes.contains_key(name) && !out.contains(&"Object".to_string()) {
            out.push("Object".to_string());
        }
        out
    }

    /// True if `sub` is `sup` or a (transitive) subclass of it.
    pub fn is_subclass(&self, sub: &str, sup: &str) -> bool {
        if sup == "Object" || sub == sup {
            return true;
        }
        self.ancestors(sub).iter().any(|a| a == sup)
    }

    /// The nearest common ancestor of two classes.
    pub fn common_ancestor(&self, a: &str, b: &str) -> String {
        let bs = self.ancestors(b);
        for anc in self.ancestors(a) {
            if bs.contains(&anc) {
                return anc;
            }
        }
        "Object".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_have_expected_hierarchy() {
        let ct = ClassTable::with_builtins();
        assert!(ct.is_subclass("Integer", "Numeric"));
        assert!(ct.is_subclass("Integer", "Object"));
        assert!(ct.is_subclass("TrueClass", "Boolean"));
        assert!(!ct.is_subclass("String", "Numeric"));
        assert_eq!(ct.common_ancestor("Integer", "Float"), "Numeric");
        assert_eq!(ct.common_ancestor("Integer", "String"), "Object");
    }

    #[test]
    fn user_classes_and_models() {
        let mut ct = ClassTable::with_builtins();
        ct.add_model_class("User", "ActiveRecord::Base");
        assert!(ct.is_model("User"));
        assert!(ct.is_subclass("User", "ActiveRecord::Base"));
        assert!(!ct.is_model("String"));
    }

    #[test]
    fn unknown_classes_default_to_object() {
        let ct = ClassTable::with_builtins();
        assert!(ct.is_subclass("SomethingUnknown", "Object"));
        assert_eq!(ct.ancestors("SomethingUnknown"), vec!["SomethingUnknown", "Object"]);
    }

    #[test]
    fn generic_params_are_recorded() {
        let ct = ClassTable::with_builtins();
        assert_eq!(ct.get("Hash").unwrap().type_params, vec!["k", "v"]);
        assert_eq!(ct.get("Array").unwrap().type_params, vec!["a"]);
    }

    #[test]
    fn stamps_pin_one_hierarchy() {
        let mut a = ClassTable::with_builtins();
        let b = ClassTable::with_builtins();
        // Equal content, but distinct identities: verdicts cached for one
        // must not leak to the other, because either may mutate next.
        assert_eq!(a, b);
        assert_ne!(a.stamp(), b.stamp());
        let before = a.stamp();
        a.add_class("Widget", Some("Object"));
        assert_ne!(a.stamp(), before, "mutation must restamp");
        let clone = a.clone();
        assert_eq!(clone.stamp(), a.stamp(), "a clone shares content and stamp");
        a.add_model_class("User", "ActiveRecord::Base");
        assert_ne!(a.stamp(), clone.stamp(), "...until one of them mutates");
    }

    #[test]
    fn ancestors_terminate_on_cycles() {
        let mut ct = ClassTable::new();
        ct.add_class("A", Some("B"));
        ct.add_class("B", Some("A"));
        // Must not loop forever.
        let anc = ct.ancestors("A");
        assert!(anc.len() <= 66);
    }
}
