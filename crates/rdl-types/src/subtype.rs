//! Subtyping, least upper bounds, and constraint replay.
//!
//! Subtyping is the innermost loop of every check this system performs, so
//! [`Subtyper::is_subtype`] layers two fast paths over the structural
//! rules:
//!
//! 1. **Id short-circuit.**  Store-free operands are interned
//!    ([`crate::intern`]); hash-consing makes structural equality id
//!    equality, so `sub == sup` costs two integer compares instead of a
//!    tree walk.
//! 2. **Verdict cache.**  Non-equal store-free pairs consult a global,
//!    fixed-size seqlock slot table (the same lock-free read discipline as
//!    comprdl's runtime memo) keyed `(sub_id, sup_id, class-table stamp)`.
//!    The stamp ([`ClassTable::stamp`]) is globally unique and re-allocated
//!    on every hierarchy mutation, so stale verdicts die with their stamp
//!    and no invalidation traffic is needed.
//!
//! Store-backed operands (tuples, finite hashes, const strings — mutable,
//! per-store ids) always take the structural path: their meaning can change
//! under the cache's feet, and their ids alias across stores.
//! [`Subtyper::is_subtype_uncached`] bypasses both layers and is the oracle
//! the cached path is property-tested against (see `verdict_cache`'s
//! [`set_enabled`](verdict_cache::set_enabled) for the corpus-level
//! byte-identical gate).

use crate::class::ClassTable;
use crate::intern::{self, Node, TypeId};
use crate::store::{Constraint, TypeStore};
use crate::ty::{HashKey, SingVal, Type};

/// The global subtype-verdict cache: a fixed-size, sharded seqlock slot
/// table.  Readers are lock-free (a bounded seqlock retry per probed
/// slot); writers serialize per shard and evict with a rotating hand.
/// Entries are keyed on interned type ids plus the class-table stamp, so
/// a verdict can never outlive the exact hierarchy it was computed under.
pub mod verdict_cache {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    const SHARDS: usize = 16;
    /// Slots per shard (power of two): 32k verdicts total, ~1.5 MB.
    const SLOTS: usize = 2048;
    /// Linear-probe window, mirroring the runtime memo's slot arrays.
    const PROBE: usize = 8;
    /// Bounded seqlock retries before a reader gives up on a slot mid-write
    /// and treats it as a miss (a cache may always miss).
    const SPIN: usize = 32;

    struct Slot {
        /// Seqlock word: odd while a writer is mid-update.
        seq: AtomicU64,
        /// `sub_id << 32 | sup_id`.
        key: AtomicU64,
        /// Class-table stamp; `0` marks an empty slot (real stamps start
        /// at 1).
        stamp: AtomicU64,
        verdict: AtomicU64,
    }

    struct Shard {
        slots: Box<[Slot]>,
        /// Serializes writers; holds the rotating eviction hand.
        write: Mutex<usize>,
    }

    struct Table {
        shards: Vec<Shard>,
    }

    fn table() -> &'static Table {
        static TABLE: OnceLock<Table> = OnceLock::new();
        TABLE.get_or_init(|| Table {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    slots: (0..SLOTS)
                        .map(|_| Slot {
                            seq: AtomicU64::new(0),
                            key: AtomicU64::new(0),
                            stamp: AtomicU64::new(0),
                            verdict: AtomicU64::new(0),
                        })
                        .collect(),
                    write: Mutex::new(0),
                })
                .collect(),
        })
    }

    static ENABLED: AtomicBool = AtomicBool::new(true);
    static HITS: AtomicU64 = AtomicU64::new(0);
    static MISSES: AtomicU64 = AtomicU64::new(0);
    static INSERTS: AtomicU64 = AtomicU64::new(0);
    static EVICTIONS: AtomicU64 = AtomicU64::new(0);

    /// Cache counters (cumulative for the process; read deltas to measure
    /// a workload).
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct VerdictCacheStats {
        /// Queries answered from a slot.
        pub hits: u64,
        /// Queries that fell through to the structural rules.
        pub misses: u64,
        /// Verdicts written.
        pub inserts: u64,
        /// Occupied slots overwritten by an unrelated key.
        pub evictions: u64,
    }

    /// Current cumulative counters.
    pub fn stats() -> VerdictCacheStats {
        VerdictCacheStats {
            hits: HITS.load(Ordering::Relaxed),
            misses: MISSES.load(Ordering::Relaxed),
            inserts: INSERTS.load(Ordering::Relaxed),
            evictions: EVICTIONS.load(Ordering::Relaxed),
        }
    }

    /// Globally enables / disables the cache (and the id fast path that
    /// feeds it), returning the previous setting.  Verdicts are identical
    /// either way — disabling exists so tests and benches can compare the
    /// cached pipeline against the structural walk byte-for-byte, and it
    /// is safe to flip while other threads are mid-query (each query
    /// reads the flag once).
    pub fn set_enabled(enabled: bool) -> bool {
        ENABLED.swap(enabled, Ordering::Relaxed)
    }

    /// Whether the cache is currently consulted.
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    fn place(key: u64, stamp: u64) -> (usize, usize) {
        let mut fp = crate::fingerprint::Fingerprint::new();
        fp.write_u64(key);
        fp.write_u64(stamp);
        let h = fp.finish();
        ((h >> 56) as usize % SHARDS, h as usize % SLOTS)
    }

    pub(super) fn pack(a: super::TypeId, b: super::TypeId) -> u64 {
        (u64::from(a.index()) << 32) | u64::from(b.index())
    }

    /// Lock-free lookup; `None` on absence or reader give-up.
    pub(super) fn get(key: u64, stamp: u64) -> Option<bool> {
        let (si, start) = place(key, stamp);
        let shard = &table().shards[si];
        for i in 0..PROBE {
            let slot = &shard.slots[(start + i) % SLOTS];
            let mut spins = 0;
            loop {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 & 1 == 1 {
                    spins += 1;
                    if spins > SPIN {
                        break;
                    }
                    std::hint::spin_loop();
                    continue;
                }
                let k = slot.key.load(Ordering::Acquire);
                let st = slot.stamp.load(Ordering::Acquire);
                let v = slot.verdict.load(Ordering::Acquire);
                if slot.seq.load(Ordering::Acquire) != s1 {
                    // Torn read: a writer raced us.  Retry (bounded).
                    spins += 1;
                    if spins > SPIN {
                        break;
                    }
                    continue;
                }
                if st == stamp && k == key {
                    return Some(v == 1);
                }
                break;
            }
        }
        None
    }

    pub(super) fn put(key: u64, stamp: u64, verdict: bool) {
        let (si, start) = place(key, stamp);
        let shard = &table().shards[si];
        let mut hand = shard.write.lock().unwrap_or_else(|e| e.into_inner());
        // Prefer the slot already holding this key, then an empty slot,
        // then the rotating victim.
        let mut victim = None;
        let mut empty = None;
        for i in 0..PROBE {
            let idx = (start + i) % SLOTS;
            let slot = &shard.slots[idx];
            let st = slot.stamp.load(Ordering::Relaxed);
            if st == stamp && slot.key.load(Ordering::Relaxed) == key {
                victim = Some((idx, false));
                break;
            }
            if st == 0 && empty.is_none() {
                empty = Some(idx);
            }
        }
        let (idx, evicts) = victim.or(empty.map(|i| (i, false))).unwrap_or_else(|| {
            let i = (start + *hand % PROBE) % SLOTS;
            *hand = hand.wrapping_add(1);
            (i, true)
        });
        if evicts {
            EVICTIONS.fetch_add(1, Ordering::Relaxed);
        }
        let slot = &shard.slots[idx];
        // Seqlock write: odd seq while the fields are inconsistent.
        slot.seq.fetch_add(1, Ordering::AcqRel);
        slot.key.store(key, Ordering::Release);
        slot.stamp.store(stamp, Ordering::Release);
        slot.verdict.store(u64::from(verdict), Ordering::Release);
        slot.seq.fetch_add(1, Ordering::Release);
        INSERTS.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn note_hit() {
        HITS.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn note_miss() {
        MISSES.fetch_add(1, Ordering::Relaxed);
    }
}

/// Answers subtyping queries relative to a class table.
#[derive(Debug, Clone, Copy)]
pub struct Subtyper<'a> {
    classes: &'a ClassTable,
}

impl<'a> Subtyper<'a> {
    /// Creates a subtyper over the given class hierarchy.
    pub fn new(classes: &'a ClassTable) -> Self {
        Subtyper { classes }
    }

    /// The class table this subtyper consults.
    pub fn classes(&self) -> &ClassTable {
        self.classes
    }

    /// Returns `true` if `sub <= sup`.
    ///
    /// Store-backed types are *not* promoted by this query, but already
    /// performed promotions are honoured via [`TypeStore::resolve`].
    ///
    /// Store-free operands take the interned fast path (id short-circuit
    /// plus the global [`verdict_cache`]); store-backed operands take the
    /// structural rules.  Both return exactly what
    /// [`Subtyper::is_subtype_uncached`] returns.
    pub fn is_subtype(&self, store: &TypeStore, sub: &Type, sup: &Type) -> bool {
        // Store-free operands resolve to themselves, so the fast path skips
        // the two deep clones [`TypeStore::resolve`] would make.  (A
        // store-backed operand that a promotion would resolve store-free
        // simply takes the structural path below.)
        if verdict_cache::is_enabled()
            && !sub.contains_store_backed()
            && !sup.contains_store_backed()
        {
            let a = intern::intern(sub);
            let b = intern::intern(sup);
            return self.is_subtype_ids(a, b, self.classes.stamp());
        }
        let sub = store.resolve(sub);
        let sup = store.resolve(sup);
        self.is_subtype_resolved(store, &sub, &sup)
    }

    /// [`Subtyper::is_subtype`] with the interner and verdict cache
    /// bypassed: the plain structural walk, kept public as the oracle the
    /// cached path is property-tested against and as the baseline the
    /// `type_core` bench measures.
    pub fn is_subtype_uncached(&self, store: &TypeStore, sub: &Type, sup: &Type) -> bool {
        let sub = store.resolve(sub);
        let sup = store.resolve(sup);
        self.is_subtype_resolved(store, &sub, &sup)
    }

    /// The subtype rules over interned ids, for store-free operands only.
    /// Mirrors `is_subtype_resolved` arm for arm (minus the store-backed
    /// arms, which cannot be reached: store-backedness propagates to every
    /// parent node, so the entry check above filters whole trees).
    fn is_subtype_ids(&self, a: TypeId, b: TypeId, stamp: u64) -> bool {
        // Hash-consing makes id equality structural equality — the `sub ==
        // sup` rule for free.
        if a == b {
            return true;
        }
        let key = verdict_cache::pack(a, b);
        if let Some(verdict) = verdict_cache::get(key, stamp) {
            verdict_cache::note_hit();
            return verdict;
        }
        verdict_cache::note_miss();
        let verdict = self.compute_ids(a, b, stamp);
        verdict_cache::put(key, stamp, verdict);
        verdict
    }

    fn compute_ids(&self, a: TypeId, b: TypeId, stamp: u64) -> bool {
        use Node::*;
        let na = intern::info(a).node();
        let nb = intern::info(b).node();
        match (na, nb) {
            // Dynamic is compatible in both directions; Bot/Top as usual.
            (Dynamic, _) | (_, Dynamic) => true,
            (Bot, _) => true,
            (_, Top) => true,
            (Top, _) => false,
            // `nil` is allowed wherever any object is expected.
            (Singleton(SingVal::Nil), _) => true,
            // Optional / vararg wrappers are transparent for subtyping.
            (Optional(t), _) => self.is_subtype_ids(*t, b, stamp),
            (_, Optional(t)) => self.is_subtype_ids(a, *t, stamp),
            (Vararg(t), _) => self.is_subtype_ids(*t, b, stamp),
            (_, Vararg(t)) => self.is_subtype_ids(a, *t, stamp),
            // Unions.
            (Union(ts), _) => ts.iter().all(|t| self.is_subtype_ids(*t, b, stamp)),
            (_, Union(ts)) => ts.iter().any(|t| self.is_subtype_ids(a, *t, stamp)),
            // Booleans.
            (Singleton(SingVal::True), Bool) | (Singleton(SingVal::False), Bool) => true,
            (Nominal(n), Bool) => &**n == "TrueClass" || &**n == "FalseClass" || &**n == "Boolean",
            (Bool, Nominal(n)) => self.classes.is_subclass("Boolean", n),
            (Bool, _) => false,
            // Singletons are subtypes of their class.
            (Singleton(v), Nominal(n)) => self.classes.is_subclass(v.class_of(), n),
            (Singleton(SingVal::Class(_)), Generic { base, .. }) => &**base == "Class",
            // Nominal subtyping follows the class hierarchy.
            (Nominal(x), Nominal(y)) => self.classes.is_subclass(x, y),
            // Generic types: base must be a subclass, arguments covariant.
            (Generic { base: b1, args: a1 }, Generic { base: b2, args: a2 }) => {
                self.classes.is_subclass(b1, b2)
                    && a1.len() == a2.len()
                    && a1.iter().zip(a2.iter()).all(|(x, y)| self.is_subtype_ids(*x, *y, stamp))
            }
            (Generic { base, .. }, Nominal(n)) => self.classes.is_subclass(base, n),
            (Nominal(_), Generic { .. }) => false,
            // Type variables are only compatible with themselves (equal
            // names interned to equal ids above).
            (Var(x), Var(y)) => x == y,
            (Var(_), _) | (_, Var(_)) => false,
            (Tuple(_) | FiniteHash(_) | ConstString(_), _)
            | (_, Tuple(_) | FiniteHash(_) | ConstString(_)) => {
                unreachable!("store-backed nodes never reach the id path")
            }
            _ => false,
        }
    }

    fn is_subtype_resolved(&self, store: &TypeStore, sub: &Type, sup: &Type) -> bool {
        use Type::*;
        if sub == sup {
            return true;
        }
        match (sub, sup) {
            // Dynamic is compatible in both directions; Bot/Top as usual.
            (Dynamic, _) | (_, Dynamic) => true,
            (Bot, _) => true,
            (_, Top) => true,
            (Top, _) => false,
            // `nil` is allowed wherever any object is expected (the paper's
            // λC does the same; errors surface as blame at run time).
            (Singleton(SingVal::Nil), _) => true,
            // Optional / vararg wrappers are transparent for subtyping.
            (Optional(t), _) => self.is_subtype_resolved(store, t, sup),
            (_, Optional(t)) => self.is_subtype_resolved(store, sub, t),
            (Vararg(t), _) => self.is_subtype_resolved(store, t, sup),
            (_, Vararg(t)) => self.is_subtype_resolved(store, sub, t),
            // Unions.
            (Union(ts), _) => ts.iter().all(|t| self.is_subtype_resolved(store, t, sup)),
            (_, Union(ts)) => ts.iter().any(|t| self.is_subtype_resolved(store, sub, t)),
            // Booleans.
            (Singleton(SingVal::True), Bool) | (Singleton(SingVal::False), Bool) => true,
            (Nominal(n), Bool) => n == "TrueClass" || n == "FalseClass" || n == "Boolean",
            (Bool, Nominal(n)) => self.classes.is_subclass("Boolean", n),
            (Bool, _) => false,
            // Singletons are subtypes of their class.
            (Singleton(v), Nominal(n)) => self.classes.is_subclass(v.class_of(), n),
            (Singleton(SingVal::Class(_)), Generic { base, .. }) => base == "Class",
            // Const strings behave like String (and like each other only if
            // identical, which the `sub == sup` case already covered).
            (ConstString(_), Nominal(n)) => self.classes.is_subclass("String", n),
            (ConstString(a), ConstString(b)) => {
                match (store.const_string_value(*a), store.const_string_value(*b)) {
                    (Some(x), Some(y)) => x == y,
                    _ => false,
                }
            }
            // Nominal subtyping follows the class hierarchy.
            (Nominal(a), Nominal(b)) => self.classes.is_subclass(a, b),
            // Generic types: base must be a subclass, arguments covariant.
            (Generic { base: b1, args: a1 }, Generic { base: b2, args: a2 }) => {
                self.classes.is_subclass(b1, b2)
                    && a1.len() == a2.len()
                    && a1.iter().zip(a2.iter()).all(|(x, y)| self.is_subtype_resolved(store, x, y))
            }
            (Generic { base, .. }, Nominal(n)) => self.classes.is_subclass(base, n),
            (Nominal(_), Generic { .. }) => false,
            // Tuples.
            (Tuple(id1), Tuple(id2)) => {
                let t1 = store.tuple(*id1);
                let t2 = store.tuple(*id2);
                t1.elems.len() == t2.elems.len()
                    && t1
                        .elems
                        .iter()
                        .zip(t2.elems.iter())
                        .all(|(x, y)| self.is_subtype_resolved(store, x, y))
            }
            (Tuple(id), Generic { base, args }) if base == "Array" && args.len() == 1 => {
                store.tuple(*id).elems.iter().all(|e| self.is_subtype_resolved(store, e, &args[0]))
            }
            (Tuple(_), Nominal(n)) => self.classes.is_subclass("Array", n),
            // Finite hashes.  RDL does not allow width subtyping: every key
            // of the subtype must exist in the supertype (otherwise e.g. a
            // query hash mentioning an unknown column would be accepted),
            // and every non-optional key of the supertype must be present.
            (FiniteHash(id1), FiniteHash(id2)) => {
                let h1 = store.finite_hash(*id1);
                let h2 = store.finite_hash(*id2);
                let required_present = h2.entries.iter().all(|(k, v2)| match h1.get(k) {
                    Some(v1) => self.is_subtype_resolved(store, v1, v2),
                    None => matches!(v2, Type::Optional(_)),
                });
                let no_extra_keys = h1.entries.iter().all(|(k, _)| h2.get(k).is_some());
                required_present && no_extra_keys
            }
            (FiniteHash(id), Generic { base, args }) if base == "Hash" && args.len() == 2 => {
                let h = store.finite_hash(*id);
                h.entries.iter().all(|(k, v)| {
                    let kt = match k {
                        HashKey::Sym(s) => Type::sym(s.clone()),
                        HashKey::Str(_) => Type::nominal("String"),
                        HashKey::Int(i) => Type::int(*i),
                    };
                    self.is_subtype_resolved(store, &kt, &args[0])
                        && self.is_subtype_resolved(store, v, &args[1])
                })
            }
            (FiniteHash(_), Nominal(n)) => self.classes.is_subclass("Hash", n),
            // Type variables are only compatible with themselves (and Top,
            // handled above); instantiation happens before checking.
            (Var(a), Var(b)) => a == b,
            (Var(_), _) | (_, Var(_)) => false,
            _ => false,
        }
    }

    /// Asserts `sub <= sup`, recording the constraint against any
    /// store-backed types involved so it can be replayed after weak updates.
    /// Returns whether the constraint currently holds.
    pub fn constrain(&self, store: &mut TypeStore, sub: &Type, sup: &Type, origin: &str) -> bool {
        if sub.is_store_backed() {
            store.record_constraint(sub, sub.clone(), sup.clone(), origin);
        }
        if sup.is_store_backed() && sup != sub {
            store.record_constraint(sup, sub.clone(), sup.clone(), origin);
        }
        self.is_subtype(store, sub, sup)
    }

    /// Re-checks previously recorded constraints (used after weak updates;
    /// §4).  Returns the constraints that no longer hold.
    pub fn replay(&self, store: &TypeStore, constraints: &[Constraint]) -> Vec<Constraint> {
        constraints.iter().filter(|c| !self.is_subtype(store, &c.lhs, &c.rhs)).cloned().collect()
    }

    /// The least upper bound (join) of two types, used at conditional join
    /// points.
    pub fn lub(&self, store: &TypeStore, a: &Type, b: &Type) -> Type {
        if self.is_subtype(store, a, b) {
            return store.resolve(b);
        }
        if self.is_subtype(store, b, a) {
            return store.resolve(a);
        }
        let ra = store.resolve(a);
        let rb = store.resolve(b);
        match (&ra, &rb) {
            (Type::Nominal(x), Type::Nominal(y)) => {
                let anc = self.classes.common_ancestor(x, y);
                if anc != "Object" {
                    return Type::Nominal(anc);
                }
                Type::union([ra.clone(), rb.clone()])
            }
            _ => Type::union([ra.clone(), rb.clone()]),
        }
    }

    /// The join of a whole sequence of types (`%bot` for an empty sequence).
    pub fn lub_all(&self, store: &TypeStore, types: &[Type]) -> Type {
        let mut acc = Type::Bot;
        for t in types {
            acc = self.lub(store, &acc, t);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassTable;

    fn setup() -> (ClassTable, TypeStore) {
        let mut ct = ClassTable::with_builtins();
        ct.add_model_class("User", "ActiveRecord::Base");
        (ct, TypeStore::new())
    }

    #[test]
    fn reflexivity_and_top_bottom() {
        let (ct, store) = setup();
        let sub = Subtyper::new(&ct);
        for t in [
            Type::nominal("String"),
            Type::sym("a"),
            Type::Bool,
            Type::array(Type::nominal("Integer")),
        ] {
            assert!(sub.is_subtype(&store, &t, &t));
            assert!(sub.is_subtype(&store, &t, &Type::Top));
            assert!(sub.is_subtype(&store, &Type::Bot, &t));
        }
        assert!(!sub.is_subtype(&store, &Type::Top, &Type::nominal("String")));
    }

    #[test]
    fn singleton_and_nominal() {
        let (ct, store) = setup();
        let sub = Subtyper::new(&ct);
        assert!(sub.is_subtype(&store, &Type::sym("emails"), &Type::nominal("Symbol")));
        assert!(sub.is_subtype(&store, &Type::int(3), &Type::nominal("Integer")));
        assert!(sub.is_subtype(&store, &Type::int(3), &Type::nominal("Numeric")));
        assert!(!sub.is_subtype(&store, &Type::nominal("Symbol"), &Type::sym("emails")));
        assert!(sub.is_subtype(&store, &Type::class_of("User"), &Type::nominal("Class")));
        assert!(sub.is_subtype(&store, &Type::Singleton(SingVal::True), &Type::Bool));
        assert!(sub.is_subtype(&store, &Type::Bool, &Type::object()));
    }

    #[test]
    fn nil_is_allowed_anywhere() {
        let (ct, store) = setup();
        let sub = Subtyper::new(&ct);
        assert!(sub.is_subtype(&store, &Type::nil(), &Type::nominal("String")));
        assert!(sub.is_subtype(&store, &Type::nil(), &Type::array(Type::nominal("Integer"))));
    }

    #[test]
    fn union_rules() {
        let (ct, store) = setup();
        let sub = Subtyper::new(&ct);
        let u = Type::union([Type::nominal("Integer"), Type::nominal("String")]);
        assert!(sub.is_subtype(&store, &Type::nominal("Integer"), &u));
        assert!(sub.is_subtype(&store, &u, &Type::object()));
        assert!(!sub.is_subtype(&store, &u, &Type::nominal("Integer")));
    }

    #[test]
    fn generics_are_covariant() {
        let (ct, store) = setup();
        let sub = Subtyper::new(&ct);
        assert!(sub.is_subtype(
            &store,
            &Type::array(Type::nominal("Integer")),
            &Type::array(Type::nominal("Numeric"))
        ));
        assert!(!sub.is_subtype(
            &store,
            &Type::array(Type::nominal("Numeric")),
            &Type::array(Type::nominal("Integer"))
        ));
        assert!(sub.is_subtype(
            &store,
            &Type::array(Type::nominal("Integer")),
            &Type::nominal("Array")
        ));
    }

    #[test]
    fn tuple_subtyping_and_promotion() {
        let (ct, mut store) = setup();
        let t = store.new_tuple(vec![Type::int(1), Type::nominal("String")]);
        let sub = Subtyper::new(&ct);
        assert!(sub.is_subtype(
            &store,
            &t,
            &Type::array(Type::union([Type::nominal("Integer"), Type::nominal("String")]))
        ));
        assert!(sub.is_subtype(&store, &t, &Type::nominal("Array")));
        assert!(!sub.is_subtype(&store, &t, &Type::array(Type::nominal("Integer"))));
        // After promotion the tuple behaves as the promoted array type.
        let Type::Tuple(id) = t else { panic!() };
        store.promote_tuple(id);
        assert!(sub.is_subtype(&store, &t, &Type::nominal("Array")));
    }

    #[test]
    fn finite_hash_subtyping() {
        let (ct, mut store) = setup();
        let h = store.new_finite_hash(vec![
            (HashKey::Sym("name".into()), Type::nominal("String")),
            (HashKey::Sym("age".into()), Type::int(30)),
        ]);
        let sub = Subtyper::new(&ct);
        assert!(sub.is_subtype(&store, &h, &Type::hash(Type::nominal("Symbol"), Type::object())));
        // Width subtyping is not allowed: `h` has a key `narrower` lacks.
        let narrower =
            store.new_finite_hash(vec![(HashKey::Sym("name".into()), Type::nominal("String"))]);
        assert!(!sub.is_subtype(&store, &h, &narrower));
        assert!(!sub.is_subtype(&store, &narrower, &h));
        // But missing keys are fine when the supertype marks them optional.
        let optionalized = store.new_finite_hash(vec![
            (HashKey::Sym("name".into()), Type::Optional(Box::new(Type::nominal("String")))),
            (HashKey::Sym("age".into()), Type::Optional(Box::new(Type::nominal("Integer")))),
        ]);
        assert!(sub.is_subtype(&store, &narrower, &optionalized));
        assert!(sub.is_subtype(&store, &h, &optionalized));
    }

    #[test]
    fn const_string_is_a_string() {
        let (ct, mut store) = setup();
        let s = store.new_const_string("hello");
        let sub = Subtyper::new(&ct);
        assert!(sub.is_subtype(&store, &s, &Type::nominal("String")));
        assert!(sub.is_subtype(&store, &s, &Type::object()));
        let s2 = store.new_const_string("hello");
        let s3 = store.new_const_string("other");
        assert!(sub.is_subtype(&store, &s, &s2));
        assert!(!sub.is_subtype(&store, &s, &s3));
    }

    #[test]
    fn lub_prefers_common_ancestor() {
        let (ct, store) = setup();
        let sub = Subtyper::new(&ct);
        assert_eq!(
            sub.lub(&store, &Type::nominal("Integer"), &Type::nominal("Float")),
            Type::nominal("Numeric")
        );
        assert_eq!(
            sub.lub(&store, &Type::nominal("Integer"), &Type::nominal("Integer")),
            Type::nominal("Integer")
        );
        let u = sub.lub(&store, &Type::nominal("String"), &Type::array(Type::Top));
        assert!(matches!(u, Type::Union(_)));
        assert_eq!(sub.lub_all(&store, &[]), Type::Bot);
    }

    #[test]
    fn constrain_records_and_replays() {
        let (ct, mut store) = setup();
        let sub = Subtyper::new(&ct);
        let t = store.new_tuple(vec![Type::nominal("Integer"), Type::nominal("String")]);
        assert!(sub.constrain(
            &mut store,
            &t,
            &Type::array(Type::union([Type::nominal("Integer"), Type::nominal("String")])),
            "assignment"
        ));
        let Type::Tuple(id) = t else { panic!() };
        // Weak update with a compatible type: constraints still hold.
        let cs = store.weak_update_tuple(id, 0, Type::nominal("String"));
        assert!(sub.replay(&store, &cs).is_empty());
        // Weak update with an incompatible type: the recorded constraint is
        // now violated and replay reports it.
        let cs = store.weak_update_tuple(id, 1, Type::nominal("Float"));
        let violated = sub.replay(&store, &cs);
        assert_eq!(violated.len(), 1);
        assert_eq!(violated[0].origin, "assignment");
    }

    #[test]
    fn dynamic_is_bidirectional() {
        let (ct, store) = setup();
        let sub = Subtyper::new(&ct);
        assert!(sub.is_subtype(&store, &Type::Dynamic, &Type::nominal("String")));
        assert!(sub.is_subtype(&store, &Type::nominal("String"), &Type::Dynamic));
    }

    #[test]
    fn cached_path_matches_structural_oracle() {
        let (ct, store) = setup();
        let sub = Subtyper::new(&ct);
        let samples = [
            Type::Top,
            Type::Bot,
            Type::Bool,
            Type::Dynamic,
            Type::nil(),
            Type::nominal("Integer"),
            Type::nominal("Numeric"),
            Type::nominal("String"),
            Type::sym("emails"),
            Type::int(3),
            Type::class_of("User"),
            Type::Singleton(SingVal::True),
            Type::Var("t".into()),
            Type::Var("u".into()),
            Type::Optional(Box::new(Type::nominal("Integer"))),
            Type::Vararg(Box::new(Type::nominal("String"))),
            Type::union([Type::nominal("Integer"), Type::nominal("String")]),
            Type::array(Type::nominal("Integer")),
            Type::array(Type::nominal("Numeric")),
            Type::hash(Type::nominal("Symbol"), Type::object()),
            Type::Generic { base: "Class".into(), args: vec![Type::nominal("User")] },
        ];
        // Twice, so the second pass reads a warm verdict cache.
        for round in 0..2 {
            for a in &samples {
                for b in &samples {
                    assert_eq!(
                        sub.is_subtype(&store, a, b),
                        sub.is_subtype_uncached(&store, a, b),
                        "cached verdict diverged for {a} <= {b} (round {round})"
                    );
                }
            }
        }
        // The warm pass must actually have hit the cache.
        let warm = verdict_cache::stats();
        assert!(warm.hits > 0, "expected verdict-cache hits, got {warm:?}");
    }

    #[test]
    fn verdict_cache_invalidates_on_class_mutation() {
        let mut ct = ClassTable::with_builtins();
        ct.add_class("Staff", Some("Object"));
        let store = TypeStore::new();
        let staff = Type::nominal("Staff");
        let admin = Type::nominal("Admin");
        {
            let sub = Subtyper::new(&ct);
            // Prime the cache: Admin is unknown, so it is not below Staff.
            assert!(!sub.is_subtype(&store, &admin, &staff));
            assert!(!sub.is_subtype(&store, &admin, &staff));
        }
        // Mutating the hierarchy restamps the table; the cached negative
        // verdict is keyed to the dead stamp and cannot be returned.
        ct.add_class("Admin", Some("Staff"));
        let sub = Subtyper::new(&ct);
        assert!(sub.is_subtype(&store, &admin, &staff));
        assert!(sub.is_subtype(&store, &admin, &staff), "warm re-query agrees");
    }

    #[test]
    fn disabling_the_cache_changes_no_verdicts() {
        let (ct, store) = setup();
        let sub = Subtyper::new(&ct);
        let pairs = [
            (Type::int(3), Type::nominal("Numeric")),
            (Type::array(Type::nominal("Integer")), Type::array(Type::nominal("Numeric"))),
            (Type::nominal("String"), Type::nominal("Integer")),
        ];
        let was = verdict_cache::set_enabled(false);
        let off: Vec<bool> = pairs.iter().map(|(a, b)| sub.is_subtype(&store, a, b)).collect();
        verdict_cache::set_enabled(true);
        let on: Vec<bool> = pairs.iter().map(|(a, b)| sub.is_subtype(&store, a, b)).collect();
        verdict_cache::set_enabled(was);
        assert_eq!(off, on);
        assert_eq!(on, vec![true, true, false]);
    }
}
