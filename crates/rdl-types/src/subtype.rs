//! Subtyping, least upper bounds, and constraint replay.

use crate::class::ClassTable;
use crate::store::{Constraint, TypeStore};
use crate::ty::{HashKey, SingVal, Type};

/// Answers subtyping queries relative to a class table.
#[derive(Debug, Clone, Copy)]
pub struct Subtyper<'a> {
    classes: &'a ClassTable,
}

impl<'a> Subtyper<'a> {
    /// Creates a subtyper over the given class hierarchy.
    pub fn new(classes: &'a ClassTable) -> Self {
        Subtyper { classes }
    }

    /// The class table this subtyper consults.
    pub fn classes(&self) -> &ClassTable {
        self.classes
    }

    /// Returns `true` if `sub <= sup`.
    ///
    /// Store-backed types are *not* promoted by this query, but already
    /// performed promotions are honoured via [`TypeStore::resolve`].
    pub fn is_subtype(&self, store: &TypeStore, sub: &Type, sup: &Type) -> bool {
        let sub = store.resolve(sub);
        let sup = store.resolve(sup);
        self.is_subtype_resolved(store, &sub, &sup)
    }

    fn is_subtype_resolved(&self, store: &TypeStore, sub: &Type, sup: &Type) -> bool {
        use Type::*;
        if sub == sup {
            return true;
        }
        match (sub, sup) {
            // Dynamic is compatible in both directions; Bot/Top as usual.
            (Dynamic, _) | (_, Dynamic) => true,
            (Bot, _) => true,
            (_, Top) => true,
            (Top, _) => false,
            // `nil` is allowed wherever any object is expected (the paper's
            // λC does the same; errors surface as blame at run time).
            (Singleton(SingVal::Nil), _) => true,
            // Optional / vararg wrappers are transparent for subtyping.
            (Optional(t), _) => self.is_subtype_resolved(store, t, sup),
            (_, Optional(t)) => self.is_subtype_resolved(store, sub, t),
            (Vararg(t), _) => self.is_subtype_resolved(store, t, sup),
            (_, Vararg(t)) => self.is_subtype_resolved(store, sub, t),
            // Unions.
            (Union(ts), _) => ts.iter().all(|t| self.is_subtype_resolved(store, t, sup)),
            (_, Union(ts)) => ts.iter().any(|t| self.is_subtype_resolved(store, sub, t)),
            // Booleans.
            (Singleton(SingVal::True), Bool) | (Singleton(SingVal::False), Bool) => true,
            (Nominal(n), Bool) => n == "TrueClass" || n == "FalseClass" || n == "Boolean",
            (Bool, Nominal(n)) => self.classes.is_subclass("Boolean", n),
            (Bool, _) => false,
            // Singletons are subtypes of their class.
            (Singleton(v), Nominal(n)) => self.classes.is_subclass(v.class_of(), n),
            (Singleton(SingVal::Class(_)), Generic { base, .. }) => base == "Class",
            // Const strings behave like String (and like each other only if
            // identical, which the `sub == sup` case already covered).
            (ConstString(_), Nominal(n)) => self.classes.is_subclass("String", n),
            (ConstString(a), ConstString(b)) => {
                match (store.const_string_value(*a), store.const_string_value(*b)) {
                    (Some(x), Some(y)) => x == y,
                    _ => false,
                }
            }
            // Nominal subtyping follows the class hierarchy.
            (Nominal(a), Nominal(b)) => self.classes.is_subclass(a, b),
            // Generic types: base must be a subclass, arguments covariant.
            (Generic { base: b1, args: a1 }, Generic { base: b2, args: a2 }) => {
                self.classes.is_subclass(b1, b2)
                    && a1.len() == a2.len()
                    && a1.iter().zip(a2.iter()).all(|(x, y)| self.is_subtype_resolved(store, x, y))
            }
            (Generic { base, .. }, Nominal(n)) => self.classes.is_subclass(base, n),
            (Nominal(_), Generic { .. }) => false,
            // Tuples.
            (Tuple(id1), Tuple(id2)) => {
                let t1 = store.tuple(*id1);
                let t2 = store.tuple(*id2);
                t1.elems.len() == t2.elems.len()
                    && t1
                        .elems
                        .iter()
                        .zip(t2.elems.iter())
                        .all(|(x, y)| self.is_subtype_resolved(store, x, y))
            }
            (Tuple(id), Generic { base, args }) if base == "Array" && args.len() == 1 => {
                store.tuple(*id).elems.iter().all(|e| self.is_subtype_resolved(store, e, &args[0]))
            }
            (Tuple(_), Nominal(n)) => self.classes.is_subclass("Array", n),
            // Finite hashes.  RDL does not allow width subtyping: every key
            // of the subtype must exist in the supertype (otherwise e.g. a
            // query hash mentioning an unknown column would be accepted),
            // and every non-optional key of the supertype must be present.
            (FiniteHash(id1), FiniteHash(id2)) => {
                let h1 = store.finite_hash(*id1);
                let h2 = store.finite_hash(*id2);
                let required_present = h2.entries.iter().all(|(k, v2)| match h1.get(k) {
                    Some(v1) => self.is_subtype_resolved(store, v1, v2),
                    None => matches!(v2, Type::Optional(_)),
                });
                let no_extra_keys = h1.entries.iter().all(|(k, _)| h2.get(k).is_some());
                required_present && no_extra_keys
            }
            (FiniteHash(id), Generic { base, args }) if base == "Hash" && args.len() == 2 => {
                let h = store.finite_hash(*id);
                h.entries.iter().all(|(k, v)| {
                    let kt = match k {
                        HashKey::Sym(s) => Type::sym(s.clone()),
                        HashKey::Str(_) => Type::nominal("String"),
                        HashKey::Int(i) => Type::int(*i),
                    };
                    self.is_subtype_resolved(store, &kt, &args[0])
                        && self.is_subtype_resolved(store, v, &args[1])
                })
            }
            (FiniteHash(_), Nominal(n)) => self.classes.is_subclass("Hash", n),
            // Type variables are only compatible with themselves (and Top,
            // handled above); instantiation happens before checking.
            (Var(a), Var(b)) => a == b,
            (Var(_), _) | (_, Var(_)) => false,
            _ => false,
        }
    }

    /// Asserts `sub <= sup`, recording the constraint against any
    /// store-backed types involved so it can be replayed after weak updates.
    /// Returns whether the constraint currently holds.
    pub fn constrain(&self, store: &mut TypeStore, sub: &Type, sup: &Type, origin: &str) -> bool {
        if sub.is_store_backed() {
            store.record_constraint(sub, sub.clone(), sup.clone(), origin);
        }
        if sup.is_store_backed() && sup != sub {
            store.record_constraint(sup, sub.clone(), sup.clone(), origin);
        }
        self.is_subtype(store, sub, sup)
    }

    /// Re-checks previously recorded constraints (used after weak updates;
    /// §4).  Returns the constraints that no longer hold.
    pub fn replay(&self, store: &TypeStore, constraints: &[Constraint]) -> Vec<Constraint> {
        constraints.iter().filter(|c| !self.is_subtype(store, &c.lhs, &c.rhs)).cloned().collect()
    }

    /// The least upper bound (join) of two types, used at conditional join
    /// points.
    pub fn lub(&self, store: &TypeStore, a: &Type, b: &Type) -> Type {
        if self.is_subtype(store, a, b) {
            return store.resolve(b);
        }
        if self.is_subtype(store, b, a) {
            return store.resolve(a);
        }
        let ra = store.resolve(a);
        let rb = store.resolve(b);
        match (&ra, &rb) {
            (Type::Nominal(x), Type::Nominal(y)) => {
                let anc = self.classes.common_ancestor(x, y);
                if anc != "Object" {
                    return Type::Nominal(anc);
                }
                Type::union([ra.clone(), rb.clone()])
            }
            _ => Type::union([ra.clone(), rb.clone()]),
        }
    }

    /// The join of a whole sequence of types (`%bot` for an empty sequence).
    pub fn lub_all(&self, store: &TypeStore, types: &[Type]) -> Type {
        let mut acc = Type::Bot;
        for t in types {
            acc = self.lub(store, &acc, t);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassTable;

    fn setup() -> (ClassTable, TypeStore) {
        let mut ct = ClassTable::with_builtins();
        ct.add_model_class("User", "ActiveRecord::Base");
        (ct, TypeStore::new())
    }

    #[test]
    fn reflexivity_and_top_bottom() {
        let (ct, store) = setup();
        let sub = Subtyper::new(&ct);
        for t in [
            Type::nominal("String"),
            Type::sym("a"),
            Type::Bool,
            Type::array(Type::nominal("Integer")),
        ] {
            assert!(sub.is_subtype(&store, &t, &t));
            assert!(sub.is_subtype(&store, &t, &Type::Top));
            assert!(sub.is_subtype(&store, &Type::Bot, &t));
        }
        assert!(!sub.is_subtype(&store, &Type::Top, &Type::nominal("String")));
    }

    #[test]
    fn singleton_and_nominal() {
        let (ct, store) = setup();
        let sub = Subtyper::new(&ct);
        assert!(sub.is_subtype(&store, &Type::sym("emails"), &Type::nominal("Symbol")));
        assert!(sub.is_subtype(&store, &Type::int(3), &Type::nominal("Integer")));
        assert!(sub.is_subtype(&store, &Type::int(3), &Type::nominal("Numeric")));
        assert!(!sub.is_subtype(&store, &Type::nominal("Symbol"), &Type::sym("emails")));
        assert!(sub.is_subtype(&store, &Type::class_of("User"), &Type::nominal("Class")));
        assert!(sub.is_subtype(&store, &Type::Singleton(SingVal::True), &Type::Bool));
        assert!(sub.is_subtype(&store, &Type::Bool, &Type::object()));
    }

    #[test]
    fn nil_is_allowed_anywhere() {
        let (ct, store) = setup();
        let sub = Subtyper::new(&ct);
        assert!(sub.is_subtype(&store, &Type::nil(), &Type::nominal("String")));
        assert!(sub.is_subtype(&store, &Type::nil(), &Type::array(Type::nominal("Integer"))));
    }

    #[test]
    fn union_rules() {
        let (ct, store) = setup();
        let sub = Subtyper::new(&ct);
        let u = Type::union([Type::nominal("Integer"), Type::nominal("String")]);
        assert!(sub.is_subtype(&store, &Type::nominal("Integer"), &u));
        assert!(sub.is_subtype(&store, &u, &Type::object()));
        assert!(!sub.is_subtype(&store, &u, &Type::nominal("Integer")));
    }

    #[test]
    fn generics_are_covariant() {
        let (ct, store) = setup();
        let sub = Subtyper::new(&ct);
        assert!(sub.is_subtype(
            &store,
            &Type::array(Type::nominal("Integer")),
            &Type::array(Type::nominal("Numeric"))
        ));
        assert!(!sub.is_subtype(
            &store,
            &Type::array(Type::nominal("Numeric")),
            &Type::array(Type::nominal("Integer"))
        ));
        assert!(sub.is_subtype(
            &store,
            &Type::array(Type::nominal("Integer")),
            &Type::nominal("Array")
        ));
    }

    #[test]
    fn tuple_subtyping_and_promotion() {
        let (ct, mut store) = setup();
        let t = store.new_tuple(vec![Type::int(1), Type::nominal("String")]);
        let sub = Subtyper::new(&ct);
        assert!(sub.is_subtype(
            &store,
            &t,
            &Type::array(Type::union([Type::nominal("Integer"), Type::nominal("String")]))
        ));
        assert!(sub.is_subtype(&store, &t, &Type::nominal("Array")));
        assert!(!sub.is_subtype(&store, &t, &Type::array(Type::nominal("Integer"))));
        // After promotion the tuple behaves as the promoted array type.
        let Type::Tuple(id) = t else { panic!() };
        store.promote_tuple(id);
        assert!(sub.is_subtype(&store, &t, &Type::nominal("Array")));
    }

    #[test]
    fn finite_hash_subtyping() {
        let (ct, mut store) = setup();
        let h = store.new_finite_hash(vec![
            (HashKey::Sym("name".into()), Type::nominal("String")),
            (HashKey::Sym("age".into()), Type::int(30)),
        ]);
        let sub = Subtyper::new(&ct);
        assert!(sub.is_subtype(&store, &h, &Type::hash(Type::nominal("Symbol"), Type::object())));
        // Width subtyping is not allowed: `h` has a key `narrower` lacks.
        let narrower =
            store.new_finite_hash(vec![(HashKey::Sym("name".into()), Type::nominal("String"))]);
        assert!(!sub.is_subtype(&store, &h, &narrower));
        assert!(!sub.is_subtype(&store, &narrower, &h));
        // But missing keys are fine when the supertype marks them optional.
        let optionalized = store.new_finite_hash(vec![
            (HashKey::Sym("name".into()), Type::Optional(Box::new(Type::nominal("String")))),
            (HashKey::Sym("age".into()), Type::Optional(Box::new(Type::nominal("Integer")))),
        ]);
        assert!(sub.is_subtype(&store, &narrower, &optionalized));
        assert!(sub.is_subtype(&store, &h, &optionalized));
    }

    #[test]
    fn const_string_is_a_string() {
        let (ct, mut store) = setup();
        let s = store.new_const_string("hello");
        let sub = Subtyper::new(&ct);
        assert!(sub.is_subtype(&store, &s, &Type::nominal("String")));
        assert!(sub.is_subtype(&store, &s, &Type::object()));
        let s2 = store.new_const_string("hello");
        let s3 = store.new_const_string("other");
        assert!(sub.is_subtype(&store, &s, &s2));
        assert!(!sub.is_subtype(&store, &s, &s3));
    }

    #[test]
    fn lub_prefers_common_ancestor() {
        let (ct, store) = setup();
        let sub = Subtyper::new(&ct);
        assert_eq!(
            sub.lub(&store, &Type::nominal("Integer"), &Type::nominal("Float")),
            Type::nominal("Numeric")
        );
        assert_eq!(
            sub.lub(&store, &Type::nominal("Integer"), &Type::nominal("Integer")),
            Type::nominal("Integer")
        );
        let u = sub.lub(&store, &Type::nominal("String"), &Type::array(Type::Top));
        assert!(matches!(u, Type::Union(_)));
        assert_eq!(sub.lub_all(&store, &[]), Type::Bot);
    }

    #[test]
    fn constrain_records_and_replays() {
        let (ct, mut store) = setup();
        let sub = Subtyper::new(&ct);
        let t = store.new_tuple(vec![Type::nominal("Integer"), Type::nominal("String")]);
        assert!(sub.constrain(
            &mut store,
            &t,
            &Type::array(Type::union([Type::nominal("Integer"), Type::nominal("String")])),
            "assignment"
        ));
        let Type::Tuple(id) = t else { panic!() };
        // Weak update with a compatible type: constraints still hold.
        let cs = store.weak_update_tuple(id, 0, Type::nominal("String"));
        assert!(sub.replay(&store, &cs).is_empty());
        // Weak update with an incompatible type: the recorded constraint is
        // now violated and replay reports it.
        let cs = store.weak_update_tuple(id, 1, Type::nominal("Float"));
        let violated = sub.replay(&store, &cs);
        assert_eq!(violated.len(), 1);
        assert_eq!(violated[0].origin, "assignment");
    }

    #[test]
    fn dynamic_is_bidirectional() {
        let (ct, store) = setup();
        let sub = Subtyper::new(&ct);
        assert!(sub.is_subtype(&store, &Type::Dynamic, &Type::nominal("String")));
        assert!(sub.is_subtype(&store, &Type::nominal("String"), &Type::Dynamic));
    }
}
