//! The RDL type language.
//!
//! CompRDL reuses RDL's type representation (paper §2): nominal class types,
//! singleton types (symbols, integers, booleans, `nil`, class objects),
//! generic types, union types, optional argument types, type variables,
//! *finite hash* types (heterogeneous hashes), *tuple* types (heterogeneous
//! arrays), and *const string* types (strings that are never written to,
//! treated as singletons; §2.2).
//!
//! Tuple, finite-hash and const-string types are **mutable**: RDL performs
//! weak updates on them when the underlying value is mutated (§4).  They are
//! therefore represented as indices into a [`TypeStore`](crate::store::TypeStore)
//! rather than inline data, so that aliases share a single entry exactly as
//! RDL's Ruby objects do.

use std::fmt;

/// Index of a tuple type in the [`TypeStore`](crate::store::TypeStore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId(pub u32);

/// Index of a finite hash type in the [`TypeStore`](crate::store::TypeStore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiniteHashId(pub u32);

/// Index of a const string type in the [`TypeStore`](crate::store::TypeStore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstStringId(pub u32);

/// A value that may inhabit a singleton type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SingVal {
    /// `nil`.
    Nil,
    /// `true`.
    True,
    /// `false`.
    False,
    /// An integer constant.
    Int(i64),
    /// A float constant, stored by bit pattern so the type is `Eq`/`Hash`.
    FloatBits(u64),
    /// A symbol such as `:emails`.
    Sym(String),
    /// A class object such as `User` (the receiver of `User.exists?`).
    Class(String),
}

impl SingVal {
    /// A float singleton value.
    pub fn float(f: f64) -> Self {
        SingVal::FloatBits(f.to_bits())
    }

    /// The name of the class this value belongs to.
    pub fn class_of(&self) -> &str {
        match self {
            SingVal::Nil => "NilClass",
            SingVal::True => "TrueClass",
            SingVal::False => "FalseClass",
            SingVal::Int(_) => "Integer",
            SingVal::FloatBits(_) => "Float",
            SingVal::Sym(_) => "Symbol",
            SingVal::Class(_) => "Class",
        }
    }
}

impl fmt::Display for SingVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SingVal::Nil => write!(f, "nil"),
            SingVal::True => write!(f, "true"),
            SingVal::False => write!(f, "false"),
            SingVal::Int(i) => write!(f, "{i}"),
            SingVal::FloatBits(b) => write!(f, "{}", f64::from_bits(*b)),
            SingVal::Sym(s) => write!(f, ":{s}"),
            SingVal::Class(c) => write!(f, "${{{c}}}"),
        }
    }
}

/// A key of a finite hash type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HashKey {
    /// A symbol key (`{ info: ... }`).
    Sym(String),
    /// A string key.
    Str(String),
    /// An integer key.
    Int(i64),
}

impl fmt::Display for HashKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HashKey::Sym(s) => write!(f, "{s}:"),
            HashKey::Str(s) => write!(f, "{s:?} =>"),
            HashKey::Int(i) => write!(f, "{i} =>"),
        }
    }
}

/// An RDL type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// `%any` — the top type.
    Top,
    /// `%bot` — the bottom type.
    Bot,
    /// `%bool` — `true or false`.
    Bool,
    /// `%dyn` — the dynamic type, compatible in both directions.
    Dynamic,
    /// A nominal class type such as `String`.
    Nominal(String),
    /// A singleton type containing exactly one value.
    Singleton(SingVal),
    /// A generic instantiation such as `Array<String>` or `Table<{...}>`.
    Generic {
        /// The base class name.
        base: String,
        /// The type arguments.
        args: Vec<Type>,
    },
    /// A union `T1 or T2 or ...` (kept sorted and deduplicated).
    Union(Vec<Type>),
    /// An optional argument type `?T` (only meaningful in parameter position).
    Optional(Box<Type>),
    /// A vararg type `*T` (only meaningful in parameter position).
    Vararg(Box<Type>),
    /// A type variable such as `t`, `k`, `v`.
    Var(String),
    /// A tuple (heterogeneous array) type, stored in the type store.
    Tuple(TupleId),
    /// A finite hash (heterogeneous hash) type, stored in the type store.
    FiniteHash(FiniteHashId),
    /// A const string type, stored in the type store.
    ConstString(ConstStringId),
}

impl Type {
    /// The nominal `Object` type.
    pub fn object() -> Type {
        Type::Nominal("Object".to_string())
    }

    /// A nominal type with the given class name.
    pub fn nominal(name: impl Into<String>) -> Type {
        Type::Nominal(name.into())
    }

    /// The singleton type of a symbol.
    pub fn sym(name: impl Into<String>) -> Type {
        Type::Singleton(SingVal::Sym(name.into()))
    }

    /// The singleton type of an integer.
    pub fn int(value: i64) -> Type {
        Type::Singleton(SingVal::Int(value))
    }

    /// The singleton type of a class object.
    pub fn class_of(name: impl Into<String>) -> Type {
        Type::Singleton(SingVal::Class(name.into()))
    }

    /// The singleton type of `nil`.
    pub fn nil() -> Type {
        Type::Singleton(SingVal::Nil)
    }

    /// `Array<elem>`.
    pub fn array(elem: Type) -> Type {
        Type::Generic { base: "Array".to_string(), args: vec![elem] }
    }

    /// `Hash<key, value>`.
    pub fn hash(key: Type, value: Type) -> Type {
        Type::Generic { base: "Hash".to_string(), args: vec![key, value] }
    }

    /// `Table<schema>` — the generic DB table type introduced in §2.1.
    pub fn table(schema: Type) -> Type {
        Type::Generic { base: "Table".to_string(), args: vec![schema] }
    }

    /// Builds a normalized union of the given types: flattens nested unions,
    /// removes duplicates and `%bot`, and collapses singleton-element unions.
    pub fn union(types: impl IntoIterator<Item = Type>) -> Type {
        let mut flat: Vec<Type> = Vec::new();
        fn push(t: Type, out: &mut Vec<Type>) {
            match t {
                Type::Union(ts) => {
                    for t in ts {
                        push(t, out);
                    }
                }
                Type::Bot => {}
                other => {
                    if !out.contains(&other) {
                        out.push(other);
                    }
                }
            }
        }
        for t in types {
            push(t, &mut flat);
        }
        if flat.contains(&Type::Top) {
            return Type::Top;
        }
        // Collapse `true or false` into `%bool`.
        let has_true = flat.contains(&Type::Singleton(SingVal::True));
        let has_false = flat.contains(&Type::Singleton(SingVal::False));
        if has_true && has_false {
            flat.retain(|t| {
                !matches!(t, Type::Singleton(SingVal::True) | Type::Singleton(SingVal::False))
            });
            if !flat.contains(&Type::Bool) {
                flat.push(Type::Bool);
            }
        }
        flat.sort();
        flat.dedup();
        match flat.len() {
            0 => Type::Bot,
            1 => flat.pop().expect("non-empty"),
            _ => Type::Union(flat),
        }
    }

    /// True for the three kinds of mutable (store-backed) types.
    pub fn is_store_backed(&self) -> bool {
        matches!(self, Type::Tuple(_) | Type::FiniteHash(_) | Type::ConstString(_))
    }

    /// True if the type mentions a store-backed type anywhere in its
    /// structure (including inside generics, unions and optional/vararg
    /// wrappers).  Used by the comp-type evaluation cache to decide whether
    /// an entry must be revalidated against the store generation.
    pub fn contains_store_backed(&self) -> bool {
        match self {
            Type::Tuple(_) | Type::FiniteHash(_) | Type::ConstString(_) => true,
            Type::Generic { args, .. } => args.iter().any(Type::contains_store_backed),
            Type::Union(ts) => ts.iter().any(Type::contains_store_backed),
            Type::Optional(t) | Type::Vararg(t) => t.contains_store_backed(),
            _ => false,
        }
    }

    /// True if the type is a singleton type (including const strings, which
    /// CompRDL treats as singletons; §2.2).
    pub fn is_singleton(&self) -> bool {
        matches!(self, Type::Singleton(_) | Type::ConstString(_))
    }

    /// Returns the type variables that occur free in this type.
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Type::Var(v) => out.push(v.clone()),
            Type::Generic { args, .. } => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Type::Union(ts) => {
                for t in ts {
                    t.collect_vars(out);
                }
            }
            Type::Optional(t) | Type::Vararg(t) => t.collect_vars(out),
            _ => {}
        }
    }

    /// True if the type mentions no type variables.
    pub fn is_ground(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Substitutes type variables using `lookup` (variables with no mapping
    /// are left in place).
    pub fn subst(&self, lookup: &dyn Fn(&str) -> Option<Type>) -> Type {
        match self {
            Type::Var(v) => lookup(v).unwrap_or_else(|| self.clone()),
            Type::Generic { base, args } => Type::Generic {
                base: base.clone(),
                args: args.iter().map(|a| a.subst(lookup)).collect(),
            },
            Type::Union(ts) => Type::union(ts.iter().map(|t| t.subst(lookup))),
            Type::Optional(t) => Type::Optional(Box::new(t.subst(lookup))),
            Type::Vararg(t) => Type::Vararg(Box::new(t.subst(lookup))),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Top => write!(f, "%any"),
            Type::Bot => write!(f, "%bot"),
            Type::Bool => write!(f, "%bool"),
            Type::Dynamic => write!(f, "%dyn"),
            Type::Nominal(n) => write!(f, "{n}"),
            Type::Singleton(v) => write!(f, "{v}"),
            Type::Generic { base, args } => {
                write!(f, "{base}<")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ">")
            }
            Type::Union(ts) => {
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
            Type::Optional(t) => write!(f, "?{t}"),
            Type::Vararg(t) => write!(f, "*{t}"),
            Type::Var(v) => write!(f, "{v}"),
            Type::Tuple(id) => write!(f, "#tuple{}", id.0),
            Type::FiniteHash(id) => write!(f, "#fhash{}", id.0),
            Type::ConstString(id) => write!(f, "#cstr{}", id.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_normalizes() {
        let t = Type::union([Type::nominal("String"), Type::nominal("String"), Type::Bot]);
        assert_eq!(t, Type::nominal("String"));
        let t = Type::union([Type::nominal("String"), Type::nominal("Integer")]);
        assert!(matches!(&t, Type::Union(ts) if ts.len() == 2));
        let t2 = Type::union([t.clone(), Type::nominal("Integer")]);
        assert_eq!(t, t2);
    }

    #[test]
    fn union_collapses_bools_and_top() {
        let t = Type::union([Type::Singleton(SingVal::True), Type::Singleton(SingVal::False)]);
        assert_eq!(t, Type::Bool);
        let t = Type::union([Type::nominal("String"), Type::Top]);
        assert_eq!(t, Type::Top);
        assert_eq!(Type::union([]), Type::Bot);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::sym("emails").to_string(), ":emails");
        assert_eq!(Type::array(Type::nominal("String")).to_string(), "Array<String>");
        assert_eq!(
            Type::union([Type::nominal("Integer"), Type::nominal("String")]).to_string(),
            "Integer or String"
        );
        assert_eq!(Type::class_of("User").to_string(), "${User}");
        assert_eq!(Type::Optional(Box::new(Type::Bool)).to_string(), "?%bool");
    }

    #[test]
    fn vars_and_substitution() {
        let t = Type::Generic {
            base: "Hash".into(),
            args: vec![Type::Var("k".into()), Type::Var("v".into())],
        };
        assert_eq!(t.free_vars(), vec!["k".to_string(), "v".to_string()]);
        assert!(!t.is_ground());
        let s = t.subst(&|v| {
            if v == "k" {
                Some(Type::nominal("Symbol"))
            } else {
                Some(Type::nominal("Object"))
            }
        });
        assert_eq!(s, Type::hash(Type::nominal("Symbol"), Type::nominal("Object")));
        assert!(s.is_ground());
    }

    #[test]
    fn singleton_classification() {
        assert!(Type::sym("a").is_singleton());
        assert!(!Type::nominal("Symbol").is_singleton());
        assert_eq!(SingVal::Sym("a".into()).class_of(), "Symbol");
        assert_eq!(SingVal::Int(3).class_of(), "Integer");
        assert_eq!(SingVal::float(1.5).class_of(), "Float");
    }
}
