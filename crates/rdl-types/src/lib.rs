//! # rdl-types
//!
//! The RDL type language used by the CompRDL-rs reproduction of *"Type-Level
//! Computations for Ruby Libraries"* (PLDI 2019): the type representation
//! (nominal, singleton, generic, union, optional, variable, tuple, finite
//! hash and const string types), the class hierarchy, subtyping and joins,
//! the mutable [`TypeStore`] with promotion and weak updates, method
//! signatures with comp types and effects, and a parser for the textual
//! annotation language.
//!
//! ## Quick start
//!
//! ```
//! use rdl_types::{ClassTable, Subtyper, Type, TypeStore, parse_method_sig};
//!
//! let classes = ClassTable::with_builtins();
//! let store = TypeStore::new();
//! let sub = Subtyper::new(&classes);
//! assert!(sub.is_subtype(&store, &Type::sym("emails"), &Type::nominal("Symbol")));
//!
//! let sig = parse_method_sig("(t<:Symbol) -> «schema_type(tself)»").unwrap();
//! assert!(sig.is_comp());
//! ```

#![warn(missing_docs)]

pub mod class;
pub mod fingerprint;
pub mod intern;
pub mod parse;
pub mod sig;
pub mod store;
pub mod subtype;
pub mod ty;

pub use class::{ClassInfo, ClassTable};
pub use fingerprint::Fingerprint;
pub use intern::{intern, InternStats, TypeId};
pub use parse::{parse_method_sig, parse_type_expr, SigParseError};
pub use sig::{
    AnnotationTable, CompSpec, MethodKind, MethodSig, ParamSig, PurityEffect, TermEffect, TypeExpr,
};
pub use store::{ConstStringData, Constraint, FiniteHashData, StoreShift, TupleData, TypeStore};
pub use subtype::{verdict_cache, Subtyper};
pub use ty::{ConstStringId, FiniteHashId, HashKey, SingVal, TupleId, Type};

// Deterministic property tests. The container has no crates.io access, so
// instead of `proptest` these use a seeded xorshift generator to draw a few
// thousand random store-free types and assert the same algebraic properties
// a shrinking property tester would.
#[cfg(test)]
mod proptests {
    use super::*;

    use test_rng::Rng;

    fn leaf_type(rng: &mut Rng) -> Type {
        match rng.below(19) {
            0 => Type::Top,
            1 => Type::Bot,
            2 => Type::Bool,
            3 => Type::nominal("Object"),
            4 => Type::nominal("String"),
            5 => Type::nominal("Integer"),
            6 => Type::nominal("Float"),
            7 => Type::nominal("Numeric"),
            8 => Type::nominal("Symbol"),
            9 => Type::nominal("Array"),
            10 => Type::nominal("Hash"),
            11 => Type::sym("emails"),
            12 => Type::sym("users"),
            13 => Type::int(0),
            14 => Type::int(42),
            15 => Type::nil(),
            16 => Type::Singleton(SingVal::True),
            17 => Type::Singleton(SingVal::False),
            _ => Type::class_of("User"),
        }
    }

    fn arb_type(rng: &mut Rng, depth: u32) -> Type {
        if depth == 0 || rng.below(2) == 0 {
            return leaf_type(rng);
        }
        match rng.below(3) {
            0 => Type::array(arb_type(rng, depth - 1)),
            1 => Type::hash(arb_type(rng, depth - 1), arb_type(rng, depth - 1)),
            _ => {
                let n = 1 + rng.below(3) as usize;
                Type::union((0..n).map(|_| arb_type(rng, depth - 1)))
            }
        }
    }

    const CASES: usize = 2000;

    /// Subtyping is reflexive, and everything is below Top / above Bot.
    #[test]
    fn subtyping_reflexive_top_bot() {
        let classes = ClassTable::with_builtins();
        let store = TypeStore::new();
        let sub = Subtyper::new(&classes);
        let mut rng = Rng::new(0xC0FFEE);
        for _ in 0..CASES {
            let t = arb_type(&mut rng, 3);
            assert!(sub.is_subtype(&store, &t, &t), "{t} not <= itself");
            assert!(sub.is_subtype(&store, &t, &Type::Top), "{t} not <= Top");
            assert!(sub.is_subtype(&store, &Type::Bot, &t), "Bot not <= {t}");
        }
    }

    /// Subtyping is transitive on the generated fragment.
    #[test]
    fn subtyping_transitive() {
        let classes = ClassTable::with_builtins();
        let store = TypeStore::new();
        let sub = Subtyper::new(&classes);
        let mut rng = Rng::new(0xBADCAB);
        for _ in 0..CASES {
            let a = arb_type(&mut rng, 2);
            let b = arb_type(&mut rng, 2);
            let c = arb_type(&mut rng, 2);
            if sub.is_subtype(&store, &a, &b) && sub.is_subtype(&store, &b, &c) {
                assert!(sub.is_subtype(&store, &a, &c), "transitivity failed: {a} <= {b} <= {c}");
            }
        }
    }

    /// The join is an upper bound of both inputs.
    #[test]
    fn lub_is_upper_bound() {
        let classes = ClassTable::with_builtins();
        let store = TypeStore::new();
        let sub = Subtyper::new(&classes);
        let mut rng = Rng::new(0xFEED01);
        for _ in 0..CASES {
            let a = arb_type(&mut rng, 3);
            let b = arb_type(&mut rng, 3);
            let j = sub.lub(&store, &a, &b);
            assert!(sub.is_subtype(&store, &a, &j), "{a} not <= lub {j}");
            assert!(sub.is_subtype(&store, &b, &j), "{b} not <= lub {j}");
        }
    }

    /// Union normalization is idempotent and order insensitive.
    #[test]
    fn union_normalization() {
        let mut rng = Rng::new(0xD00DAD);
        for _ in 0..CASES {
            let a = arb_type(&mut rng, 3);
            let b = arb_type(&mut rng, 3);
            let c = arb_type(&mut rng, 3);
            let u1 = Type::union([a.clone(), b.clone(), c.clone()]);
            let u2 = Type::union([c, a, b]);
            assert_eq!(u1, u2);
            assert_eq!(Type::union([u1.clone()]), u1);
        }
    }

    /// The interned fast paths (id short-circuit + verdict cache for
    /// subtyping, precomputed digests, cached renders) are observationally
    /// identical to the structural-walk oracles on random store-free types.
    #[test]
    fn interned_paths_match_structural_oracles() {
        let classes = ClassTable::with_builtins();
        let store = TypeStore::new();
        let sub = Subtyper::new(&classes);
        let mut rng = Rng::new(0x1D0C0DE);
        for _ in 0..CASES {
            let a = arb_type(&mut rng, 3);
            let b = arb_type(&mut rng, 3);
            assert_eq!(
                sub.is_subtype(&store, &a, &b),
                sub.is_subtype_uncached(&store, &a, &b),
                "cached subtype verdict diverged for {a} <= {b}"
            );
            assert_eq!(
                store.fingerprint(&a),
                store.fingerprint_uncached(&a),
                "interned digest diverged for {a}"
            );
            assert_eq!(store.render(&a), store.render_uncached(&a), "render diverged for {a}");
            assert_eq!(store.render(&a), a.to_string(), "store-free render must equal Display");
            // Interning agrees with structural equality in both directions.
            assert_eq!(intern(&a) == intern(&b), a == b, "id equality diverged for {a} / {b}");
        }
    }

    /// Display of a type round-trips through the annotation parser for
    /// store-free types.
    #[test]
    fn display_parses_back() {
        let mut rng = Rng::new(0x5EED5A);
        for _ in 0..CASES {
            let t = arb_type(&mut rng, 3);
            let printed = t.to_string();
            let reparsed = parse_type_expr(&printed);
            assert!(reparsed.is_ok(), "failed to reparse {printed}");
            let mut store = TypeStore::new();
            let t2 = reparsed.unwrap().instantiate(&mut store);
            assert_eq!(t2.to_string(), printed);
        }
    }
}
