//! # rdl-types
//!
//! The RDL type language used by the CompRDL-rs reproduction of *"Type-Level
//! Computations for Ruby Libraries"* (PLDI 2019): the type representation
//! (nominal, singleton, generic, union, optional, variable, tuple, finite
//! hash and const string types), the class hierarchy, subtyping and joins,
//! the mutable [`TypeStore`] with promotion and weak updates, method
//! signatures with comp types and effects, and a parser for the textual
//! annotation language.
//!
//! ## Quick start
//!
//! ```
//! use rdl_types::{ClassTable, Subtyper, Type, TypeStore, parse_method_sig};
//!
//! let classes = ClassTable::with_builtins();
//! let store = TypeStore::new();
//! let sub = Subtyper::new(&classes);
//! assert!(sub.is_subtype(&store, &Type::sym("emails"), &Type::nominal("Symbol")));
//!
//! let sig = parse_method_sig("(t<:Symbol) -> «schema_type(tself)»").unwrap();
//! assert!(sig.is_comp());
//! ```

#![warn(missing_docs)]

pub mod class;
pub mod parse;
pub mod sig;
pub mod store;
pub mod subtype;
pub mod ty;

pub use class::{ClassInfo, ClassTable};
pub use parse::{parse_method_sig, parse_type_expr, SigParseError};
pub use sig::{
    AnnotationTable, CompSpec, MethodKind, MethodSig, ParamSig, PurityEffect, TermEffect, TypeExpr,
};
pub use store::{Constraint, ConstStringData, FiniteHashData, TupleData, TypeStore};
pub use subtype::Subtyper;
pub use ty::{ConstStringId, FiniteHashId, HashKey, SingVal, TupleId, Type};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_type() -> impl Strategy<Value = Type> {
        let leaf = prop_oneof![
            Just(Type::Top),
            Just(Type::Bot),
            Just(Type::Bool),
            Just(Type::nominal("Object")),
            Just(Type::nominal("String")),
            Just(Type::nominal("Integer")),
            Just(Type::nominal("Float")),
            Just(Type::nominal("Numeric")),
            Just(Type::nominal("Symbol")),
            Just(Type::nominal("Array")),
            Just(Type::nominal("Hash")),
            Just(Type::sym("emails")),
            Just(Type::sym("users")),
            Just(Type::int(0)),
            Just(Type::int(42)),
            Just(Type::nil()),
            Just(Type::Singleton(SingVal::True)),
            Just(Type::Singleton(SingVal::False)),
            Just(Type::class_of("User")),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                inner.clone().prop_map(Type::array),
                (inner.clone(), inner.clone()).prop_map(|(k, v)| Type::hash(k, v)),
                prop::collection::vec(inner.clone(), 1..4).prop_map(Type::union),
            ]
        })
    }

    proptest! {
        /// Subtyping is reflexive.
        #[test]
        fn subtyping_reflexive(t in arb_type()) {
            let classes = ClassTable::with_builtins();
            let store = TypeStore::new();
            let sub = Subtyper::new(&classes);
            prop_assert!(sub.is_subtype(&store, &t, &t));
        }

        /// Everything is below Top and above Bot.
        #[test]
        fn subtyping_top_bot(t in arb_type()) {
            let classes = ClassTable::with_builtins();
            let store = TypeStore::new();
            let sub = Subtyper::new(&classes);
            prop_assert!(sub.is_subtype(&store, &t, &Type::Top));
            prop_assert!(sub.is_subtype(&store, &Type::Bot, &t));
        }

        /// Subtyping is transitive on the generated fragment.
        #[test]
        fn subtyping_transitive(a in arb_type(), b in arb_type(), c in arb_type()) {
            let classes = ClassTable::with_builtins();
            let store = TypeStore::new();
            let sub = Subtyper::new(&classes);
            if sub.is_subtype(&store, &a, &b) && sub.is_subtype(&store, &b, &c) {
                prop_assert!(sub.is_subtype(&store, &a, &c),
                    "transitivity failed: {a} <= {b} <= {c}");
            }
        }

        /// The join is an upper bound of both inputs.
        #[test]
        fn lub_is_upper_bound(a in arb_type(), b in arb_type()) {
            let classes = ClassTable::with_builtins();
            let store = TypeStore::new();
            let sub = Subtyper::new(&classes);
            let j = sub.lub(&store, &a, &b);
            prop_assert!(sub.is_subtype(&store, &a, &j), "{a} not <= lub {j}");
            prop_assert!(sub.is_subtype(&store, &b, &j), "{b} not <= lub {j}");
        }

        /// Union normalization is idempotent and order insensitive.
        #[test]
        fn union_normalization(a in arb_type(), b in arb_type(), c in arb_type()) {
            let u1 = Type::union([a.clone(), b.clone(), c.clone()]);
            let u2 = Type::union([c, a, b]);
            prop_assert_eq!(u1.clone(), u2);
            prop_assert_eq!(Type::union([u1.clone()]), u1);
        }

        /// Display of a type round-trips through the annotation parser for
        /// store-free types.
        #[test]
        fn display_parses_back(t in arb_type()) {
            let printed = t.to_string();
            let reparsed = parse_type_expr(&printed);
            prop_assert!(reparsed.is_ok(), "failed to reparse {printed}");
            let mut store = TypeStore::new();
            let t2 = reparsed.unwrap().instantiate(&mut store);
            prop_assert_eq!(t2.to_string(), printed);
        }
    }
}
