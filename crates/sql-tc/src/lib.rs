//! # sql-tc
//!
//! A small SQL type checker, reproducing CompRDL's raw-SQL checking
//! (paper §2.3): raw SQL fragments that appear inside `where(...)` calls are
//! completed into artificial-but-parseable `SELECT` statements, `?`
//! placeholders are replaced by typed placeholder nodes carrying the Ruby
//! argument types, and the resulting WHERE clause is checked against the
//! database schema.
//!
//! ## Quick start
//!
//! ```
//! use sql_tc::{check_fragment, SqlSchema, SqlType};
//!
//! let mut schema = SqlSchema::new();
//! schema.add_table("topics", &[("id", SqlType::Integer), ("title", SqlType::Text)]);
//!
//! // `title` is TEXT, comparing it with an Integer placeholder is an error.
//! let errors = check_fragment(&schema, &["topics".into()], "title = ?", &[SqlType::Integer]);
//! assert_eq!(errors.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod checker;
pub mod parser;

pub use checker::{
    check_fragment, check_select, complete_fragment, complete_fragment_with_map, FragmentMap,
    SqlSchema, SqlTypeError,
};
pub use parser::{parse_condition, parse_select, Cond, Select, SqlExpr, SqlParseError, SqlType};
