//! Type checking of parsed SQL against a schema (paper §2.3).

use crate::parser::{Cond, Select, SqlExpr, SqlParseError, SqlType};
use diagnostics::Span;
use std::collections::BTreeMap;
use std::fmt;

/// A database schema: table name → (column name → SQL type).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SqlSchema {
    tables: BTreeMap<String, BTreeMap<String, SqlType>>,
}

impl SqlSchema {
    /// An empty schema.
    pub fn new() -> Self {
        SqlSchema::default()
    }

    /// Adds a table with its columns.
    pub fn add_table(&mut self, name: &str, columns: &[(&str, SqlType)]) {
        self.tables
            .insert(name.to_string(), columns.iter().map(|(c, t)| (c.to_string(), *t)).collect());
    }

    /// True if the schema knows the table.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Looks up a column's type within specific tables.
    pub fn column_type(&self, tables: &[String], column: &str) -> Option<SqlType> {
        for t in tables {
            if let Some(cols) = self.tables.get(t) {
                if let Some(ty) = cols.get(column) {
                    return Some(*ty);
                }
            }
        }
        None
    }

    /// All table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }
}

/// An error found while type checking SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlTypeError {
    /// Description of the problem.
    pub message: String,
    /// Where in the (completed) SQL text the problem is; dummy when the
    /// error concerns something with no SQL-text location (e.g. a table
    /// name supplied from the Ruby side).
    pub span: Span,
}

impl SqlTypeError {
    /// Creates an error with no usable location.
    pub fn new(message: impl Into<String>) -> Self {
        SqlTypeError { message: message.into(), span: Span::dummy() }
    }

    /// Creates an error located at `span`.
    pub fn at(message: impl Into<String>, span: Span) -> Self {
        SqlTypeError { message: message.into(), span }
    }
}

impl fmt::Display for SqlTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL type error: {}", self.message)
    }
}

impl std::error::Error for SqlTypeError {}

impl From<SqlParseError> for SqlTypeError {
    fn from(e: SqlParseError) -> Self {
        SqlTypeError { message: e.message, span: e.span }
    }
}

impl From<SqlTypeError> for diagnostics::Diagnostic {
    fn from(e: SqlTypeError) -> Self {
        let mut d = diagnostics::Diagnostic::error("SQL0002", e.message.clone());
        if !e.span.is_dummy() {
            d = d.with_label(e.span, "in this SQL");
        }
        d.with_note("the span is relative to the SQL text that was checked")
    }
}

/// The SQL-text span of an expression, when it has one (column references
/// carry their location; literals and placeholders do not need one).
fn expr_span(e: &SqlExpr) -> Span {
    match e {
        SqlExpr::Column { span, .. } => *span,
        _ => Span::dummy(),
    }
}

/// A byte-level mapping from a completed query (see [`complete_fragment`])
/// back to the raw WHERE fragment it was built from, so spans produced
/// against the completed text can be translated into spans inside the
/// original Ruby string literal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FragmentMap {
    /// For each byte of the completed query: the fragment byte it came from
    /// (`None` for the synthesized `SELECT ... WHERE` prefix; every byte of
    /// an expanded `[Type]` placeholder maps to its originating `?`).
    frag_of: Vec<Option<usize>>,
}

impl FragmentMap {
    /// Translates a span in completed-query coordinates into fragment
    /// coordinates.  Returns `None` when the span is dummy or lies entirely
    /// inside the synthesized prefix.
    pub fn to_fragment(&self, span: Span, fragment: &str) -> Option<Span> {
        if span.is_dummy() || span.start >= self.frag_of.len() {
            return None;
        }
        let start =
            self.frag_of[span.start..span.end.min(self.frag_of.len())].iter().find_map(|m| *m)?;
        let end = self.frag_of[span.start..span.end.min(self.frag_of.len())]
            .iter()
            .rev()
            .find_map(|m| *m)
            .map(|b| b + 1)
            .unwrap_or(start + 1);
        let line = 1 + fragment[..start.min(fragment.len())].matches('\n').count() as u32;
        Some(Span::new(start, end.min(fragment.len()), line))
    }

    /// Rewrites an error's span into fragment coordinates (dummy when the
    /// span does not map back into the fragment).
    fn map_error(&self, mut e: SqlTypeError, fragment: &str) -> SqlTypeError {
        e.span = self.to_fragment(e.span, fragment).unwrap_or_else(Span::dummy);
        e
    }
}

/// Completes a WHERE fragment into a full, artificial `SELECT` query so it
/// can be parsed (paper §2.3): the fragment is wrapped into
/// `SELECT * FROM <t0> INNER JOIN <t1> ON a.id = b.a_id WHERE <fragment>`,
/// and each `?` is replaced with a `[Type]` placeholder taken from
/// `arg_types`.
pub fn complete_fragment(fragment: &str, tables: &[String], arg_types: &[SqlType]) -> String {
    complete_fragment_with_map(fragment, tables, arg_types).0
}

/// [`complete_fragment`] plus the [`FragmentMap`] that translates spans in
/// the completed query back to fragment offsets.
pub fn complete_fragment_with_map(
    fragment: &str,
    tables: &[String],
    arg_types: &[SqlType],
) -> (String, FragmentMap) {
    let mut sql = String::from("SELECT * FROM ");
    if tables.is_empty() {
        sql.push_str("unknown_table");
    } else {
        sql.push_str(&tables[0]);
        for t in &tables[1..] {
            sql.push_str(" INNER JOIN ");
            sql.push_str(t);
            sql.push_str(" ON a.id = b.a_id");
        }
    }
    sql.push_str(" WHERE ");
    let mut frag_of: Vec<Option<usize>> = vec![None; sql.len()];
    // Replace each ? with the corresponding typed placeholder, tracking
    // which fragment byte every completed byte came from.
    let mut next_arg = 0usize;
    for (offset, c) in fragment.char_indices() {
        if c == '?' {
            let ty = arg_types.get(next_arg).copied().unwrap_or(SqlType::Unknown);
            next_arg += 1;
            let placeholder = match ty {
                SqlType::Integer => "[Integer]",
                SqlType::Text => "[String]",
                SqlType::Float => "[Float]",
                SqlType::Boolean => "[Boolean]",
                SqlType::Unknown => "[Unknown]",
            };
            sql.push_str(placeholder);
            frag_of.extend(std::iter::repeat_n(Some(offset), placeholder.len()));
        } else {
            sql.push(c);
            frag_of.extend(std::iter::repeat_n(Some(offset), c.len_utf8()));
        }
    }
    (sql, FragmentMap { frag_of })
}

/// Type checks a complete `SELECT` against the schema.  Only the WHERE
/// clause is checked (as in the paper); unknown tables and columns, and
/// comparisons between incompatible types, are errors.
pub fn check_select(schema: &SqlSchema, select: &Select) -> Vec<SqlTypeError> {
    let mut errors = Vec::new();
    let mut tables = vec![select.from.clone()];
    tables.extend(select.joins.iter().cloned());
    for t in &tables {
        if !schema.has_table(t) {
            errors.push(SqlTypeError::new(format!("unknown table `{t}`")));
        }
    }
    if let Some(cond) = &select.where_clause {
        check_cond(schema, &tables, cond, &mut errors);
    }
    errors
}

/// Convenience entry point used by the `where` comp type: completes the raw
/// `fragment` against `tables`, parses it and type checks it.  Error spans
/// are mapped back through [`complete_fragment`] into coordinates of the
/// original `fragment`, so callers can point diagnostics into the Ruby
/// string literal the fragment came from (errors about synthesized parts of
/// the query carry a dummy span).
///
/// # Errors
///
/// Returns every parse or type error found (an empty vector means the
/// fragment is well typed).
pub fn check_fragment(
    schema: &SqlSchema,
    tables: &[String],
    fragment: &str,
    arg_types: &[SqlType],
) -> Vec<SqlTypeError> {
    let (sql, map) = complete_fragment_with_map(fragment, tables, arg_types);
    let errors = match crate::parser::parse_select(&sql) {
        Ok(select) => check_select(schema, &select),
        Err(e) => vec![e.into()],
    };
    errors.into_iter().map(|e| map.map_error(e, fragment)).collect()
}

fn check_cond(schema: &SqlSchema, tables: &[String], cond: &Cond, errors: &mut Vec<SqlTypeError>) {
    match cond {
        Cond::And(a, b) | Cond::Or(a, b) => {
            check_cond(schema, tables, a, errors);
            check_cond(schema, tables, b, errors);
        }
        Cond::Not(inner) => check_cond(schema, tables, inner, errors),
        Cond::IsNull { expr, .. } => {
            let _ = expr_type(schema, tables, expr, errors);
        }
        Cond::Expr(e) => {
            let t = expr_type(schema, tables, e, errors);
            if let Some(t) = t {
                if t != SqlType::Boolean && t != SqlType::Unknown {
                    errors.push(SqlTypeError::at(
                        format!("expression of type {t} used as a condition"),
                        expr_span(e),
                    ));
                }
            }
        }
        Cond::Compare { lhs, op, rhs } => {
            let lt = expr_type(schema, tables, lhs, errors);
            let rt = expr_type(schema, tables, rhs, errors);
            if let (Some(lt), Some(rt)) = (lt, rt) {
                if !compatible(lt, rt) {
                    errors.push(SqlTypeError::at(
                        format!(
                            "cannot compare {lt} {op} {rt} ({} vs {})",
                            describe(lhs),
                            describe(rhs)
                        ),
                        expr_span(lhs).merge(expr_span(rhs)),
                    ));
                }
            }
        }
        Cond::InList { expr, list } => {
            let et = expr_type(schema, tables, expr, errors);
            for item in list {
                let it = expr_type(schema, tables, item, errors);
                if let (Some(et), Some(it)) = (et, it) {
                    if !compatible(et, it) {
                        errors.push(SqlTypeError::at(
                            format!(
                                "IN list element of type {it} is incompatible with {} of type {et}",
                                describe(expr)
                            ),
                            expr_span(expr).merge(expr_span(item)),
                        ));
                    }
                }
            }
        }
        Cond::InSelect { expr, select } => {
            let et = expr_type(schema, tables, expr, errors);
            // The nested query is checked in its own table scope.
            let mut inner_tables = vec![select.from.clone()];
            inner_tables.extend(select.joins.iter().cloned());
            for t in &inner_tables {
                if !schema.has_table(t) {
                    errors.push(SqlTypeError::new(format!("unknown table `{t}`")));
                }
            }
            if let Some(cond) = &select.where_clause {
                check_cond(schema, &inner_tables, cond, errors);
            }
            // The inner SELECT must produce a single column compatible with
            // the tested expression — this is exactly the injected Discourse
            // bug from Figure 3 (searching a string in a set of integers).
            if select.columns.len() == 1 {
                let inner_ty = expr_type(schema, &inner_tables, &select.columns[0], errors);
                if let (Some(et), Some(it)) = (et, inner_ty) {
                    if !compatible(et, it) {
                        errors.push(SqlTypeError::at(
                            format!(
                                "{} has type {et} but the subquery returns {it}",
                                describe(expr)
                            ),
                            expr_span(expr).merge(expr_span(&select.columns[0])),
                        ));
                    }
                }
            }
        }
    }
}

fn describe(e: &SqlExpr) -> String {
    match e {
        SqlExpr::Column { table: Some(t), column, .. } => format!("{t}.{column}"),
        SqlExpr::Column { table: None, column, .. } => column.clone(),
        SqlExpr::Int(i) => i.to_string(),
        SqlExpr::Float(f) => f.to_string(),
        SqlExpr::Str(s) => format!("'{s}'"),
        SqlExpr::Bool(b) => b.to_string(),
        SqlExpr::Null => "NULL".to_string(),
        SqlExpr::Placeholder(t) => format!("?[{t}]"),
    }
}

fn expr_type(
    schema: &SqlSchema,
    tables: &[String],
    expr: &SqlExpr,
    errors: &mut Vec<SqlTypeError>,
) -> Option<SqlType> {
    match expr {
        SqlExpr::Int(_) => Some(SqlType::Integer),
        SqlExpr::Float(_) => Some(SqlType::Float),
        SqlExpr::Str(_) => Some(SqlType::Text),
        SqlExpr::Bool(_) => Some(SqlType::Boolean),
        SqlExpr::Null => Some(SqlType::Unknown),
        SqlExpr::Placeholder(t) => Some(*t),
        SqlExpr::Column { table, column, span } => {
            let search: Vec<String> = match table {
                Some(t) => vec![t.clone()],
                None => tables.to_vec(),
            };
            if let Some(t) = table {
                if !schema.has_table(t) {
                    errors.push(SqlTypeError::at(format!("unknown table `{t}`"), *span));
                    return None;
                }
            }
            match schema.column_type(&search, column) {
                Some(t) => Some(t),
                None => {
                    errors.push(SqlTypeError::at(
                        format!("unknown column `{column}` in table(s) {}", search.join(", ")),
                        *span,
                    ));
                    None
                }
            }
        }
    }
}

fn compatible(a: SqlType, b: SqlType) -> bool {
    use SqlType::*;
    matches!(
        (a, b),
        (Unknown, _)
            | (_, Unknown)
            | (Integer, Integer)
            | (Float, Float)
            | (Integer, Float)
            | (Float, Integer)
            | (Text, Text)
            | (Boolean, Boolean)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn discourse_schema() -> SqlSchema {
        let mut s = SqlSchema::new();
        s.add_table(
            "posts",
            &[("id", SqlType::Integer), ("topic_id", SqlType::Integer), ("raw", SqlType::Text)],
        );
        s.add_table("topics", &[("id", SqlType::Integer), ("title", SqlType::Text)]);
        s.add_table(
            "topic_allowed_groups",
            &[("group_id", SqlType::Integer), ("topic_id", SqlType::Integer)],
        );
        s
    }

    #[test]
    fn figure3_bug_is_detected() {
        // topics.title (TEXT) IN (SELECT topic_id (INTEGER) ...) — type error.
        let schema = discourse_schema();
        let errors = check_fragment(
            &schema,
            &["posts".to_string(), "topics".to_string()],
            "topics.title IN (SELECT topic_id FROM topic_allowed_groups WHERE group_id = ?)",
            &[SqlType::Integer],
        );
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].message.contains("subquery"));
    }

    #[test]
    fn corrected_figure3_query_checks() {
        let schema = discourse_schema();
        let errors = check_fragment(
            &schema,
            &["posts".to_string(), "topics".to_string()],
            "topics.id IN (SELECT topic_id FROM topic_allowed_groups WHERE group_id = ?)",
            &[SqlType::Integer],
        );
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn unknown_columns_and_tables_are_errors() {
        let schema = discourse_schema();
        let errors = check_fragment(&schema, &["topics".to_string()], "missing_column = 1", &[]);
        assert!(errors.iter().any(|e| e.message.contains("unknown column")));
        let errors = check_fragment(&schema, &["nonexistent".to_string()], "id = 1", &[]);
        assert!(errors.iter().any(|e| e.message.contains("unknown table")));
    }

    #[test]
    fn comparison_type_mismatches_are_errors() {
        let schema = discourse_schema();
        let errors = check_fragment(&schema, &["topics".to_string()], "title = 3", &[]);
        assert_eq!(errors.len(), 1);
        let errors =
            check_fragment(&schema, &["topics".to_string()], "title = 'x' AND id > 0", &[]);
        assert!(errors.is_empty(), "{errors:?}");
        let errors = check_fragment(&schema, &["topics".to_string()], "id IN (1, 2, 'three')", &[]);
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn placeholders_take_argument_types() {
        let schema = discourse_schema();
        let ok = check_fragment(&schema, &["topics".to_string()], "title = ?", &[SqlType::Text]);
        assert!(ok.is_empty());
        let bad =
            check_fragment(&schema, &["topics".to_string()], "title = ?", &[SqlType::Integer]);
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn fragment_completion_shape() {
        let sql = complete_fragment(
            "group_id = ?",
            &["posts".to_string(), "topics".to_string()],
            &[SqlType::Integer],
        );
        assert!(sql.starts_with("SELECT * FROM posts INNER JOIN topics"));
        assert!(sql.contains("group_id = [Integer]"));
    }

    #[test]
    fn fragment_errors_point_into_the_fragment() {
        let schema = discourse_schema();
        // `title` is at fragment bytes 0..5; the error span must cover it in
        // *fragment* coordinates, not completed-query coordinates.
        let fragment = "title = 3";
        let errors = check_fragment(&schema, &["topics".to_string()], fragment, &[]);
        assert_eq!(errors.len(), 1);
        let span = errors[0].span;
        assert!(!span.is_dummy());
        assert_eq!(span.snippet(fragment), Some("title"));
        assert_eq!(span.line, 1);

        // Placeholder comparisons: the column reference is mid-fragment.
        let fragment = "id > 0 AND title = ?";
        let errors =
            check_fragment(&schema, &["topics".to_string()], fragment, &[SqlType::Integer]);
        assert_eq!(errors.len(), 1);
        let snip = errors[0].span.snippet(fragment).unwrap();
        assert!(snip.starts_with("title"), "{snip:?}");
    }

    #[test]
    fn fragment_map_handles_placeholder_expansion_and_prefix() {
        let fragment = "a = ? AND b = ?";
        let (sql, map) =
            complete_fragment_with_map(fragment, &["t".to_string()], &[SqlType::Integer]);
        // Bytes of the synthesized prefix do not map back.
        let prefix_len = sql.find("a = ").unwrap();
        assert_eq!(map.to_fragment(Span::new(0, 6, 1), fragment), None);
        // A span over the expanded `[Integer]` maps back to the `?` byte.
        let ph = sql.find("[Integer]").unwrap();
        let mapped = map.to_fragment(Span::new(ph, ph + 9, 1), fragment).unwrap();
        assert_eq!(mapped.snippet(fragment), Some("?"));
        // A span over a literal byte maps back exactly.
        let mapped = map.to_fragment(Span::new(prefix_len, prefix_len + 1, 1), fragment).unwrap();
        assert_eq!(mapped.snippet(fragment), Some("a"));
        // The second `?` got no arg type and expands to `[Unknown]`.
        assert!(sql.ends_with("b = [Unknown]"), "{sql}");
    }

    #[test]
    fn null_checks_and_boolean_columns() {
        let mut schema = discourse_schema();
        schema.add_table("users", &[("staged", SqlType::Boolean), ("id", SqlType::Integer)]);
        let errors = check_fragment(&schema, &["users".to_string()], "staged = true", &[]);
        assert!(errors.is_empty(), "{errors:?}");
        let errors = check_fragment(&schema, &["users".to_string()], "id IS NOT NULL", &[]);
        assert!(errors.is_empty());
        let errors = check_fragment(&schema, &["users".to_string()], "id", &[]);
        assert_eq!(errors.len(), 1, "bare non-boolean column as condition");
    }
}
