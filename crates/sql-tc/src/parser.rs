//! Lexer, AST and parser for the SQL subset used by CompRDL's raw-SQL
//! checking (paper §2.3).
//!
//! The subset covers what appears in `where` fragments of the subject
//! programs: `SELECT ... FROM ... [INNER JOIN ... ON ...] [WHERE cond]`,
//! boolean connectives, comparison operators, `IN` with literal lists or
//! nested `SELECT`s, `IS [NOT] NULL`, `LIKE`, and `?` placeholders (replaced
//! by typed placeholder nodes before checking).

use diagnostics::Span;
use std::fmt;

/// A SQL scalar type, as recorded in the schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// `INTEGER` columns (and integer literals).
    Integer,
    /// `VARCHAR` / `TEXT` columns (and string literals).
    Text,
    /// `BOOLEAN` columns.
    Boolean,
    /// `FLOAT` / `REAL` columns.
    Float,
    /// A value whose type is unknown (e.g. `NULL`).
    Unknown,
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SqlType::Integer => "INTEGER",
            SqlType::Text => "TEXT",
            SqlType::Boolean => "BOOLEAN",
            SqlType::Float => "FLOAT",
            SqlType::Unknown => "UNKNOWN",
        };
        f.write_str(s)
    }
}

/// An error produced while lexing or parsing SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlParseError {
    /// Description of the problem.
    pub message: String,
    /// Where in the (completed) SQL text the problem is; dummy when the
    /// error has no usable location.
    pub span: Span,
}

impl SqlParseError {
    /// Creates an error located at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        SqlParseError { message: message.into(), span }
    }
}

impl fmt::Display for SqlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL parse error: {}", self.message)
    }
}

impl std::error::Error for SqlParseError {}

impl From<SqlParseError> for diagnostics::Diagnostic {
    fn from(e: SqlParseError) -> Self {
        let mut d = diagnostics::Diagnostic::error("SQL0001", e.message.clone());
        if !e.span.is_dummy() {
            d = d.with_label(e.span, "in this SQL");
        }
        d.with_note("the span is relative to the completed SQL query text")
    }
}

/// A scalar SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// A column reference, optionally qualified (`topics.title`).
    Column {
        /// Table qualifier, if written.
        table: Option<String>,
        /// Column name.
        column: String,
        /// Where the reference appears in the (completed) SQL text.
        span: Span,
    },
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A string literal.
    Str(String),
    /// `TRUE` / `FALSE`.
    Bool(bool),
    /// `NULL`.
    Null,
    /// A `?` placeholder that has been assigned a type (from the Ruby-side
    /// argument types).
    Placeholder(SqlType),
}

/// A boolean condition (the contents of a WHERE clause).
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// `lhs op rhs` with a comparison operator.
    Compare {
        /// Left operand.
        lhs: SqlExpr,
        /// The operator (`=`, `<>`, `<`, `>`, `<=`, `>=`, `LIKE`).
        op: String,
        /// Right operand.
        rhs: SqlExpr,
    },
    /// `expr IN (e1, e2, ...)`.
    InList {
        /// The tested expression.
        expr: SqlExpr,
        /// The list members.
        list: Vec<SqlExpr>,
    },
    /// `expr IN (SELECT col FROM ...)`.
    InSelect {
        /// The tested expression.
        expr: SqlExpr,
        /// The nested query.
        select: Box<Select>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// The tested expression.
        expr: SqlExpr,
        /// Whether the test is negated.
        negated: bool,
    },
    /// `lhs AND rhs`.
    And(Box<Cond>, Box<Cond>),
    /// `lhs OR rhs`.
    Or(Box<Cond>, Box<Cond>),
    /// `NOT cond`.
    Not(Box<Cond>),
    /// A bare expression used as a condition (e.g. a boolean column).
    Expr(SqlExpr),
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Selected columns (`*` becomes an empty list with `star = true`).
    pub columns: Vec<SqlExpr>,
    /// Whether `SELECT *` was used.
    pub star: bool,
    /// The primary table.
    pub from: String,
    /// Joined tables (via `INNER JOIN x ON a = b`).
    pub joins: Vec<String>,
    /// The WHERE clause, if present.
    pub where_clause: Option<Cond>,
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Int(i64),
    Float(f64),
    Str(String),
    Placeholder,
    TypedPlaceholder(SqlType),
    Symbol(char),
    Le,
    Ge,
    Ne,
    Eof,
}

fn lex(src: &str) -> Result<(Vec<Tok>, Vec<Span>), SqlParseError> {
    let mut out = Vec::new();
    let mut spans = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    // Byte offset of each char (plus a sentinel), so spans stay correct for
    // non-ASCII literals.
    let mut bytes: Vec<usize> = src.char_indices().map(|(b, _)| b).collect();
    bytes.push(src.len());
    let mut line: u32 = 1;
    let span_at = |bytes: &[usize], line: u32, from: usize, to: usize| {
        Span::new(bytes[from], bytes[to.min(bytes.len() - 1)], line)
    };
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let start = i;
        match c {
            c if c.is_whitespace() => {
                if c == '\n' {
                    line += 1;
                }
                i += 1;
            }
            '?' => {
                out.push(Tok::Placeholder);
                spans.push(span_at(&bytes, line, start, start + 1));
                i += 1;
            }
            '[' => {
                // `[Integer]` — a typed placeholder inserted by fragment
                // completion.
                let mut j = i + 1;
                let mut word = String::new();
                while j < chars.len() && chars[j] != ']' {
                    word.push(chars[j]);
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(SqlParseError::new(
                        "unterminated [Type] placeholder",
                        span_at(&bytes, line, start, j),
                    ));
                }
                let ty = match word.trim() {
                    "Integer" => SqlType::Integer,
                    "String" | "Text" => SqlType::Text,
                    "Float" => SqlType::Float,
                    "Boolean" | "%bool" => SqlType::Boolean,
                    _ => SqlType::Unknown,
                };
                out.push(Tok::TypedPlaceholder(ty));
                spans.push(span_at(&bytes, line, start, j + 1));
                i = j + 1;
            }
            '\'' => {
                let mut j = i + 1;
                let mut s = String::new();
                while j < chars.len() && chars[j] != '\'' {
                    s.push(chars[j]);
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(SqlParseError::new(
                        "unterminated string literal",
                        span_at(&bytes, line, start, j),
                    ));
                }
                // Keep the line counter honest across multi-line literals.
                line += s.chars().filter(|&c| c == '\n').count() as u32;
                out.push(Tok::Str(s));
                spans.push(span_at(&bytes, line, start, j + 1));
                i = j + 1;
            }
            '0'..='9' => {
                let mut j = i;
                let mut text = String::new();
                let mut is_float = false;
                while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '.') {
                    if chars[j] == '.' {
                        is_float = true;
                    }
                    text.push(chars[j]);
                    j += 1;
                }
                let num_span = span_at(&bytes, line, start, j);
                if is_float {
                    out.push(Tok::Float(text.parse().map_err(|_| {
                        SqlParseError::new(format!("bad float literal {text}"), num_span)
                    })?));
                } else {
                    out.push(Tok::Int(text.parse().map_err(|_| {
                        SqlParseError::new(format!("bad integer literal {text}"), num_span)
                    })?));
                }
                spans.push(num_span);
                i = j;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut j = i;
                let mut word = String::new();
                while j < chars.len()
                    && (chars[j].is_alphanumeric() || chars[j] == '_' || chars[j] == '.')
                {
                    word.push(chars[j]);
                    j += 1;
                }
                out.push(Tok::Word(word));
                spans.push(span_at(&bytes, line, start, j));
                i = j;
            }
            '<' if chars.get(i + 1) == Some(&'=') => {
                out.push(Tok::Le);
                spans.push(span_at(&bytes, line, start, start + 2));
                i += 2;
            }
            '>' if chars.get(i + 1) == Some(&'=') => {
                out.push(Tok::Ge);
                spans.push(span_at(&bytes, line, start, start + 2));
                i += 2;
            }
            '<' if chars.get(i + 1) == Some(&'>') => {
                out.push(Tok::Ne);
                spans.push(span_at(&bytes, line, start, start + 2));
                i += 2;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Tok::Ne);
                spans.push(span_at(&bytes, line, start, start + 2));
                i += 2;
            }
            '(' | ')' | ',' | '=' | '<' | '>' | '*' => {
                out.push(Tok::Symbol(c));
                spans.push(span_at(&bytes, line, start, start + 1));
                i += 1;
            }
            other => {
                return Err(SqlParseError::new(
                    format!("unexpected character `{other}`"),
                    span_at(&bytes, line, start, start + 1),
                ))
            }
        }
    }
    out.push(Tok::Eof);
    spans.push(Span::new(src.len(), src.len(), line));
    Ok((out, spans))
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<Tok>,
    spans: Vec<Span>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    /// Span of the token [`Parser::peek`] returns.
    fn cur_span(&self) -> Span {
        self.spans[self.pos.min(self.spans.len() - 1)]
    }

    fn bump(&mut self) -> Tok {
        let t = self.peek().clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if let Tok::Word(w) = self.peek() {
            if w.eq_ignore_ascii_case(word) {
                self.bump();
                return true;
            }
        }
        false
    }

    fn expect_word(&mut self, word: &str) -> Result<(), SqlParseError> {
        if self.eat_word(word) {
            Ok(())
        } else {
            Err(SqlParseError::new(
                format!("expected `{word}`, found {:?}", self.peek()),
                self.cur_span(),
            ))
        }
    }

    fn expect_symbol(&mut self, c: char) -> Result<(), SqlParseError> {
        if self.peek() == &Tok::Symbol(c) {
            self.bump();
            Ok(())
        } else {
            Err(SqlParseError::new(
                format!("expected `{c}`, found {:?}", self.peek()),
                self.cur_span(),
            ))
        }
    }

    fn parse_select(&mut self) -> Result<Select, SqlParseError> {
        self.expect_word("SELECT")?;
        let mut columns = Vec::new();
        let mut star = false;
        if self.peek() == &Tok::Symbol('*') {
            self.bump();
            star = true;
        } else {
            loop {
                columns.push(self.parse_expr()?);
                if self.peek() == &Tok::Symbol(',') {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect_word("FROM")?;
        let from_span = self.cur_span();
        let from = match self.bump() {
            Tok::Word(w) => w,
            other => {
                return Err(SqlParseError::new(
                    format!("expected table name, found {other:?}"),
                    from_span,
                ))
            }
        };
        let mut joins = Vec::new();
        loop {
            if self.eat_word("INNER") || self.eat_word("LEFT") || self.eat_word("OUTER") {
                self.expect_word("JOIN")?;
            } else if !self.eat_word("JOIN") {
                break;
            }
            let join_span = self.cur_span();
            let table = match self.bump() {
                Tok::Word(w) => w,
                other => {
                    return Err(SqlParseError::new(
                        format!("expected joined table name, found {other:?}"),
                        join_span,
                    ))
                }
            };
            joins.push(table);
            if self.eat_word("ON") {
                // Join conditions are parsed but ignored by the checker
                // (the paper's checker only looks at the WHERE clause).
                let _ = self.parse_cond()?;
            }
        }
        let where_clause = if self.eat_word("WHERE") { Some(self.parse_cond()?) } else { None };
        Ok(Select { columns, star, from, joins, where_clause })
    }

    fn parse_cond(&mut self) -> Result<Cond, SqlParseError> {
        let mut lhs = self.parse_cond_and()?;
        while self.eat_word("OR") {
            let rhs = self.parse_cond_and()?;
            lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cond_and(&mut self) -> Result<Cond, SqlParseError> {
        let mut lhs = self.parse_cond_atom()?;
        while self.eat_word("AND") {
            let rhs = self.parse_cond_atom()?;
            lhs = Cond::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cond_atom(&mut self) -> Result<Cond, SqlParseError> {
        if self.eat_word("NOT") {
            let inner = self.parse_cond_atom()?;
            return Ok(Cond::Not(Box::new(inner)));
        }
        if self.peek() == &Tok::Symbol('(') {
            self.bump();
            let inner = self.parse_cond()?;
            self.expect_symbol(')')?;
            return Ok(inner);
        }
        let lhs = self.parse_expr()?;
        // IS [NOT] NULL
        if self.eat_word("IS") {
            let negated = self.eat_word("NOT");
            self.expect_word("NULL")?;
            return Ok(Cond::IsNull { expr: lhs, negated });
        }
        // IN (...)
        if self.eat_word("IN") {
            self.expect_symbol('(')?;
            if matches!(self.peek(), Tok::Word(w) if w.eq_ignore_ascii_case("select")) {
                let select = self.parse_select()?;
                self.expect_symbol(')')?;
                return Ok(Cond::InSelect { expr: lhs, select: Box::new(select) });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if self.peek() == &Tok::Symbol(',') {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect_symbol(')')?;
            return Ok(Cond::InList { expr: lhs, list });
        }
        // Comparison.
        let op = match self.peek().clone() {
            Tok::Symbol('=') => {
                self.bump();
                "=".to_string()
            }
            Tok::Symbol('<') => {
                self.bump();
                "<".to_string()
            }
            Tok::Symbol('>') => {
                self.bump();
                ">".to_string()
            }
            Tok::Le => {
                self.bump();
                "<=".to_string()
            }
            Tok::Ge => {
                self.bump();
                ">=".to_string()
            }
            Tok::Ne => {
                self.bump();
                "<>".to_string()
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("like") => {
                self.bump();
                "LIKE".to_string()
            }
            _ => return Ok(Cond::Expr(lhs)),
        };
        let rhs = self.parse_expr()?;
        Ok(Cond::Compare { lhs, op, rhs })
    }

    fn parse_expr(&mut self) -> Result<SqlExpr, SqlParseError> {
        let span = self.cur_span();
        match self.bump() {
            Tok::Int(i) => Ok(SqlExpr::Int(i)),
            Tok::Float(f) => Ok(SqlExpr::Float(f)),
            Tok::Str(s) => Ok(SqlExpr::Str(s)),
            Tok::Placeholder => Ok(SqlExpr::Placeholder(SqlType::Unknown)),
            Tok::TypedPlaceholder(t) => Ok(SqlExpr::Placeholder(t)),
            Tok::Word(w) => {
                if w.eq_ignore_ascii_case("null") {
                    return Ok(SqlExpr::Null);
                }
                if w.eq_ignore_ascii_case("true") {
                    return Ok(SqlExpr::Bool(true));
                }
                if w.eq_ignore_ascii_case("false") {
                    return Ok(SqlExpr::Bool(false));
                }
                match w.split_once('.') {
                    Some((table, column)) => Ok(SqlExpr::Column {
                        table: Some(table.to_string()),
                        column: column.to_string(),
                        span,
                    }),
                    None => Ok(SqlExpr::Column { table: None, column: w, span }),
                }
            }
            other => Err(SqlParseError::new(format!("unexpected token {other:?}"), span)),
        }
    }
}

/// Parses a complete `SELECT` statement.
///
/// # Errors
///
/// Returns a [`SqlParseError`] on malformed SQL.
///
/// # Examples
///
/// ```
/// let q = sql_tc::parse_select("SELECT * FROM users WHERE id = 1").unwrap();
/// assert_eq!(q.from, "users");
/// assert!(q.where_clause.is_some());
/// ```
pub fn parse_select(src: &str) -> Result<Select, SqlParseError> {
    let (toks, spans) = lex(src)?;
    let mut p = Parser { toks, spans, pos: 0 };
    let select = p.parse_select()?;
    Ok(select)
}

/// Parses a bare condition (the contents of a WHERE fragment).
///
/// # Errors
///
/// Returns a [`SqlParseError`] on malformed SQL.
pub fn parse_condition(src: &str) -> Result<Cond, SqlParseError> {
    let (toks, spans) = lex(src)?;
    let mut p = Parser { toks, spans, pos: 0 };
    let cond = p.parse_cond()?;
    Ok(cond)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let q = parse_select("SELECT id, username FROM users").unwrap();
        assert_eq!(q.columns.len(), 2);
        assert!(!q.star);
        assert_eq!(q.from, "users");
    }

    #[test]
    fn parses_joins_and_where() {
        let q = parse_select(
            "SELECT * FROM posts INNER JOIN topics ON a.id = b.a_id WHERE topics.title = 'x'",
        )
        .unwrap();
        assert!(q.star);
        assert_eq!(q.joins, vec!["topics".to_string()]);
        assert!(matches!(q.where_clause, Some(Cond::Compare { .. })));
    }

    #[test]
    fn parses_nested_select_in() {
        let q = parse_select(
            "SELECT * FROM posts WHERE topics.title IN (SELECT topic_id FROM topic_allowed_groups WHERE group_id = [Integer])",
        )
        .unwrap();
        match q.where_clause.unwrap() {
            Cond::InSelect { expr, select } => {
                assert!(matches!(expr, SqlExpr::Column { .. }));
                assert_eq!(select.from, "topic_allowed_groups");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_connectives_and_is_null() {
        let c = parse_condition("a = 1 AND (b IS NOT NULL OR c LIKE 'x%')").unwrap();
        assert!(matches!(c, Cond::And(_, _)));
        let c = parse_condition("deleted_at IS NULL").unwrap();
        assert!(matches!(c, Cond::IsNull { negated: false, .. }));
    }

    #[test]
    fn parses_placeholders() {
        let c = parse_condition("group_id = ?").unwrap();
        match c {
            Cond::Compare { rhs: SqlExpr::Placeholder(SqlType::Unknown), .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        let c = parse_condition("group_id = [Integer]").unwrap();
        match c {
            Cond::Compare { rhs: SqlExpr::Placeholder(SqlType::Integer), .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reports_errors() {
        assert!(parse_select("SELECT FROM").is_err());
        assert!(parse_select("SELECT * WHERE x = 1").is_err());
        assert!(parse_condition("a = 'unterminated").is_err());
    }

    #[test]
    fn line_tracking_survives_multiline_string_literals() {
        // The literal spans two lines; the column reference after it must be
        // reported on line 2, and newline whitespace itself bumps the line.
        let cond = parse_condition("a = 'x\ny' AND later = 1").unwrap();
        let Cond::And(_, rhs) = cond else { panic!("expected AND") };
        let Cond::Compare { lhs: SqlExpr::Column { column, span, .. }, .. } = *rhs else {
            panic!("expected comparison on a column")
        };
        assert_eq!(column, "later");
        assert_eq!(span.line, 2, "line must account for the newline inside the literal");
    }
}
