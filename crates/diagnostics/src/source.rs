//! Mapping byte offsets back to file / line / column positions.

use crate::span::Span;

/// A named source buffer with a precomputed line-start table, used by the
/// renderer to turn byte spans into `file:line:col` positions and to slice
/// out the source lines a diagnostic annotates.
#[derive(Debug, Clone)]
pub struct SourceMap {
    name: String,
    src: String,
    /// Byte offset of the start of each line (always begins with 0).
    line_starts: Vec<usize>,
}

impl SourceMap {
    /// Wraps `src` (e.g. the text of one Ruby file) under a display `name`.
    pub fn new(name: impl Into<String>, src: impl Into<String>) -> Self {
        let src = src.into();
        let mut line_starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceMap { name: name.into(), src, line_starts }
    }

    /// The display name (shown in the `-->` header line).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full source text.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// Number of lines in the buffer.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// 1-based line number containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> u32 {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    }

    /// 1-based column of byte `offset` within its line (counted in bytes —
    /// the source subset is ASCII).
    pub fn column_of(&self, offset: usize) -> u32 {
        let line = self.line_of(offset) as usize;
        let start = self.line_starts[line - 1];
        (offset - start) as u32 + 1
    }

    /// The text of 1-based `line`, without its trailing newline.
    pub fn line_text(&self, line: u32) -> Option<&str> {
        let i = line.checked_sub(1)? as usize;
        let start = *self.line_starts.get(i)?;
        let end = self.line_starts.get(i + 1).map(|e| e - 1).unwrap_or(self.src.len());
        self.src.get(start..end.max(start))
    }

    /// `(line, col)` of the start of `span`, both 1-based.
    pub fn position(&self, span: Span) -> (u32, u32) {
        let off = span.start.min(self.src.len());
        (self.line_of(off), self.column_of(off))
    }
}

/// A collection of [`SourceMap`]s indexed by the `file` id carried in every
/// [`Span`], so multi-file programs (e.g. an app's source plus its test
/// suite) can resolve any span back to the right named buffer.
///
/// File ids are assigned densely in insertion order, matching the ids a
/// multi-file front end stamps into its spans.
#[derive(Debug, Clone, Default)]
pub struct SourceSet {
    files: Vec<SourceMap>,
}

impl SourceSet {
    /// An empty set.
    pub fn new() -> Self {
        SourceSet::default()
    }

    /// Adds a named source buffer, returning the file id spans into it must
    /// carry.
    pub fn add(&mut self, name: impl Into<String>, src: impl Into<String>) -> u32 {
        self.files.push(SourceMap::new(name, src));
        (self.files.len() - 1) as u32
    }

    /// The map for `file`, if one was added.
    pub fn get(&self, file: u32) -> Option<&SourceMap> {
        self.files.get(file as usize)
    }

    /// The map `span` points into, if its file id is known.
    pub fn map_for(&self, span: Span) -> Option<&SourceMap> {
        self.get(span.file)
    }

    /// Number of files in the set.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when no files were added.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Iterates over the maps in file-id order.
    pub fn iter(&self) -> impl Iterator<Item = &SourceMap> {
        self.files.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_column_lookup() {
        let sm = SourceMap::new("t.rb", "abc\ndef\n\nxyz");
        assert_eq!(sm.line_count(), 4);
        assert_eq!(sm.line_of(0), 1);
        assert_eq!(sm.line_of(3), 1); // the newline byte belongs to line 1
        assert_eq!(sm.line_of(4), 2);
        assert_eq!(sm.column_of(5), 2);
        assert_eq!(sm.line_text(2), Some("def"));
        assert_eq!(sm.line_text(3), Some(""));
        assert_eq!(sm.line_text(4), Some("xyz"));
        assert_eq!(sm.line_text(5), None);
    }

    #[test]
    fn position_clamps_to_buffer() {
        let sm = SourceMap::new("t.rb", "ab");
        assert_eq!(sm.position(Span::new(100, 101, 9)), (1, 3));
    }

    #[test]
    fn source_set_resolves_spans_by_file_id() {
        let mut set = SourceSet::new();
        let app = set.add("app.rb", "def m()\nend\n");
        let tests = set.add("app_test.rb", "m()\n");
        assert_eq!((app, tests), (0, 1));
        assert_eq!(set.len(), 2);
        let in_tests = Span::in_file(tests, 0, 3, 1);
        assert_eq!(set.map_for(in_tests).unwrap().name(), "app_test.rb");
        assert_eq!(set.map_for(Span::new(0, 3, 1)).unwrap().name(), "app.rb");
        assert!(set.map_for(Span::in_file(9, 0, 1, 1)).is_none());
    }
}
