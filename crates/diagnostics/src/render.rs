//! Rendering diagnostics as rustc-style annotated source snippets.
//!
//! ```text
//! error[TYP0004]: body type does not match declared return type
//!   --> codeorg.rb:3:3
//!    |
//!  3 |   @current_user
//!    |   ^^^^^^^^^^^^^ found `User or nil`, declared `User`
//!    |
//!    = note: documented as never nil, but the reader can return nil
//! ```

use crate::diagnostic::{Diagnostic, Label};
use crate::source::{SourceMap, SourceSet};
use std::fmt::Write as _;

/// Renders one diagnostic against its source as an annotated snippet.
pub fn render(sm: &SourceMap, diag: &Diagnostic) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}[{}]: {}", diag.severity, diag.code, diag.message);

    // Labels with real spans get annotated source lines; located labels are
    // grouped per source line so a line is printed once however many labels
    // point at it.
    let mut located: Vec<&Label> = diag.labels.iter().filter(|l| !l.span.is_dummy()).collect();
    located.sort_by_key(|l| (sm.position(l.span).0, !l.primary, l.span.start));

    if let Some(first) = located.first() {
        let (line, col) = sm.position(first.span);
        let _ = writeln!(out, "  --> {}:{}:{}", sm.name(), line, col);
        let gutter =
            located.iter().map(|l| sm.position(l.span).0).max().unwrap_or(line).to_string().len();
        let _ = writeln!(out, "{:gutter$} |", "");

        let mut prev_line: Option<u32> = None;
        for label in &located {
            let (lline, lcol) = sm.position(label.span);
            if prev_line != Some(lline) {
                if let Some(p) = prev_line {
                    // Visual break between non-adjacent annotated lines.
                    if lline > p + 1 {
                        let _ = writeln!(out, "{:gutter$} |", "");
                    }
                }
                let text = sm.line_text(lline).unwrap_or("");
                let _ = writeln!(out, "{lline:gutter$} | {text}");
                prev_line = Some(lline);
            }
            let line_len = sm.line_text(lline).map(str::len).unwrap_or(0);
            let start = (lcol as usize - 1).min(line_len);
            let width = label.span.len().clamp(1, line_len.saturating_sub(start).max(1));
            let marker = if label.primary { "^" } else { "-" };
            let _ = write!(out, "{:gutter$} | {:start$}{}", "", "", marker.repeat(width));
            if label.message.is_empty() {
                out.push('\n');
            } else {
                let _ = writeln!(out, " {}", label.message);
            }
        }
        let _ = writeln!(out, "{:gutter$} |", "");
        for note in &diag.notes {
            let _ = writeln!(out, "{:gutter$} = note: {note}", "");
        }
    } else {
        for note in &diag.notes {
            let _ = writeln!(out, "  = note: {note}");
        }
    }
    // Labels without a location still carry their message as trailing notes.
    for label in diag.labels.iter().filter(|l| l.span.is_dummy() && !l.message.is_empty()) {
        let _ = writeln!(out, "  = note: {}", label.message);
    }
    out
}

/// Renders a batch of diagnostics separated by blank lines.
pub fn render_all(sm: &SourceMap, diags: &[Diagnostic]) -> String {
    diags.iter().map(|d| render(sm, d)).collect::<Vec<_>>().join("\n")
}

/// Renders one diagnostic of a multi-file program: the snippet is drawn
/// against the file of the primary label's span, and any label that points
/// into a *different* file is appended as a `file:line:col` note (a single
/// snippet cannot annotate two buffers).
///
/// Falls back to headline + notes when the set does not know the primary
/// span's file.
pub fn render_in(set: &SourceSet, diag: &Diagnostic) -> String {
    let anchor = diag.primary_span();
    let Some(sm) = set.map_for(anchor) else {
        let mut out = String::new();
        let _ = writeln!(out, "{}[{}]: {}", diag.severity, diag.code, diag.message);
        for note in &diag.notes {
            let _ = writeln!(out, "  = note: {note}");
        }
        return out;
    };
    // Keep only labels in the anchor's file for the snippet (dummy-span
    // labels stay — `render` prints them as trailing notes); labels in
    // *other* files are reported positionally below, so no location or
    // message is silently dropped.
    let mut local = diag.clone();
    local.labels.retain(|l| l.span.is_dummy() || l.span.file == anchor.file);
    let mut out = render(sm, &local);
    for label in diag.labels.iter().filter(|l| l.span.file != anchor.file && !l.span.is_dummy()) {
        if let Some(other) = set.map_for(label.span) {
            let (line, col) = other.position(label.span);
            let _ = writeln!(out, "  = note: {}:{}:{}: {}", other.name(), line, col, label.message);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Diagnostic;
    use crate::span::Span;

    fn sm() -> SourceMap {
        SourceMap::new("app.rb", "def m(x)\n  x.foo(1)\nend\n")
    }

    #[test]
    fn renders_primary_label_with_carets() {
        let d = Diagnostic::error("TYP0002", "no method `foo`")
            .with_label(Span::new(11, 16, 2), "receiver has type Integer");
        let r = render(&sm(), &d);
        assert!(r.contains("error[TYP0002]: no method `foo`"), "{r}");
        assert!(r.contains("--> app.rb:2:3"), "{r}");
        assert!(r.contains("2 |   x.foo(1)"), "{r}");
        assert!(r.contains("^^^^^ receiver has type Integer"), "{r}");
    }

    #[test]
    fn renders_multiple_labels_across_lines() {
        let d = Diagnostic::error("TYP0001", "mismatch")
            .with_label(Span::new(11, 12, 2), "used here")
            .with_secondary_label(Span::new(6, 7, 1), "param declared here")
            .with_note("one note");
        let r = render(&sm(), &d);
        let caret_line = r.lines().position(|l| l.contains("^ used here")).unwrap();
        let dash_line = r.lines().position(|l| l.contains("- param declared here")).unwrap();
        // Line 1's label renders before line 2's even though it is secondary.
        assert!(dash_line < caret_line, "{r}");
        assert!(r.contains("= note: one note"), "{r}");
    }

    #[test]
    fn two_labels_on_one_line_print_line_once() {
        let d = Diagnostic::error("TYP0001", "mismatch")
            .with_label(Span::new(11, 12, 2), "first")
            .with_secondary_label(Span::new(17, 18, 2), "second");
        let r = render(&sm(), &d);
        assert_eq!(r.matches("x.foo(1)").count(), 1, "{r}");
        assert!(r.contains("^ first"), "{r}");
        assert!(r.contains("- second"), "{r}");
    }

    #[test]
    fn dummy_span_renders_headline_and_notes_only() {
        let d = Diagnostic::error("TLC0001", "helper failed").with_note("while evaluating");
        let r = render(&sm(), &d);
        assert!(r.starts_with("error[TLC0001]: helper failed"), "{r}");
        assert!(!r.contains("-->"), "{r}");
        assert!(r.contains("= note: while evaluating"), "{r}");
    }

    #[test]
    fn render_in_picks_the_right_file_and_notes_the_other() {
        let mut set = SourceSet::new();
        let app = set.add("app.rb", "def m(x)\n  x.foo(1)\nend\n");
        let tests = set.add("app_test.rb", "m(3)\n");
        let d = Diagnostic::error("TYP0002", "no method `foo`")
            .with_label(Span::in_file(tests, 0, 4, 1), "called from here")
            .with_secondary_label(Span::in_file(app, 11, 16, 2), "declared here")
            .with_secondary_label(Span::dummy(), "while evaluating the comp type");
        let r = render_in(&set, &d);
        assert!(r.contains("--> app_test.rb:1:1"), "{r}");
        assert!(r.contains("^^^^ called from here"), "{r}");
        assert!(r.contains("= note: app.rb:2:3: declared here"), "{r}");
        assert!(!r.contains("x.foo"), "other file's line must not render as a snippet: {r}");
        // A dummy-span label must survive as a plain note even though the
        // anchor sits in a non-zero file.
        assert!(r.contains("= note: while evaluating the comp type"), "{r}");
    }

    #[test]
    fn render_in_unknown_file_falls_back_to_headline() {
        let set = SourceSet::new();
        let d = Diagnostic::error("X0001", "boom")
            .with_label(Span::in_file(4, 0, 1, 1), "here")
            .with_note("context");
        let r = render_in(&set, &d);
        assert!(r.starts_with("error[X0001]: boom"), "{r}");
        assert!(r.contains("= note: context"), "{r}");
    }

    #[test]
    fn clamps_out_of_range_spans() {
        let d = Diagnostic::error("X0001", "weird").with_label(Span::new(500, 600, 9), "here");
        let r = render(&sm(), &d);
        assert!(r.contains("^"), "{r}");
    }
}
