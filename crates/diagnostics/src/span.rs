//! Source positions and spans.
//!
//! Every token, AST node and error in the workspace carries a [`Span`] so
//! that each layer — lexer, parser, signature parser, comp-type evaluator,
//! static checker, interpreter and SQL checker — can report errors that
//! point back into the original source text through one shared type.

use std::fmt;

/// A half-open byte range `[start, end)` into a source buffer, together with
/// the 1-based line on which the span starts and the id of the source file
/// the offsets index into.
///
/// Single-file pipelines can ignore `file` (it defaults to `0`); multi-file
/// programs give each file a distinct id via [`Span::in_file`] so that two
/// spans with identical offsets in different files never compare equal —
/// offsets alone are not an identity once more than one buffer exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// Id of the source file the offsets index into (see
    /// [`crate::SourceSet`]); `0` for single-file pipelines.
    pub file: u32,
}

impl Span {
    /// Creates a new span in file `0` (the single-file default).
    ///
    /// # Examples
    ///
    /// ```
    /// use diagnostics::Span;
    /// let s = Span::new(0, 3, 1);
    /// assert_eq!(s.len(), 3);
    /// ```
    pub fn new(start: usize, end: usize, line: u32) -> Self {
        Span { start, end, line, file: 0 }
    }

    /// Creates a new span carrying an explicit source-file id.
    pub fn in_file(file: u32, start: usize, end: usize, line: u32) -> Self {
        Span { start, end, line, file }
    }

    /// Returns this span re-homed into `file`.
    pub fn with_file(self, file: u32) -> Self {
        Span { file, ..self }
    }

    /// A dummy span used for synthesized nodes.
    pub fn dummy() -> Self {
        Span { start: 0, end: 0, line: 0, file: 0 }
    }

    /// Whether this is the dummy span of a synthesized node.
    pub fn is_dummy(&self) -> bool {
        self.start == 0 && self.end == 0 && self.line == 0
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the smallest span covering both `self` and `other`.
    ///
    /// The resulting line is the line of whichever span starts first; the
    /// resulting file is `self`'s (joining spans across files has no
    /// meaningful covering range, so the receiver wins).
    pub fn to(&self, other: Span) -> Span {
        let (line, start) = if self.start <= other.start {
            (self.line, self.start)
        } else {
            (other.line, other.start)
        };
        Span { start, end: self.end.max(other.end), line, file: self.file }
    }

    /// Alias for [`Span::to`]: merges two spans into the smallest covering
    /// span. Dummy spans are treated as identity elements, so merging a real
    /// span with a synthesized one keeps the real location.
    pub fn merge(&self, other: Span) -> Span {
        if self.is_dummy() {
            other
        } else if other.is_dummy() {
            *self
        } else {
            self.to(other)
        }
    }

    /// Extracts the spanned text from `src`, if in range.
    pub fn snippet<'a>(&self, src: &'a str) -> Option<&'a str> {
        src.get(self.start..self.end)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_orders_correctly() {
        let a = Span::new(0, 4, 1);
        let b = Span::new(10, 12, 3);
        assert_eq!(a.to(b), Span::new(0, 12, 1));
        assert_eq!(b.to(a), Span::new(0, 12, 1));
    }

    #[test]
    fn merge_treats_dummy_as_identity() {
        let real = Span::new(5, 9, 2);
        assert_eq!(Span::dummy().merge(real), real);
        assert_eq!(real.merge(Span::dummy()), real);
        assert_eq!(real.merge(Span::new(0, 2, 1)), Span::new(0, 9, 1));
    }

    #[test]
    fn snippet_extracts_text() {
        let src = "hello world";
        let s = Span::new(6, 11, 1);
        assert_eq!(s.snippet(src), Some("world"));
        let out = Span::new(6, 100, 1);
        assert_eq!(out.snippet(src), None);
    }

    #[test]
    fn file_id_is_part_of_span_identity() {
        let a = Span::in_file(0, 4, 9, 2);
        let b = Span::in_file(1, 4, 9, 2);
        assert_ne!(a, b, "identical offsets in different files must not compare equal");
        assert_eq!(a.with_file(1), b);
        assert_eq!(Span::new(4, 9, 2), a, "Span::new defaults to file 0");
        // Merging keeps the receiver's file.
        assert_eq!(a.to(b.with_file(7)).file, 0);
    }

    #[test]
    fn dummy_is_empty() {
        assert!(Span::dummy().is_empty());
        assert!(Span::dummy().is_dummy());
        assert!(!Span::new(2, 5, 1).is_dummy());
        assert_eq!(Span::new(2, 5, 1).len(), 3);
    }
}
