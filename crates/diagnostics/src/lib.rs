//! # diagnostics
//!
//! The shared error spine of the CompRDL-rs workspace.
//!
//! Every layer of the system — the Ruby lexer/parser (`ruby-syntax`), the
//! RDL signature parser (`rdl-types`), the comp-type evaluator and static
//! checker (`comprdl`), the interpreter (`ruby-interp`) and the SQL checker
//! (`sql-tc`) — defines its own error type, and each of those converts into
//! a single [`Diagnostic`] carrying a severity, a stable code, labelled
//! [`Span`]s and notes. [`SourceMap`] + [`render`] turn a diagnostic back
//! into a rustc-style annotated source snippet; [`DiagnosticBag`] aggregates
//! diagnostics for corpus-wide reporting.
//!
//! ## Quick start
//!
//! ```
//! use diagnostics::{render, Diagnostic, SourceMap, Span};
//!
//! let sm = SourceMap::new("user.rb", "def admin?(name)\n  name == 0\nend\n");
//! let d = Diagnostic::error("TYP0001", "comparison between String and Integer")
//!     .with_label(Span::new(19, 28, 2), "`name` is a String")
//!     .with_note("declared `(String) -> %bool`");
//! let text = render(&sm, &d);
//! assert!(text.contains("--> user.rb:2:3"));
//! ```

#![warn(missing_docs)]

pub mod bag;
pub mod diagnostic;
pub mod render;
pub mod source;
pub mod span;

pub use bag::DiagnosticBag;
pub use diagnostic::{Diagnostic, Label, Severity, ToDiagnostic};
pub use render::{render, render_all, render_in};
pub use source::{SourceMap, SourceSet};
pub use span::Span;
