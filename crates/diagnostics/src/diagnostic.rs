//! The [`Diagnostic`] type: one error, warning or note with labelled spans.

use crate::span::Span;
use std::fmt;

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Purely informational.
    Note,
    /// Suspicious but not necessarily wrong (e.g. an implicit cast).
    Warning,
    /// A genuine error: the program does not type check / parse / run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// A span within the source plus a message describing what it shows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Label {
    /// Where in the source.
    pub span: Span,
    /// What this location contributes (may be empty).
    pub message: String,
    /// Primary labels are underlined with `^`, secondary ones with `-`.
    pub primary: bool,
}

impl Label {
    /// A primary label (the main location of the diagnostic).
    pub fn primary(span: Span, message: impl Into<String>) -> Self {
        Label { span, message: message.into(), primary: true }
    }

    /// A secondary label (supporting context).
    pub fn secondary(span: Span, message: impl Into<String>) -> Self {
        Label { span, message: message.into(), primary: false }
    }
}

/// A single diagnostic: severity, stable machine-readable code, primary
/// message, zero or more labelled spans and free-form notes.
///
/// Every layer of the workspace converts its own error type into this via
/// `From` impls, so the corpus harness, the examples and future tooling can
/// aggregate and render errors from any layer uniformly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error / warning / note.
    pub severity: Severity,
    /// Stable code, namespaced per layer: `LEX...`, `PARSE...`, `SIG...`,
    /// `TLC...`, `TYP...`, `RT...`, `SQL...`.
    pub code: String,
    /// The headline message.
    pub message: String,
    /// Labelled source locations; the first primary label anchors the
    /// rendered snippet.
    pub labels: Vec<Label>,
    /// Additional `= note: ...` lines.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Starts an error diagnostic.
    pub fn error(code: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code: code.into(),
            message: message.into(),
            labels: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Starts a warning diagnostic.
    pub fn warning(code: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Warning, ..Diagnostic::error(code, message) }
    }

    /// Starts a note diagnostic.
    pub fn note_diag(code: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Note, ..Diagnostic::error(code, message) }
    }

    /// Adds a primary label.
    pub fn with_label(mut self, span: Span, message: impl Into<String>) -> Self {
        self.labels.push(Label::primary(span, message));
        self
    }

    /// Adds a secondary label.
    pub fn with_secondary_label(mut self, span: Span, message: impl Into<String>) -> Self {
        self.labels.push(Label::secondary(span, message));
        self
    }

    /// Adds a `= note:` line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// The span of the first primary label (or the first label at all), used
    /// to anchor the rendered snippet. Dummy if the diagnostic has no
    /// located labels.
    pub fn primary_span(&self) -> Span {
        self.labels
            .iter()
            .find(|l| l.primary)
            .or_else(|| self.labels.first())
            .map(|l| l.span)
            .unwrap_or_else(Span::dummy)
    }

    /// True if the diagnostic is an error.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    /// Single-line rendering (no source snippet): `error[TYP0001]: message`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        let anchor = self.primary_span();
        if !anchor.is_dummy() {
            write!(f, " (line {})", anchor.line)?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostic {}

/// Types that can describe themselves as a [`Diagnostic`].
///
/// Prefer implementing `From<MyError> for Diagnostic` in the error's own
/// crate; this trait exists for generic call sites that only have a
/// reference.
pub trait ToDiagnostic {
    /// Builds the diagnostic for this error.
    fn to_diagnostic(&self) -> Diagnostic;
}

impl<T> ToDiagnostic for T
where
    T: Clone,
    Diagnostic: From<T>,
{
    fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::from(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_labels_and_notes() {
        let d = Diagnostic::error("TYP0001", "mismatch")
            .with_label(Span::new(4, 8, 2), "expected Integer")
            .with_secondary_label(Span::new(0, 3, 1), "declared here")
            .with_note("computed from comp type");
        assert_eq!(d.labels.len(), 2);
        assert!(d.labels[0].primary);
        assert!(!d.labels[1].primary);
        assert_eq!(d.notes.len(), 1);
        assert_eq!(d.primary_span(), Span::new(4, 8, 2));
        assert!(d.is_error());
    }

    #[test]
    fn primary_span_falls_back_to_first_label() {
        let d =
            Diagnostic::warning("TYP0002", "cast").with_secondary_label(Span::new(1, 2, 1), "here");
        assert_eq!(d.primary_span(), Span::new(1, 2, 1));
        assert!(Diagnostic::error("X", "y").primary_span().is_dummy());
    }

    #[test]
    fn display_is_single_line() {
        let d = Diagnostic::error("SQL0001", "unknown column `views`")
            .with_label(Span::new(0, 5, 3), "");
        assert_eq!(d.to_string(), "error[SQL0001]: unknown column `views` (line 3)");
    }

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }
}
