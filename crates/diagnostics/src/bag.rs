//! Collecting and summarising diagnostics across a whole run.

use crate::diagnostic::{Diagnostic, Severity};
use std::collections::BTreeMap;
use std::fmt;

/// An append-only collection of diagnostics with severity / code counting,
/// used by the corpus harness to aggregate per-app results into the paper's
/// Table 1 / Table 2 shape.
#[derive(Debug, Clone, Default)]
pub struct DiagnosticBag {
    diags: Vec<Diagnostic>,
}

impl DiagnosticBag {
    /// An empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one diagnostic.
    pub fn push(&mut self, d: impl Into<Diagnostic>) {
        self.diags.push(d.into());
    }

    /// Adds every diagnostic from an iterator.
    pub fn extend<I, D>(&mut self, iter: I)
    where
        I: IntoIterator<Item = D>,
        D: Into<Diagnostic>,
    {
        self.diags.extend(iter.into_iter().map(Into::into));
    }

    /// All collected diagnostics, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter()
    }

    /// Total number of diagnostics.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// True if nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Number of diagnostics with [`Severity::Error`].
    pub fn error_count(&self) -> usize {
        self.count_of(Severity::Error)
    }

    /// Number of diagnostics with [`Severity::Warning`].
    pub fn warning_count(&self) -> usize {
        self.count_of(Severity::Warning)
    }

    /// Number of diagnostics of the given severity.
    pub fn count_of(&self, sev: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == sev).count()
    }

    /// Diagnostic counts grouped by code (sorted by code).
    pub fn counts_by_code(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for d in &self.diags {
            *m.entry(d.code.clone()).or_insert(0) += 1;
        }
        m
    }

    /// Sorts the collected diagnostics into a canonical order: by primary
    /// span (start offset, then line), then code, then message.  Aggregators
    /// that collect from concurrent producers call this so the bag's
    /// iteration order is independent of completion order.
    pub fn sort_by_span_then_code(&mut self) {
        self.diags.sort_by(|a, b| {
            let sa = a.primary_span();
            let sb = b.primary_span();
            (sa.file, sa.start, sa.line, sa.end, &a.code, &a.message)
                .cmp(&(sb.file, sb.start, sb.line, sb.end, &b.code, &b.message))
        });
    }
}

impl fmt::Display for DiagnosticBag {
    /// A compact one-line summary: `3 errors, 1 warning (TYP0004 x2, ...)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} errors, {} warnings", self.error_count(), self.warning_count())?;
        if !self.is_empty() {
            let parts: Vec<String> =
                self.counts_by_code().into_iter().map(|(c, n)| format!("{c} x{n}")).collect();
            write!(f, " ({})", parts.join(", "))?;
        }
        Ok(())
    }
}

impl FromIterator<Diagnostic> for DiagnosticBag {
    fn from_iter<I: IntoIterator<Item = Diagnostic>>(iter: I) -> Self {
        DiagnosticBag { diags: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_is_canonical_regardless_of_insertion_order() {
        use crate::span::Span;
        let make = |start, code: &str| {
            Diagnostic::error(code, format!("m{start}"))
                .with_label(Span::new(start, start + 1, 1), "")
        };
        let mut a = DiagnosticBag::new();
        a.push(make(5, "TYP0002"));
        a.push(make(1, "TYP0009"));
        a.push(make(5, "TYP0001"));
        let mut b = DiagnosticBag::new();
        b.push(make(5, "TYP0001"));
        b.push(make(5, "TYP0002"));
        b.push(make(1, "TYP0009"));
        a.sort_by_span_then_code();
        b.sort_by_span_then_code();
        let render =
            |bag: &DiagnosticBag| bag.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n");
        assert_eq!(render(&a), render(&b));
        assert_eq!(a.iter().next().unwrap().code, "TYP0009", "span order wins over code order");
    }

    #[test]
    fn mixed_severity_counts_never_cross_contaminate() {
        use crate::span::Span;
        let mut bag = DiagnosticBag::new();
        bag.push(Diagnostic::error("TYP0001", "bad call").with_label(Span::new(10, 12, 2), ""));
        bag.push(
            Diagnostic::warning("LINT0102", "unused variable").with_label(Span::new(4, 6, 1), ""),
        );
        bag.push(
            Diagnostic::warning("LINT0104", "unreachable").with_label(Span::new(20, 22, 3), ""),
        );
        // `len` counts everything; the per-severity counts partition it, so
        // harness columns derived from `error_count` can never be inflated
        // by lint warnings (and vice versa).
        assert_eq!(bag.len(), 3);
        assert_eq!(bag.error_count(), 1);
        assert_eq!(bag.warning_count(), 2);
        assert_eq!(bag.error_count() + bag.warning_count(), bag.len());
        assert_eq!(bag.count_of(Severity::Error), 1);
        assert_eq!(bag.count_of(Severity::Warning), 2);
    }

    #[test]
    fn sort_is_stable_across_insertion_orders_for_mixed_severities() {
        use crate::span::Span;
        // Same span and code on an error and a warning: the message
        // tie-breaks, and any insertion order converges to one rendering.
        let diags = [
            Diagnostic::error("TYP0001", "z first by span").with_label(Span::new(1, 2, 1), ""),
            Diagnostic::warning("LINT0101", "a warning").with_label(Span::new(5, 6, 2), ""),
            Diagnostic::error("LINT0101", "b error same span").with_label(Span::new(5, 6, 2), ""),
            Diagnostic::warning("LINT0103", "late span").with_label(Span::new(9, 10, 3), ""),
        ];
        let render =
            |bag: &DiagnosticBag| bag.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n");
        let mut forward = DiagnosticBag::new();
        diags.iter().cloned().for_each(|d| forward.push(d));
        forward.sort_by_span_then_code();
        let mut reversed = DiagnosticBag::new();
        diags.iter().rev().cloned().for_each(|d| reversed.push(d));
        reversed.sort_by_span_then_code();
        assert_eq!(render(&forward), render(&reversed));
        let codes: Vec<_> = forward.iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, ["TYP0001", "LINT0101", "LINT0101", "LINT0103"]);
        let messages: Vec<_> = forward.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(
            messages[1], "a warning",
            "equal span+code falls through to message order, not severity"
        );
    }

    #[test]
    fn counts_by_severity_and_code() {
        let mut bag = DiagnosticBag::new();
        bag.push(Diagnostic::error("TYP0001", "a"));
        bag.push(Diagnostic::error("TYP0001", "b"));
        bag.push(Diagnostic::warning("TYP0009", "c"));
        assert_eq!(bag.len(), 3);
        assert_eq!(bag.error_count(), 2);
        assert_eq!(bag.warning_count(), 1);
        assert_eq!(bag.counts_by_code()["TYP0001"], 2);
        assert_eq!(bag.to_string(), "2 errors, 1 warnings (TYP0001 x2, TYP0009 x1)");
    }
}
