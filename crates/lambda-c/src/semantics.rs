//! Operational semantics of λC with blame (paper §3.1, Figure 8).
//!
//! The semantics is presented here as a fuel-bounded evaluator: a well-typed
//! (and rewritten) expression either produces a value, reduces to *blame*
//! (a failed checked call or a method invoked on `nil`), or runs out of fuel
//! (modelling divergence).  The soundness property tests in `lib.rs` check
//! exactly the statement of Theorem 3.1: evaluation never gets *stuck*.

use crate::syntax::{Expr, LibImpl, Program, Value};
use std::collections::HashMap;

/// The outcome of evaluating an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Evaluation produced a value.
    Val(Value),
    /// A dynamic check failed or a method was invoked on `nil`.
    Blame(String),
    /// Fuel ran out (the program may diverge).
    Timeout,
    /// Evaluation got stuck (no rule applies).  Soundness says this never
    /// happens for well-typed programs.
    Stuck(String),
}

impl Outcome {
    /// True if the outcome is a value.
    pub fn is_value(&self) -> bool {
        matches!(self, Outcome::Val(_))
    }

    /// True if the outcome is blame.
    pub fn is_blame(&self) -> bool {
        matches!(self, Outcome::Blame(_))
    }

    /// True if evaluation got stuck.
    pub fn is_stuck(&self) -> bool {
        matches!(self, Outcome::Stuck(_))
    }
}

/// The evaluator.
pub struct Evaluator<'a> {
    program: &'a Program,
    fuel: u64,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator with the given fuel budget.
    pub fn new(program: &'a Program, fuel: u64) -> Self {
        Evaluator { program, fuel }
    }

    /// Evaluates a closed expression with `self` bound to `self_val`.
    pub fn eval(&mut self, expr: &Expr, self_val: &Value) -> Outcome {
        let env = HashMap::new();
        self.eval_in(expr, self_val, &env)
    }

    fn eval_in(&mut self, expr: &Expr, self_val: &Value, env: &HashMap<String, Value>) -> Outcome {
        if self.fuel == 0 {
            return Outcome::Timeout;
        }
        self.fuel -= 1;
        match expr {
            Expr::Val(v) => Outcome::Val(v.clone()),
            Expr::Var(x) => match env.get(x) {
                Some(v) => Outcome::Val(v.clone()),
                None => Outcome::Stuck(format!("unbound variable {x}")),
            },
            Expr::SelfE | Expr::TSelf => Outcome::Val(self_val.clone()),
            Expr::New(a) => Outcome::Val(Value::Instance(a.clone())),
            Expr::Seq(a, b) => match self.eval_in(a, self_val, env) {
                Outcome::Val(_) => self.eval_in(b, self_val, env),
                other => other,
            },
            Expr::Eq(a, b) => {
                let va = match self.eval_in(a, self_val, env) {
                    Outcome::Val(v) => v,
                    other => return other,
                };
                let vb = match self.eval_in(b, self_val, env) {
                    Outcome::Val(v) => v,
                    other => return other,
                };
                Outcome::Val(if va == vb { Value::True } else { Value::False })
            }
            Expr::If(c, t, e) => match self.eval_in(c, self_val, env) {
                Outcome::Val(v) => {
                    if v.truthy() {
                        self.eval_in(t, self_val, env)
                    } else {
                        self.eval_in(e, self_val, env)
                    }
                }
                other => other,
            },
            Expr::Call(recv, m, arg) => self.eval_call(recv, m, arg, None, self_val, env),
            Expr::CheckedCall(expected, recv, m, arg) => {
                self.eval_call(recv, m, arg, Some(expected.clone()), self_val, env)
            }
        }
    }

    fn eval_call(
        &mut self,
        recv: &Expr,
        m: &str,
        arg: &Expr,
        check: Option<String>,
        self_val: &Value,
        env: &HashMap<String, Value>,
    ) -> Outcome {
        let vr = match self.eval_in(recv, self_val, env) {
            Outcome::Val(v) => v,
            other => return other,
        };
        let va = match self.eval_in(arg, self_val, env) {
            Outcome::Val(v) => v,
            other => return other,
        };
        // Invoking a method on nil reduces to blame (§3.3).
        if matches!(vr, Value::Nil) {
            return Outcome::Blame(format!("method `{m}` invoked on nil"));
        }
        let recv_class = vr.type_of();
        let Some(owner) = self.program.lookup_class_of(&recv_class, m) else {
            return Outcome::Stuck(format!("no method `{m}` on {recv_class}"));
        };
        // User-defined methods run their bodies (E-AppUD).
        if let Some(def) = self.program.user_methods.get(&(owner.clone(), m.to_string())) {
            let mut callee_env = HashMap::new();
            callee_env.insert(def.param.clone(), va);
            let result = self.eval_in(&def.body.clone(), &vr, &callee_env);
            return match (result, check) {
                (Outcome::Val(v), Some(expected)) => self.apply_check(v, &expected, m),
                (other, _) => other,
            };
        }
        // Library methods run their native behaviour (E-AppLib), and checked
        // calls test the result against the inserted class (blame on
        // failure).
        if let Some((_ty, imp)) = self.program.lib_methods.get(&(owner, m.to_string())) {
            let result = match imp {
                LibImpl::Const(v) => v.clone(),
                LibImpl::ReturnSelf => vr.clone(),
                LibImpl::ReturnArg => va.clone(),
                LibImpl::BoolAnd => {
                    if vr.truthy() && va.truthy() {
                        Value::True
                    } else {
                        Value::False
                    }
                }
                LibImpl::Lie => Value::Instance("Obj".to_string()),
            };
            return match check {
                Some(expected) => self.apply_check(result, &expected, m),
                None => Outcome::Val(result),
            };
        }
        Outcome::Stuck(format!("method `{m}` resolved but has no definition"))
    }

    fn apply_check(&self, v: Value, expected: &str, m: &str) -> Outcome {
        if self.program.subtype(&v.type_of(), expected) {
            Outcome::Val(v)
        } else {
            Outcome::Blame(format!("checked call to `{m}` returned {v} which is not a {expected}"))
        }
    }
}

/// Evaluates `expr` in `program` with the given fuel, starting from a fresh
/// `Obj` instance as `self`.
pub fn run(program: &Program, expr: &Expr, fuel: u64) -> Outcome {
    Evaluator::new(program, fuel).eval(expr, &Value::Instance("Obj".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{LibType, SimpleType};

    fn bool_program() -> Program {
        let mut p = Program::new();
        p.def_lib(
            "Bool",
            "and",
            LibType::Simple(SimpleType { dom: "Bool".into(), rng: "Bool".into() }),
            LibImpl::BoolAnd,
        );
        p
    }

    #[test]
    fn basic_forms_evaluate() {
        let p = Program::new();
        assert_eq!(run(&p, &Expr::val(Value::True), 100), Outcome::Val(Value::True));
        assert_eq!(
            run(
                &p,
                &Expr::Eq(Box::new(Expr::val(Value::True)), Box::new(Expr::val(Value::True))),
                100
            ),
            Outcome::Val(Value::True)
        );
        assert_eq!(
            run(
                &p,
                &Expr::If(
                    Box::new(Expr::val(Value::False)),
                    Box::new(Expr::val(Value::True)),
                    Box::new(Expr::val(Value::Nil))
                ),
                100
            ),
            Outcome::Val(Value::Nil)
        );
        assert_eq!(
            run(&p, &Expr::New("Obj".into()), 100),
            Outcome::Val(Value::Instance("Obj".into()))
        );
    }

    #[test]
    fn library_calls_and_checks() {
        let p = bool_program();
        let call = Expr::call(Expr::val(Value::True), "and", Expr::val(Value::True));
        assert_eq!(run(&p, &call, 100), Outcome::Val(Value::True));
        let checked = Expr::CheckedCall(
            "True".into(),
            Box::new(Expr::val(Value::True)),
            "and".into(),
            Box::new(Expr::val(Value::True)),
        );
        assert_eq!(run(&p, &checked, 100), Outcome::Val(Value::True));
        // A check against False blames when the result is True.
        let blamed = Expr::CheckedCall(
            "False".into(),
            Box::new(Expr::val(Value::True)),
            "and".into(),
            Box::new(Expr::val(Value::True)),
        );
        assert!(run(&p, &blamed, 100).is_blame());
    }

    #[test]
    fn nil_receiver_blames() {
        let p = bool_program();
        let call = Expr::call(Expr::val(Value::Nil), "and", Expr::val(Value::True));
        assert!(run(&p, &call, 100).is_blame());
    }

    #[test]
    fn diverging_user_method_times_out() {
        let mut p = Program::new();
        p.add_class("A", "Obj");
        p.def_user(
            "A",
            "loop",
            "x",
            SimpleType { dom: "Obj".into(), rng: "Obj".into() },
            Expr::call(Expr::SelfE, "loop", Expr::Var("x".into())),
        );
        let e = Expr::call(Expr::New("A".into()), "loop", Expr::val(Value::Nil));
        assert_eq!(run(&p, &e, 1_000), Outcome::Timeout);
    }

    #[test]
    fn unknown_method_is_stuck() {
        let p = Program::new();
        let e = Expr::call(Expr::val(Value::True), "missing", Expr::val(Value::Nil));
        assert!(run(&p, &e, 100).is_stuck());
    }
}
