//! # lambda-c
//!
//! λC — the core object-oriented calculus the paper uses to formalize
//! CompRDL (§3): class IDs are both base types and values, library methods
//! may carry comp types `(a <: e1/A1) → e2/A2`, type checking evaluates
//! those expressions to concrete classes and rewrites library calls into
//! checked calls `⌈A⌉ e.m(e)`, and the operational semantics reduces failed
//! checks (and `nil` receivers) to *blame*.
//!
//! The crate provides the syntax, a fuel-bounded evaluator, the type
//! checker / rewriter, and property-based tests of the paper's soundness
//! theorem (Theorem 3.1): a well-typed, rewritten expression either reduces
//! to a value (of a subtype of its static type), reduces to blame, or
//! diverges — it never gets stuck.
//!
//! ```
//! use lambda_c::{Checker, Expr, LibImpl, LibType, Program, run, SimpleType, Value};
//!
//! let mut p = Program::new();
//! p.def_lib(
//!     "Bool",
//!     "and",
//!     LibType::Simple(SimpleType { dom: "Bool".into(), rng: "Bool".into() }),
//!     LibImpl::BoolAnd,
//! );
//! let e = Expr::call(Expr::val(Value::True), "and", Expr::val(Value::False));
//! let (rewritten, ty) = Checker::new(&p).check_expr(&e, "Obj").unwrap();
//! assert_eq!(ty, "Bool");
//! assert!(run(&p, &rewritten, 1_000).is_value());
//! ```

#![warn(missing_docs)]

pub mod semantics;
pub mod syntax;
pub mod typing;

pub use semantics::{run, Evaluator, Outcome};
pub use syntax::{ClassId, Expr, LibImpl, LibType, Program, SimpleType, UserMethod, Value};
pub use typing::{Checker, TypeError};

// Deterministic property tests of the soundness theorem. The container has
// no crates.io access, so instead of `proptest` these use a seeded xorshift
// generator to draw a few hundred random surface expressions and assert the
// same properties a shrinking property tester would.
#[cfg(test)]
mod soundness {
    use super::*;

    use test_rng::Rng;

    /// A program with user methods, simple library methods, a comp-typed
    /// library method, and a deliberately ill-behaved library method, so the
    /// generator can exercise every typing rule and blame path.
    fn test_program() -> Program {
        let mut p = Program::new();
        p.add_class("A", "Obj");
        p.add_class("B", "A");
        // User methods (statically checked).
        p.def_user(
            "A",
            "id",
            "x",
            SimpleType { dom: "Obj".into(), rng: "Obj".into() },
            Expr::Var("x".into()),
        );
        p.def_user(
            "A",
            "flip",
            "x",
            SimpleType { dom: "Bool".into(), rng: "Bool".into() },
            Expr::If(
                Box::new(Expr::Var("x".into())),
                Box::new(Expr::val(Value::False)),
                Box::new(Expr::val(Value::True)),
            ),
        );
        // A well-behaved simple library method.
        p.def_lib(
            "A",
            "mkbool",
            LibType::Simple(SimpleType { dom: "Obj".into(), rng: "Bool".into() }),
            LibImpl::Const(Value::True),
        );
        // An ill-behaved library method: declared to return Bool but returns
        // an Obj instance — calls to it are well-typed, and the inserted
        // check catches the lie at run time (blame, not stuckness).
        p.def_lib(
            "A",
            "liar",
            LibType::Simple(SimpleType { dom: "Obj".into(), rng: "Bool".into() }),
            LibImpl::Lie,
        );
        // The comp-typed Bool.and of §3.1.
        let ret_expr = Expr::If(
            Box::new(Expr::Eq(
                Box::new(Expr::TSelf),
                Box::new(Expr::val(Value::Class("True".into()))),
            )),
            Box::new(Expr::If(
                Box::new(Expr::Eq(
                    Box::new(Expr::Var("a".into())),
                    Box::new(Expr::val(Value::Class("True".into()))),
                )),
                Box::new(Expr::val(Value::Class("True".into()))),
                Box::new(Expr::val(Value::Class("Bool".into()))),
            )),
            Box::new(Expr::val(Value::Class("Bool".into()))),
        );
        p.def_lib(
            "Bool",
            "and",
            LibType::Comp {
                arg_expr: Box::new(Expr::val(Value::Class("Bool".into()))),
                arg_bound: "Bool".into(),
                ret_expr: Box::new(ret_expr),
                ret_bound: "Bool".into(),
            },
            LibImpl::BoolAnd,
        );
        p
    }

    /// Generates surface expressions over the test program's vocabulary.
    fn arb_expr(rng: &mut Rng, depth: u32) -> Expr {
        if depth == 0 || rng.below(2) == 0 {
            return match rng.below(6) {
                0 => Expr::val(Value::True),
                1 => Expr::val(Value::False),
                2 => Expr::val(Value::Nil),
                3 => Expr::New("A".into()),
                4 => Expr::New("B".into()),
                _ => Expr::SelfE,
            };
        }
        match rng.below(4) {
            0 => Expr::Seq(Box::new(arb_expr(rng, depth - 1)), Box::new(arb_expr(rng, depth - 1))),
            1 => Expr::Eq(Box::new(arb_expr(rng, depth - 1)), Box::new(arb_expr(rng, depth - 1))),
            2 => Expr::If(
                Box::new(arb_expr(rng, depth - 1)),
                Box::new(arb_expr(rng, depth - 1)),
                Box::new(arb_expr(rng, depth - 1)),
            ),
            _ => {
                let m = ["id", "flip", "mkbool", "liar", "and"][rng.below(5) as usize];
                Expr::Call(
                    Box::new(arb_expr(rng, depth - 1)),
                    m.to_string(),
                    Box::new(arb_expr(rng, depth - 1)),
                )
            }
        }
    }

    const CASES: usize = 512;

    /// Theorem 3.1 (soundness): if `∅ ⊢ e ↪ e' : A` then `e'` reduces to
    /// a value, reduces to blame, or diverges — never gets stuck.  And
    /// when it reduces to a value, the value's class is a subtype of `A`
    /// (the preservation part).
    #[test]
    fn well_typed_programs_do_not_get_stuck() {
        let program = test_program();
        let checker = Checker::new(&program);
        let mut rng = Rng::new(0xA11CE);
        for _ in 0..CASES {
            let e = arb_expr(&mut rng, 4);
            let Ok((rewritten, ty)) = checker.check_expr(&e, "Obj") else {
                // Ill-typed programs are outside the theorem's premise.
                continue;
            };
            let outcome = run(&program, &rewritten, 50_000);
            assert!(!outcome.is_stuck(), "stuck: {outcome:?} for {rewritten:?}");
            if let Outcome::Val(v) = outcome {
                assert!(
                    program.subtype(&v.type_of(), &ty),
                    "preservation violated: {v} : {} but static type {ty}",
                    v.type_of()
                );
            }
        }
    }

    /// Without the inserted checks, the ill-behaved library method would
    /// produce values that violate the static types; with them, such
    /// executions reduce to blame instead.  (This is the reason the
    /// rewriting step exists.)
    #[test]
    fn unchecked_execution_can_break_preservation_but_checked_cannot() {
        let program = test_program();
        let checker = Checker::new(&program);
        let mut rng = Rng::new(0xB0B0B0);
        for _ in 0..CASES {
            let e = arb_expr(&mut rng, 4);
            let Ok((rewritten, ty)) = checker.check_expr(&e, "Obj") else {
                continue;
            };
            // Run the *unrewritten* expression: it may produce ill-typed
            // values or even get stuck (that is exactly why checks are
            // inserted), so no assertion is made about it beyond running it.
            let _unchecked = run(&program, &e, 50_000);
            // The rewritten expression never produces an ill-typed value and
            // never gets stuck.
            let checked = run(&program, &rewritten, 50_000);
            assert!(!checked.is_stuck(), "stuck: {checked:?}");
            if let Outcome::Val(v) = checked {
                assert!(program.subtype(&v.type_of(), &ty));
            }
        }
    }

    #[test]
    fn the_liar_is_blamed() {
        let program = test_program();
        let checker = Checker::new(&program);
        let e = Expr::call(Expr::New("A".into()), "liar", Expr::val(Value::Nil));
        let (rewritten, ty) = checker.check_expr(&e, "Obj").unwrap();
        assert_eq!(ty, "Bool");
        let outcome = run(&program, &rewritten, 1_000);
        assert!(outcome.is_blame(), "{outcome:?}");
        // Without rewriting, the lie goes unnoticed and preservation breaks.
        let outcome = run(&program, &e, 1_000);
        match outcome {
            Outcome::Val(v) => assert!(!program.subtype(&v.type_of(), "Bool")),
            other => panic!("unexpected {other:?}"),
        }
    }
}
