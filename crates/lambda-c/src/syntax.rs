//! Syntax of λC (paper §3.1, Figure 4).
//!
//! λC is a core object-oriented calculus in which class IDs are base types
//! *and* values (so type-level computations can return them), methods take
//! exactly one argument, and library methods may carry comp-type signatures
//! `(a <: e1/A1) → e2/A2` whose expressions evaluate to class IDs during
//! type checking.

use std::collections::BTreeMap;
use std::fmt;

/// A class identifier (also a base type and a value).
pub type ClassId = String;

/// Values of λC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `nil`.
    Nil,
    /// `true`.
    True,
    /// `false`.
    False,
    /// A class ID used as a value (types are values).
    Class(ClassId),
    /// An object instance `[A]`.
    Instance(ClassId),
}

impl Value {
    /// `type_of(v)` from the paper: the class of a value.
    pub fn type_of(&self) -> ClassId {
        match self {
            Value::Nil => "Nil".to_string(),
            Value::True => "True".to_string(),
            Value::False => "False".to_string(),
            Value::Class(_) => "Type".to_string(),
            Value::Instance(a) => a.clone(),
        }
    }

    /// Ruby-style truthiness (used by `if`).
    pub fn truthy(&self) -> bool {
        !matches!(self, Value::Nil | Value::False)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "nil"),
            Value::True => write!(f, "true"),
            Value::False => write!(f, "false"),
            Value::Class(a) => write!(f, "{a}"),
            Value::Instance(a) => write!(f, "[{a}]"),
        }
    }
}

/// Expressions of λC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A value literal.
    Val(Value),
    /// A program variable `x` (or the comp-type variable `a`).
    Var(String),
    /// `self`.
    SelfE,
    /// `tself` (only valid inside comp types).
    TSelf,
    /// `A.new`.
    New(ClassId),
    /// `e1; e2`.
    Seq(Box<Expr>, Box<Expr>),
    /// `e1 == e2`.
    Eq(Box<Expr>, Box<Expr>),
    /// `if e1 then e2 else e3`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `e.m(e)`.
    Call(Box<Expr>, String, Box<Expr>),
    /// `⌈A⌉ e.m(e)` — a checked library call inserted by the rewriter; not
    /// part of the surface syntax.
    CheckedCall(ClassId, Box<Expr>, String, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a call.
    pub fn call(recv: Expr, m: &str, arg: Expr) -> Expr {
        Expr::Call(Box::new(recv), m.to_string(), Box::new(arg))
    }

    /// Convenience constructor for a literal.
    pub fn val(v: Value) -> Expr {
        Expr::Val(v)
    }

    /// Size of the expression (number of nodes), used to bound generators.
    pub fn size(&self) -> usize {
        match self {
            Expr::Val(_) | Expr::Var(_) | Expr::SelfE | Expr::TSelf | Expr::New(_) => 1,
            Expr::Seq(a, b) | Expr::Eq(a, b) => 1 + a.size() + b.size(),
            Expr::If(a, b, c) => 1 + a.size() + b.size() + c.size(),
            Expr::Call(a, _, b) | Expr::CheckedCall(_, a, _, b) => 1 + a.size() + b.size(),
        }
    }
}

/// A conventional method type `A1 -> A2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimpleType {
    /// Domain class.
    pub dom: ClassId,
    /// Range class.
    pub rng: ClassId,
}

/// A library method type: either conventional or a comp type
/// `(a <: e1/A1) → e2/A2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LibType {
    /// `A1 -> A2`.
    Simple(SimpleType),
    /// `(a <: e1/A1) → e2/A2`.
    Comp {
        /// Argument-position type-level expression `e1`.
        arg_expr: Box<Expr>,
        /// Static bound `A1` on the argument.
        arg_bound: ClassId,
        /// Return-position type-level expression `e2`.
        ret_expr: Box<Expr>,
        /// Static bound `A2` on the result.
        ret_bound: ClassId,
    },
}

impl LibType {
    /// The `TCTU` erasure: drops type-level expressions, keeping the bounds
    /// (used to type check the type-level code itself without infinite
    /// regress; §3.2).
    pub fn erase(&self) -> SimpleType {
        match self {
            LibType::Simple(s) => s.clone(),
            LibType::Comp { arg_bound, ret_bound, .. } => {
                SimpleType { dom: arg_bound.clone(), rng: ret_bound.clone() }
            }
        }
    }
}

/// A user-defined method: declared type plus a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserMethod {
    /// Parameter name.
    pub param: String,
    /// Declared type.
    pub ty: SimpleType,
    /// The body.
    pub body: Expr,
}

/// A library method: a declared (possibly comp) type plus a native
/// implementation that may or may not respect it (the latter is what blame
/// catches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LibImpl {
    /// Returns a fixed value.
    Const(Value),
    /// Returns the receiver.
    ReturnSelf,
    /// Returns the argument.
    ReturnArg,
    /// Logical conjunction of receiver and argument truthiness (the paper's
    /// `Bool.∧` example).
    BoolAnd,
    /// Deliberately ill-behaved: always returns `nil` regardless of the
    /// declared return type (used to exercise blame).
    Lie,
}

/// A λC program: class hierarchy plus user and library methods.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// class → superclass (absent ⇒ `Obj`).
    pub superclasses: BTreeMap<ClassId, ClassId>,
    /// `(class, method)` → user method definition.
    pub user_methods: BTreeMap<(ClassId, String), UserMethod>,
    /// `(class, method)` → library method declaration and implementation.
    pub lib_methods: BTreeMap<(ClassId, String), (LibType, LibImpl)>,
}

impl Program {
    /// Built-in classes of λC.
    pub const BUILTINS: &'static [&'static str] = &["Obj", "Nil", "Bool", "True", "False", "Type"];

    /// Creates an empty program with the builtin class lattice.
    pub fn new() -> Self {
        let mut p = Program::default();
        p.superclasses.insert("True".into(), "Bool".into());
        p.superclasses.insert("False".into(), "Bool".into());
        p.superclasses.insert("Bool".into(), "Obj".into());
        p.superclasses.insert("Type".into(), "Obj".into());
        p.superclasses.insert("Nil".into(), "Obj".into());
        p
    }

    /// Declares a class.
    pub fn add_class(&mut self, name: &str, superclass: &str) {
        self.superclasses.insert(name.to_string(), superclass.to_string());
    }

    /// Adds a user-defined method `def A.m(x): σ = e`.
    pub fn def_user(&mut self, class: &str, method: &str, param: &str, ty: SimpleType, body: Expr) {
        self.user_methods.insert(
            (class.to_string(), method.to_string()),
            UserMethod { param: param.to_string(), ty, body },
        );
    }

    /// Adds a library method declaration `lib A.m(x): δ` with its native
    /// behaviour.
    pub fn def_lib(&mut self, class: &str, method: &str, ty: LibType, imp: LibImpl) {
        self.lib_methods.insert((class.to_string(), method.to_string()), (ty, imp));
    }

    /// `A ≤ A'` — subclassing, with `Nil` below everything and `Obj` on top.
    pub fn subtype(&self, a: &str, b: &str) -> bool {
        if a == b || b == "Obj" || a == "Nil" {
            return true;
        }
        let mut current = a.to_string();
        let mut fuel = 64;
        while fuel > 0 {
            fuel -= 1;
            match self.superclasses.get(&current) {
                Some(sup) => {
                    if sup == b {
                        return true;
                    }
                    current = sup.clone();
                }
                None => break,
            }
        }
        false
    }

    /// The least upper bound `A1 ⊔ A2`.
    pub fn lub(&self, a: &str, b: &str) -> ClassId {
        if self.subtype(a, b) {
            return b.to_string();
        }
        if self.subtype(b, a) {
            return a.to_string();
        }
        // Walk a's ancestors until one is above b.
        let mut current = a.to_string();
        let mut fuel = 64;
        while fuel > 0 {
            fuel -= 1;
            match self.superclasses.get(&current) {
                Some(sup) => {
                    if self.subtype(b, sup) {
                        return sup.clone();
                    }
                    current = sup.clone();
                }
                None => break,
            }
        }
        "Obj".to_string()
    }

    /// Looks up a method (user or library) on `class` or an ancestor,
    /// returning the defining class.
    pub fn lookup_class_of(&self, class: &str, method: &str) -> Option<ClassId> {
        let mut current = class.to_string();
        let mut fuel = 64;
        loop {
            if self.user_methods.contains_key(&(current.clone(), method.to_string()))
                || self.lib_methods.contains_key(&(current.clone(), method.to_string()))
            {
                return Some(current);
            }
            fuel -= 1;
            if fuel == 0 {
                return None;
            }
            match self.superclasses.get(&current) {
                Some(sup) => current = sup.clone(),
                None => return None,
            }
        }
    }

    /// All declared classes (builtins plus user classes).
    pub fn classes(&self) -> Vec<ClassId> {
        let mut out: Vec<ClassId> = Self::BUILTINS.iter().map(|s| s.to_string()).collect();
        out.extend(self.superclasses.keys().cloned());
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_types_and_truthiness() {
        assert_eq!(Value::True.type_of(), "True");
        assert_eq!(Value::Nil.type_of(), "Nil");
        assert_eq!(Value::Class("Obj".into()).type_of(), "Type");
        assert_eq!(Value::Instance("A".into()).type_of(), "A");
        assert!(Value::True.truthy());
        assert!(!Value::Nil.truthy());
        assert!(Value::Instance("A".into()).truthy());
    }

    #[test]
    fn subtyping_lattice() {
        let mut p = Program::new();
        p.add_class("A", "Obj");
        p.add_class("B", "A");
        assert!(p.subtype("True", "Bool"));
        assert!(p.subtype("B", "A"));
        assert!(p.subtype("B", "Obj"));
        assert!(!p.subtype("A", "B"));
        assert!(p.subtype("Nil", "A"));
        assert_eq!(p.lub("True", "False"), "Bool");
        assert_eq!(p.lub("B", "A"), "A");
        assert_eq!(p.lub("A", "Bool"), "Obj");
    }

    #[test]
    fn method_lookup_walks_ancestors() {
        let mut p = Program::new();
        p.add_class("A", "Obj");
        p.add_class("B", "A");
        p.def_user(
            "A",
            "m",
            "x",
            SimpleType { dom: "Obj".into(), rng: "Bool".into() },
            Expr::val(Value::True),
        );
        assert_eq!(p.lookup_class_of("B", "m"), Some("A".to_string()));
        assert_eq!(p.lookup_class_of("B", "missing"), None);
    }

    #[test]
    fn erasure_of_comp_types() {
        let comp = LibType::Comp {
            arg_expr: Box::new(Expr::val(Value::Class("Bool".into()))),
            arg_bound: "Bool".into(),
            ret_expr: Box::new(Expr::TSelf),
            ret_bound: "Bool".into(),
        };
        assert_eq!(comp.erase(), SimpleType { dom: "Bool".into(), rng: "Bool".into() });
    }
}
