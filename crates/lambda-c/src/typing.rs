//! Type checking and dynamic-check insertion for λC (paper §3.2, Figures 5,
//! 9 and 10).
//!
//! The judgment implemented here is `Γ ⊢ e ↪ e' : A`: under a type
//! environment and a class table, the source expression `e` is rewritten to
//! `e'` (inserting `⌈A⌉`-checks at library calls) and has type `A`.  Comp
//! types in library signatures are themselves type checked under the erased
//! class table (`TCTU`) and then *evaluated* to obtain the actual argument
//! and return classes (rule C-App-Comp).

use crate::semantics::{Evaluator, Outcome};
use crate::syntax::{ClassId, Expr, LibType, Program, Value};
use std::collections::HashMap;
use std::fmt;

/// A static type error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Description of the problem.
    pub message: String,
}

impl TypeError {
    fn new(message: impl Into<String>) -> Self {
        TypeError { message: message.into() }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.message)
    }
}

impl std::error::Error for TypeError {}

/// Fuel given to type-level evaluation (comp types must terminate; λC
/// assumes it, we enforce it).
const COMP_FUEL: u64 = 10_000;

/// The λC type checker / rewriter.
pub struct Checker<'a> {
    program: &'a Program,
    /// When true, comp types in library signatures are ignored and their
    /// bounds are used instead — this is the `TCTU` erasure used while
    /// checking type-level code, preventing infinite regress.
    erased: bool,
}

impl<'a> Checker<'a> {
    /// Creates a checker over `program`.
    pub fn new(program: &'a Program) -> Self {
        Checker { program, erased: false }
    }

    fn erased(program: &'a Program) -> Self {
        Checker { program, erased: true }
    }

    /// Checks and rewrites a closed expression with `self` of class
    /// `self_class`.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if the expression is ill-typed.
    pub fn check_expr(&self, expr: &Expr, self_class: &str) -> Result<(Expr, ClassId), TypeError> {
        let env = HashMap::new();
        self.check(expr, self_class, &env)
    }

    /// Checks every user-defined method body against its declared type
    /// (rule T-PDef), returning the rewritten program.
    ///
    /// # Errors
    ///
    /// Returns the first [`TypeError`] found.
    pub fn check_program(&self) -> Result<Program, TypeError> {
        let mut rewritten = self.program.clone();
        for ((class, name), def) in &self.program.user_methods {
            let mut env = HashMap::new();
            env.insert(def.param.clone(), def.ty.dom.clone());
            let (body, actual) = self.check(&def.body, class, &env)?;
            if !self.program.subtype(&actual, &def.ty.rng) {
                return Err(TypeError::new(format!(
                    "{class}.{name}: body has type {actual} but {} is declared",
                    def.ty.rng
                )));
            }
            rewritten
                .user_methods
                .get_mut(&(class.clone(), name.clone()))
                .expect("method exists")
                .body = body;
        }
        Ok(rewritten)
    }

    fn check(
        &self,
        expr: &Expr,
        self_class: &str,
        env: &HashMap<String, ClassId>,
    ) -> Result<(Expr, ClassId), TypeError> {
        match expr {
            Expr::Val(v) => Ok((expr.clone(), v.type_of())),
            Expr::Var(x) => match env.get(x) {
                Some(a) => Ok((expr.clone(), a.clone())),
                None => Err(TypeError::new(format!("unbound variable {x}"))),
            },
            Expr::SelfE => Ok((expr.clone(), self_class.to_string())),
            Expr::TSelf => {
                // tself has type Type inside type-level code (where the
                // environment binds it); outside it is ill-formed.
                if env.contains_key("tself") {
                    Ok((expr.clone(), "Type".to_string()))
                } else {
                    Err(TypeError::new("tself used outside of a comp type"))
                }
            }
            Expr::New(a) => Ok((expr.clone(), a.clone())),
            Expr::Seq(e1, e2) => {
                let (r1, _) = self.check(e1, self_class, env)?;
                let (r2, a2) = self.check(e2, self_class, env)?;
                Ok((Expr::Seq(Box::new(r1), Box::new(r2)), a2))
            }
            Expr::Eq(e1, e2) => {
                let (r1, _) = self.check(e1, self_class, env)?;
                let (r2, _) = self.check(e2, self_class, env)?;
                Ok((Expr::Eq(Box::new(r1), Box::new(r2)), "Bool".to_string()))
            }
            Expr::If(c, t, e) => {
                let (rc, _) = self.check(c, self_class, env)?;
                let (rt, at) = self.check(t, self_class, env)?;
                let (re, ae) = self.check(e, self_class, env)?;
                let ty = self.program.lub(&at, &ae);
                Ok((Expr::If(Box::new(rc), Box::new(rt), Box::new(re)), ty))
            }
            Expr::Call(recv, m, arg) | Expr::CheckedCall(_, recv, m, arg) => {
                self.check_call(recv, m, arg, self_class, env)
            }
        }
    }

    fn check_call(
        &self,
        recv: &Expr,
        m: &str,
        arg: &Expr,
        self_class: &str,
        env: &HashMap<String, ClassId>,
    ) -> Result<(Expr, ClassId), TypeError> {
        let (r_recv, a_recv) = self.check(recv, self_class, env)?;
        let (r_arg, a_arg) = self.check(arg, self_class, env)?;
        let owner = self
            .program
            .lookup_class_of(&a_recv, m)
            .ok_or_else(|| TypeError::new(format!("type {a_recv} has no method `{m}`")))?;

        // C-AppUD: user-defined methods are statically checked, no check
        // inserted.
        if let Some(def) = self.program.user_methods.get(&(owner.clone(), m.to_string())) {
            if !self.program.subtype(&a_arg, &def.ty.dom) {
                return Err(TypeError::new(format!(
                    "argument of `{m}` has type {a_arg}, expected {}",
                    def.ty.dom
                )));
            }
            return Ok((
                Expr::Call(Box::new(r_recv), m.to_string(), Box::new(r_arg)),
                def.ty.rng.clone(),
            ));
        }

        let (lib_ty, _) = self
            .program
            .lib_methods
            .get(&(owner, m.to_string()))
            .expect("lookup_class_of guarantees a definition");

        match lib_ty {
            // C-AppLib: simple library types insert a return check.
            LibType::Simple(s) => {
                if !self.program.subtype(&a_arg, &s.dom) {
                    return Err(TypeError::new(format!(
                        "argument of `{m}` has type {a_arg}, expected {}",
                        s.dom
                    )));
                }
                Ok((
                    Expr::CheckedCall(
                        s.rng.clone(),
                        Box::new(r_recv),
                        m.to_string(),
                        Box::new(r_arg),
                    ),
                    s.rng.clone(),
                ))
            }
            // C-App-Comp: comp types are checked under the erased class
            // table and then evaluated to obtain A1 and A2.
            LibType::Comp { arg_expr, arg_bound, ret_expr, ret_bound } => {
                if self.erased {
                    // TCTU: treat the comp type as its bounds.
                    if !self.program.subtype(&a_arg, arg_bound) {
                        return Err(TypeError::new(format!(
                            "argument of `{m}` has type {a_arg}, expected {arg_bound}"
                        )));
                    }
                    return Ok((
                        Expr::CheckedCall(
                            ret_bound.clone(),
                            Box::new(r_recv),
                            m.to_string(),
                            Box::new(r_arg),
                        ),
                        ret_bound.clone(),
                    ));
                }
                // Type check the type-level expressions themselves (they
                // must produce a Type) under the erased checker.
                let tlc_checker = Checker::erased(self.program);
                let mut tlc_env = HashMap::new();
                tlc_env.insert("a".to_string(), "Type".to_string());
                tlc_env.insert("tself".to_string(), "Type".to_string());
                let (_, t1) = tlc_checker.check(arg_expr, "Type", &tlc_env)?;
                let (_, t2) = tlc_checker.check(ret_expr, "Type", &tlc_env)?;
                for (which, t) in [("argument", &t1), ("return", &t2)] {
                    if t != "Type" && t != "Nil" {
                        return Err(TypeError::new(format!(
                            "{which} comp type of `{m}` has type {t}, expected Type"
                        )));
                    }
                }
                // Evaluate them with a ↦ Ax and tself ↦ A (class IDs as
                // values) to obtain the actual parameter and return classes.
                let a1 = self.eval_comp(arg_expr, &a_recv, &a_arg, m)?;
                let a2 = self.eval_comp(ret_expr, &a_recv, &a_arg, m)?;
                if !self.program.subtype(&a_arg, &a1) {
                    return Err(TypeError::new(format!(
                        "argument of `{m}` has type {a_arg}, but its comp type computed {a1}"
                    )));
                }
                if !self.program.subtype(&a2, ret_bound) {
                    return Err(TypeError::new(format!(
                        "comp type of `{m}` computed {a2}, exceeding its bound {ret_bound}"
                    )));
                }
                Ok((
                    Expr::CheckedCall(a2.clone(), Box::new(r_recv), m.to_string(), Box::new(r_arg)),
                    a2,
                ))
            }
        }
    }

    fn eval_comp(
        &self,
        expr: &Expr,
        recv_class: &str,
        arg_class: &str,
        m: &str,
    ) -> Result<ClassId, TypeError> {
        let mut evaluator = Evaluator::new(self.program, COMP_FUEL);
        let mut env = HashMap::new();
        env.insert("a".to_string(), Value::Class(arg_class.to_string()));
        let self_val = Value::Class(recv_class.to_string());
        let outcome = {
            // Re-use the public entry point by wrapping the environment into
            // a sequence of equalities is awkward; instead evaluate through a
            // substituted expression: replace Var("a") with the class value.
            let substituted = substitute(expr, "a", &Value::Class(arg_class.to_string()));
            let _ = env;
            evaluator.eval(&substituted, &self_val)
        };
        match outcome {
            Outcome::Val(Value::Class(a)) => Ok(a),
            Outcome::Val(other) => Err(TypeError::new(format!(
                "comp type of `{m}` evaluated to the non-type value {other}"
            ))),
            Outcome::Blame(msg) => {
                Err(TypeError::new(format!("comp type of `{m}` raised blame: {msg}")))
            }
            Outcome::Timeout => {
                Err(TypeError::new(format!("comp type of `{m}` did not terminate")))
            }
            Outcome::Stuck(msg) => {
                Err(TypeError::new(format!("comp type of `{m}` got stuck: {msg}")))
            }
        }
    }
}

/// Substitutes a variable with a value literal inside a type-level
/// expression.
fn substitute(expr: &Expr, var: &str, value: &Value) -> Expr {
    match expr {
        Expr::Var(x) if x == var => Expr::Val(value.clone()),
        Expr::Val(_) | Expr::Var(_) | Expr::SelfE | Expr::TSelf | Expr::New(_) => expr.clone(),
        Expr::Seq(a, b) => {
            Expr::Seq(Box::new(substitute(a, var, value)), Box::new(substitute(b, var, value)))
        }
        Expr::Eq(a, b) => {
            Expr::Eq(Box::new(substitute(a, var, value)), Box::new(substitute(b, var, value)))
        }
        Expr::If(a, b, c) => Expr::If(
            Box::new(substitute(a, var, value)),
            Box::new(substitute(b, var, value)),
            Box::new(substitute(c, var, value)),
        ),
        Expr::Call(a, m, b) => Expr::Call(
            Box::new(substitute(a, var, value)),
            m.clone(),
            Box::new(substitute(b, var, value)),
        ),
        Expr::CheckedCall(t, a, m, b) => Expr::CheckedCall(
            t.clone(),
            Box::new(substitute(a, var, value)),
            m.clone(),
            Box::new(substitute(b, var, value)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{LibImpl, SimpleType};

    /// The Bool.∧ example of §3.1: a comp type whose return is True / False
    /// when both operands are singletons, Bool otherwise.
    pub fn bool_and_program() -> Program {
        let mut p = Program::new();
        let ret_expr = Expr::If(
            Box::new(Expr::Eq(
                Box::new(Expr::TSelf),
                Box::new(Expr::val(Value::Class("True".into()))),
            )),
            Box::new(Expr::If(
                Box::new(Expr::Eq(
                    Box::new(Expr::Var("a".into())),
                    Box::new(Expr::val(Value::Class("True".into()))),
                )),
                Box::new(Expr::val(Value::Class("True".into()))),
                Box::new(Expr::val(Value::Class("Bool".into()))),
            )),
            Box::new(Expr::val(Value::Class("Bool".into()))),
        );
        p.def_lib(
            "Bool",
            "and",
            LibType::Comp {
                arg_expr: Box::new(Expr::val(Value::Class("Bool".into()))),
                arg_bound: "Bool".into(),
                ret_expr: Box::new(ret_expr),
                ret_bound: "Bool".into(),
            },
            LibImpl::BoolAnd,
        );
        p
    }

    #[test]
    fn comp_type_computes_singleton_results() {
        let p = bool_and_program();
        let checker = Checker::new(&p);
        let e = Expr::call(Expr::val(Value::True), "and", Expr::val(Value::True));
        let (rewritten, ty) = checker.check_expr(&e, "Obj").unwrap();
        assert_eq!(ty, "True");
        assert!(matches!(rewritten, Expr::CheckedCall(ref a, ..) if a == "True"));
        // Mixed operands fall back to Bool.
        let e = Expr::call(Expr::val(Value::False), "and", Expr::val(Value::True));
        let (_, ty) = checker.check_expr(&e, "Obj").unwrap();
        assert_eq!(ty, "Bool");
    }

    #[test]
    fn user_methods_are_checked_not_rewritten() {
        let mut p = Program::new();
        p.add_class("A", "Obj");
        p.def_user(
            "A",
            "id",
            "x",
            SimpleType { dom: "Bool".into(), rng: "Bool".into() },
            Expr::Var("x".into()),
        );
        let checker = Checker::new(&p);
        let e = Expr::call(Expr::New("A".into()), "id", Expr::val(Value::True));
        let (rewritten, ty) = checker.check_expr(&e, "Obj").unwrap();
        assert_eq!(ty, "Bool");
        assert!(matches!(rewritten, Expr::Call(..)));
        // Ill-typed argument.
        let bad = Expr::call(Expr::New("A".into()), "id", Expr::New("A".into()));
        assert!(checker.check_expr(&bad, "Obj").is_err());
        // The program itself checks.
        assert!(checker.check_program().is_ok());
    }

    #[test]
    fn simple_library_calls_get_checks_inserted() {
        let mut p = Program::new();
        p.add_class("A", "Obj");
        p.def_lib(
            "A",
            "mk",
            LibType::Simple(SimpleType { dom: "Obj".into(), rng: "Bool".into() }),
            LibImpl::Const(Value::True),
        );
        let checker = Checker::new(&p);
        let e = Expr::call(Expr::New("A".into()), "mk", Expr::val(Value::Nil));
        let (rewritten, ty) = checker.check_expr(&e, "Obj").unwrap();
        assert_eq!(ty, "Bool");
        assert!(matches!(rewritten, Expr::CheckedCall(ref a, ..) if a == "Bool"));
    }

    #[test]
    fn ill_typed_method_bodies_are_rejected() {
        let mut p = Program::new();
        p.add_class("A", "Obj");
        p.def_user(
            "A",
            "bad",
            "x",
            SimpleType { dom: "Obj".into(), rng: "Bool".into() },
            Expr::New("A".into()),
        );
        assert!(Checker::new(&p).check_program().is_err());
    }

    #[test]
    fn unknown_methods_and_variables_are_rejected() {
        let p = Program::new();
        let checker = Checker::new(&p);
        assert!(checker
            .check_expr(&Expr::call(Expr::val(Value::True), "zap", Expr::val(Value::Nil)), "Obj")
            .is_err());
        assert!(checker.check_expr(&Expr::Var("ghost".into()), "Obj").is_err());
        assert!(checker.check_expr(&Expr::TSelf, "Obj").is_err());
    }
}
