//! Runtime errors and non-local control flow.

use crate::value::Value;
use ruby_syntax::Span;
use std::fmt;

/// The result of evaluating an expression.
pub type EvalResult<T = Value> = Result<T, Control>;

/// Either a genuine runtime error or a non-local control-flow signal
/// (`return` / `break` / `next`), which the interpreter models as `Err`
/// values that are caught at the appropriate frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Control {
    /// A runtime error.
    Error(RubyError),
    /// `return v` propagating out of the current method.
    Return(Value),
    /// `break` propagating out of the current block/loop.
    Break(Value),
    /// `next` propagating out of the current block iteration.
    Next(Value),
}

impl Control {
    /// Wraps an error message as a generic runtime error.
    pub fn error(kind: ErrorKind, message: impl Into<String>, span: Span) -> Control {
        Control::Error(RubyError { kind, message: message.into(), span })
    }
}

impl From<RubyError> for Control {
    fn from(e: RubyError) -> Self {
        Control::Error(e)
    }
}

/// Classification of runtime errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// A dynamic check inserted by CompRDL failed: the library method did
    /// not abide by its computed type, or a comp type evaluated to a
    /// different type at run time than at type-check time (paper §3.3 / §4).
    Blame,
    /// `NoMethodError`.
    NoMethod,
    /// `NameError` (undefined local variable or constant).
    Name,
    /// `ArgumentError`.
    Argument,
    /// `TypeError`.
    Type,
    /// An explicit `raise`.
    Raised,
    /// An assertion from the mini test harness failed.
    AssertionFailed,
    /// The interpreter ran out of fuel (probable infinite loop).
    Timeout,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::Blame => "blame",
            ErrorKind::NoMethod => "NoMethodError",
            ErrorKind::Name => "NameError",
            ErrorKind::Argument => "ArgumentError",
            ErrorKind::Type => "TypeError",
            ErrorKind::Raised => "RuntimeError",
            ErrorKind::AssertionFailed => "AssertionFailed",
            ErrorKind::Timeout => "Timeout",
        };
        f.write_str(s)
    }
}

/// A Ruby runtime error.
#[derive(Debug, Clone, PartialEq)]
pub struct RubyError {
    /// What kind of error.
    pub kind: ErrorKind,
    /// Human readable message.
    pub message: String,
    /// Where the error originated.
    pub span: Span,
}

impl RubyError {
    /// Creates an error.
    pub fn new(kind: ErrorKind, message: impl Into<String>, span: Span) -> Self {
        RubyError { kind, message: message.into(), span }
    }

    /// True if this error represents blame from a failed dynamic check.
    pub fn is_blame(&self) -> bool {
        self.kind == ErrorKind::Blame
    }
}

impl fmt::Display for RubyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}: {}", self.kind, self.span, self.message)
    }
}

impl std::error::Error for RubyError {}

impl ErrorKind {
    /// Stable diagnostic code for this kind of runtime error.
    pub fn code(self) -> &'static str {
        match self {
            ErrorKind::Blame => "RT0001",
            ErrorKind::NoMethod => "RT0002",
            ErrorKind::Name => "RT0003",
            ErrorKind::Argument => "RT0004",
            ErrorKind::Type => "RT0005",
            ErrorKind::Raised => "RT0006",
            ErrorKind::AssertionFailed => "RT0007",
            ErrorKind::Timeout => "RT0008",
        }
    }
}

impl From<RubyError> for diagnostics::Diagnostic {
    fn from(e: RubyError) -> Self {
        let mut d = diagnostics::Diagnostic::error(e.kind.code(), e.message.clone())
            .with_label(e.span, format!("{} raised here", e.kind));
        if e.kind == ErrorKind::Blame {
            d = d.with_note(
                "a dynamic check inserted by CompRDL failed: the library method \
                 did not abide by its computed type",
            );
        }
        d
    }
}

/// Converts a terminated control signal into a plain error (a `return`
/// escaping the program top level is treated as a normal result by callers
/// that want it).
pub fn into_error(c: Control) -> RubyError {
    match c {
        Control::Error(e) => e,
        Control::Return(_) => {
            RubyError::new(ErrorKind::Raised, "unexpected top-level return", Span::dummy())
        }
        Control::Break(_) => {
            RubyError::new(ErrorKind::Raised, "break outside of a loop or block", Span::dummy())
        }
        Control::Next(_) => {
            RubyError::new(ErrorKind::Raised, "next outside of a block", Span::dummy())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blame_classification() {
        let e = RubyError::new(ErrorKind::Blame, "expected Array, got String", Span::dummy());
        assert!(e.is_blame());
        assert!(e.to_string().contains("blame"));
        let e = RubyError::new(ErrorKind::NoMethod, "undefined method", Span::dummy());
        assert!(!e.is_blame());
    }

    #[test]
    fn control_conversion() {
        let e = into_error(Control::Break(Value::Nil));
        assert_eq!(e.kind, ErrorKind::Raised);
        let e = into_error(Control::Error(RubyError::new(ErrorKind::Name, "x", Span::dummy())));
        assert_eq!(e.kind, ErrorKind::Name);
    }
}
