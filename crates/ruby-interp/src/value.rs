//! Runtime values of the Ruby-subset interpreter.

use ruby_syntax::{Block, Expr};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Shared mutable string contents.
pub type StrRef = Rc<RefCell<String>>;
/// Shared mutable array contents.
pub type ArrayRef = Rc<RefCell<Vec<Value>>>;
/// Shared mutable hash contents (insertion ordered association list).
pub type HashRef = Rc<RefCell<Vec<(Value, Value)>>>;
/// Shared mutable object state.
pub type ObjectRef = Rc<RefCell<ObjectData>>;

/// The instance state of a user-defined object.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectData {
    /// The object's class name.
    pub class: String,
    /// Instance variables (`@x` → value).
    pub ivars: HashMap<String, Value>,
}

/// A lambda or block closure.
#[derive(Debug, Clone)]
pub struct Closure {
    /// Parameter names.
    pub params: Vec<String>,
    /// Body expressions.
    pub body: Vec<Expr>,
    /// The captured local scope (shared with the defining frame, as in Ruby).
    pub locals: Rc<RefCell<HashMap<String, Value>>>,
    /// The captured `self`.
    pub self_val: Value,
}

impl Closure {
    /// Builds a closure from a literal block.
    pub fn from_block(
        block: &Block,
        locals: Rc<RefCell<HashMap<String, Value>>>,
        self_val: Value,
    ) -> Self {
        Closure { params: block.params.clone(), body: block.body.clone(), locals, self_val }
    }
}

impl PartialEq for Closure {
    fn eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.locals, &other.locals) && self.params == other.params
    }
}

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// `nil`
    Nil,
    /// `true` / `false`
    Bool(bool),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A (mutable, shared) string.
    Str(StrRef),
    /// A symbol.
    Sym(String),
    /// A (mutable, shared) array.
    Array(ArrayRef),
    /// A (mutable, shared) hash.
    Hash(HashRef),
    /// An instance of a user-defined class.
    Object(ObjectRef),
    /// A class object (the value of a constant such as `User`).
    Class(String),
    /// A lambda / proc.
    Lambda(Rc<Closure>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(Rc::new(RefCell::new(s.into())))
    }

    /// Builds an array value.
    pub fn array(items: Vec<Value>) -> Value {
        Value::Array(Rc::new(RefCell::new(items)))
    }

    /// Builds a hash value from key/value pairs.
    pub fn hash(pairs: Vec<(Value, Value)>) -> Value {
        Value::Hash(Rc::new(RefCell::new(pairs)))
    }

    /// Builds a new instance of `class` with no instance variables.
    pub fn new_object(class: impl Into<String>) -> Value {
        Value::Object(Rc::new(RefCell::new(ObjectData {
            class: class.into(),
            ivars: HashMap::new(),
        })))
    }

    /// Ruby truthiness: everything except `nil` and `false` is truthy.
    pub fn truthy(&self) -> bool {
        !matches!(self, Value::Nil | Value::Bool(false))
    }

    /// The name of the value's class.
    pub fn class_name(&self) -> String {
        match self {
            Value::Nil => "NilClass".to_string(),
            Value::Bool(true) => "TrueClass".to_string(),
            Value::Bool(false) => "FalseClass".to_string(),
            Value::Int(_) => "Integer".to_string(),
            Value::Float(_) => "Float".to_string(),
            Value::Str(_) => "String".to_string(),
            Value::Sym(_) => "Symbol".to_string(),
            Value::Array(_) => "Array".to_string(),
            Value::Hash(_) => "Hash".to_string(),
            Value::Object(o) => o.borrow().class.clone(),
            Value::Class(_) => "Class".to_string(),
            Value::Lambda(_) => "Proc".to_string(),
        }
    }

    /// Ruby `==` (structural for strings/arrays/hashes, identity for
    /// objects).
    pub fn ruby_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Nil, Value::Nil) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            (Value::Str(a), Value::Str(b)) => *a.borrow() == *b.borrow(),
            (Value::Sym(a), Value::Sym(b)) => a == b,
            (Value::Class(a), Value::Class(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => {
                let a = a.borrow();
                let b = b.borrow();
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.ruby_eq(y))
            }
            (Value::Hash(a), Value::Hash(b)) => {
                let a = a.borrow();
                let b = b.borrow();
                a.len() == b.len()
                    && a.iter()
                        .all(|(k, v)| b.iter().any(|(k2, v2)| k.ruby_eq(k2) && v.ruby_eq(v2)))
            }
            (Value::Object(a), Value::Object(b)) => Rc::ptr_eq(a, b),
            (Value::Lambda(a), Value::Lambda(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// `inspect`-style rendering (strings quoted).
    pub fn inspect(&self) -> String {
        match self {
            Value::Nil => "nil".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format!("{f}"),
            Value::Str(s) => format!("{:?}", s.borrow()),
            Value::Sym(s) => format!(":{s}"),
            Value::Array(items) => {
                let inner: Vec<String> = items.borrow().iter().map(|v| v.inspect()).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Hash(pairs) => {
                let inner: Vec<String> = pairs
                    .borrow()
                    .iter()
                    .map(|(k, v)| format!("{} => {}", k.inspect(), v.inspect()))
                    .collect();
                format!("{{{}}}", inner.join(", "))
            }
            Value::Object(o) => format!("#<{}>", o.borrow().class),
            Value::Class(c) => c.clone(),
            Value::Lambda(_) => "#<Proc>".to_string(),
        }
    }

    /// `to_s`-style rendering (strings unquoted).
    pub fn to_display_string(&self) -> String {
        match self {
            Value::Str(s) => s.borrow().clone(),
            Value::Sym(s) => s.clone(),
            Value::Nil => String::new(),
            other => other.inspect(),
        }
    }

    /// Reads the string contents if this is a string.
    pub fn as_str(&self) -> Option<String> {
        match self {
            Value::Str(s) => Some(s.borrow().clone()),
            _ => None,
        }
    }

    /// Reads the integer if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Looks up a key in a hash value (using Ruby `==` on keys).
    pub fn hash_get(&self, key: &Value) -> Option<Value> {
        match self {
            Value::Hash(pairs) => {
                pairs.borrow().iter().find(|(k, _)| k.ruby_eq(key)).map(|(_, v)| v.clone())
            }
            _ => None,
        }
    }

    /// Inserts/overwrites a key in a hash value.
    pub fn hash_set(&self, key: Value, value: Value) {
        if let Value::Hash(pairs) = self {
            let mut pairs = pairs.borrow_mut();
            if let Some(slot) = pairs.iter_mut().find(|(k, _)| k.ruby_eq(&key)) {
                slot.1 = value;
            } else {
                pairs.push((key, value));
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.ruby_eq(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_display_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Nil.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Bool(true).truthy());
        assert!(Value::Int(0).truthy());
        assert!(Value::str("").truthy());
    }

    #[test]
    fn class_names() {
        assert_eq!(Value::Int(1).class_name(), "Integer");
        assert_eq!(Value::str("x").class_name(), "String");
        assert_eq!(Value::Sym("a".into()).class_name(), "Symbol");
        assert_eq!(Value::new_object("User").class_name(), "User");
        assert_eq!(Value::Class("User".into()).class_name(), "Class");
    }

    #[test]
    fn structural_equality() {
        assert!(Value::array(vec![Value::Int(1), Value::str("a")])
            .ruby_eq(&Value::array(vec![Value::Int(1), Value::str("a")])));
        assert!(!Value::array(vec![Value::Int(1)]).ruby_eq(&Value::array(vec![Value::Int(2)])));
        assert!(Value::Int(1).ruby_eq(&Value::Float(1.0)));
        let h1 = Value::hash(vec![(Value::Sym("a".into()), Value::Int(1))]);
        let h2 = Value::hash(vec![(Value::Sym("a".into()), Value::Int(1))]);
        assert!(h1.ruby_eq(&h2));
    }

    #[test]
    fn object_identity_equality() {
        let a = Value::new_object("User");
        let b = Value::new_object("User");
        assert!(!a.ruby_eq(&b));
        assert!(a.ruby_eq(&a.clone()));
    }

    #[test]
    fn hash_access_helpers() {
        let h = Value::hash(vec![(Value::Sym("name".into()), Value::str("alice"))]);
        assert_eq!(h.hash_get(&Value::Sym("name".into())), Some(Value::str("alice")));
        assert_eq!(h.hash_get(&Value::Sym("missing".into())), None);
        h.hash_set(Value::Sym("name".into()), Value::str("bob"));
        h.hash_set(Value::Sym("age".into()), Value::Int(3));
        assert_eq!(h.hash_get(&Value::Sym("name".into())), Some(Value::str("bob")));
        assert_eq!(h.hash_get(&Value::Sym("age".into())), Some(Value::Int(3)));
    }

    #[test]
    fn inspect_and_display() {
        assert_eq!(Value::str("hi").inspect(), "\"hi\"");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(Value::array(vec![Value::Int(1), Value::Nil]).inspect(), "[1, nil]");
        assert_eq!(Value::Sym("x".into()).inspect(), ":x");
    }
}
