//! # ruby-interp
//!
//! A tree-walking interpreter for the Ruby subset defined in
//! [`ruby_syntax`], with:
//!
//! * a faithful-enough object model (classes, inheritance, instance and
//!   class-level state, blocks and closures, attr accessors),
//! * native implementations of the core library methods that CompRDL
//!   annotates with comp types (Array, Hash, String, Integer, Float, ...),
//! * a [`DynamicCheckHook`] interface through which the CompRDL rewriter
//!   attaches run-time checks to library call sites, so the evaluation
//!   harness can run subject-program test suites with and without checks
//!   (paper Table 2, "Test Time No Chk" vs "w/Chk").
//!
//! ## Quick start
//!
//! ```
//! use ruby_interp::{Interpreter, Value};
//!
//! let prog = ruby_syntax::parse_program_strict(
//!     "def fib(n)\n  if n < 2 then n else fib(n - 1) + fib(n - 2) end\nend\nfib(10)",
//! ).unwrap();
//! let interp = Interpreter::new(prog);
//! assert_eq!(interp.eval_program().unwrap(), Value::Int(55));
//! ```

#![warn(missing_docs)]

pub mod contracts;
mod corelib;
pub mod error;
pub mod interp;
pub mod value;

pub use contracts::{CountingHook, DynamicCheckHook, NullHook};
pub use error::{Control, ErrorKind, EvalResult, RubyError};
pub use interp::{Frame, Interpreter};
pub use value::{Closure, ObjectData, Value};
