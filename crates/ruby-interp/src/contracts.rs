//! The dynamic-check (contract) interface.
//!
//! CompRDL does not type check the bodies of comp-type-annotated library
//! methods; instead it wraps calls to them in run-time checks (paper §2.4,
//! §3).  The rewriting step lives in the `comprdl` crate; the interpreter
//! only needs a way to be told "this call site is checked" and to invoke the
//! checks, which is what [`DynamicCheckHook`] provides.  Keeping the hook as
//! a trait also lets the evaluation harness run the same test suite with and
//! without checks to measure their overhead (Table 2).

use crate::value::Value;
use ruby_syntax::Span;
use std::cell::Cell;

/// Callbacks invoked by the interpreter around checked call sites.
pub trait DynamicCheckHook {
    /// Whether the call at `site` carries any dynamic check.
    fn has_check(&self, site: Span) -> bool;

    /// Invoked before a checked call, with the evaluated receiver and
    /// arguments.  This is where CompRDL re-evaluates the comp type on the
    /// same inputs to detect mutation of type-level state (§4 "Heap
    /// Mutation").
    ///
    /// # Errors
    ///
    /// Returning `Err` raises blame at the call site.
    fn before_call(&self, site: Span, recv: &Value, args: &[Value]) -> Result<(), String>;

    /// Invoked after a checked call with the value it returned, to check the
    /// value against the computed return type.
    ///
    /// # Errors
    ///
    /// Returning `Err` raises blame at the call site.
    fn after_call(&self, site: Span, ret: &Value) -> Result<(), String>;
}

/// A hook that performs no checks (used to measure baseline test time).
#[derive(Debug, Default, Clone)]
pub struct NullHook;

impl DynamicCheckHook for NullHook {
    fn has_check(&self, _site: Span) -> bool {
        false
    }

    fn before_call(&self, _site: Span, _recv: &Value, _args: &[Value]) -> Result<(), String> {
        Ok(())
    }

    fn after_call(&self, _site: Span, _ret: &Value) -> Result<(), String> {
        Ok(())
    }
}

/// A hook wrapper that counts how many checks were executed; useful in tests
/// and in the overhead benchmarks.
pub struct CountingHook<H> {
    inner: H,
    before: Cell<u64>,
    after: Cell<u64>,
}

impl<H> CountingHook<H> {
    /// Wraps `inner`.
    pub fn new(inner: H) -> Self {
        CountingHook { inner, before: Cell::new(0), after: Cell::new(0) }
    }

    /// Number of `before_call` checks executed.
    pub fn before_count(&self) -> u64 {
        self.before.get()
    }

    /// Number of `after_call` checks executed.
    pub fn after_count(&self) -> u64 {
        self.after.get()
    }

    /// The wrapped hook.
    pub fn inner(&self) -> &H {
        &self.inner
    }
}

impl<H: DynamicCheckHook> DynamicCheckHook for CountingHook<H> {
    fn has_check(&self, site: Span) -> bool {
        self.inner.has_check(site)
    }

    fn before_call(&self, site: Span, recv: &Value, args: &[Value]) -> Result<(), String> {
        self.before.set(self.before.get() + 1);
        self.inner.before_call(site, recv, args)
    }

    fn after_call(&self, site: Span, ret: &Value) -> Result<(), String> {
        self.after.set(self.after.get() + 1);
        self.inner.after_call(site, ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_hook_never_checks() {
        let h = NullHook;
        assert!(!h.has_check(Span::dummy()));
        assert!(h.before_call(Span::dummy(), &Value::Nil, &[]).is_ok());
        assert!(h.after_call(Span::dummy(), &Value::Nil).is_ok());
    }

    struct AlwaysCheck;
    impl DynamicCheckHook for AlwaysCheck {
        fn has_check(&self, _s: Span) -> bool {
            true
        }
        fn before_call(&self, _s: Span, _r: &Value, _a: &[Value]) -> Result<(), String> {
            Ok(())
        }
        fn after_call(&self, _s: Span, ret: &Value) -> Result<(), String> {
            if ret.truthy() {
                Ok(())
            } else {
                Err("expected a truthy value".to_string())
            }
        }
    }

    #[test]
    fn counting_hook_counts_and_delegates() {
        let h = CountingHook::new(AlwaysCheck);
        assert!(h.has_check(Span::dummy()));
        h.before_call(Span::dummy(), &Value::Nil, &[]).unwrap();
        assert!(h.after_call(Span::dummy(), &Value::Int(1)).is_ok());
        assert!(h.after_call(Span::dummy(), &Value::Nil).is_err());
        assert_eq!(h.before_count(), 1);
        assert_eq!(h.after_count(), 2);
    }
}
