//! The tree-walking interpreter.

use crate::contracts::DynamicCheckHook;
use crate::corelib;
use crate::error::{Control, ErrorKind, EvalResult, RubyError};
use crate::value::{Closure, Value};
use ruby_syntax::{BinOp, Block, Expr, ExprKind, Item, LValue, MethodDef, Program, Span};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

/// Default evaluation fuel (one unit per AST node evaluated).
const DEFAULT_FUEL: u64 = 20_000_000;

/// How attr accessor helpers behave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessorKind {
    Reader,
    Writer,
    Both,
}

/// Table of user-defined classes and methods extracted from a [`Program`].
#[derive(Default)]
struct MethodTable {
    /// (class, is_singleton, name) → definition.
    methods: HashMap<(String, bool, String), Rc<MethodDef>>,
    /// class → superclass.
    superclasses: HashMap<String, String>,
    /// (class, attribute) → accessor kind.
    accessors: HashMap<(String, String), AccessorKind>,
}

impl MethodTable {
    fn from_program(program: &Program) -> Self {
        let mut table = MethodTable::default();
        table.collect("Object", &program.items);
        table
    }

    fn collect(&mut self, owner: &str, items: &[Item]) {
        for item in items {
            match item {
                Item::Method(m) => {
                    self.methods.insert(
                        (owner.to_string(), m.singleton, m.name.clone()),
                        Rc::new(m.clone()),
                    );
                }
                Item::Class(c) => {
                    let sup = c.superclass.clone().unwrap_or_else(|| "Object".to_string());
                    self.superclasses.insert(c.name.clone(), sup);
                    self.collect(&c.name, &c.body);
                    // attr_accessor / attr_reader / attr_writer declarations.
                    for body_item in &c.body {
                        if let Item::Expr(e) = body_item {
                            if let ExprKind::Call { recv: None, name, args, .. } = &e.kind {
                                let kind = match name.as_str() {
                                    "attr_accessor" => Some(AccessorKind::Both),
                                    "attr_reader" => Some(AccessorKind::Reader),
                                    "attr_writer" => Some(AccessorKind::Writer),
                                    _ => None,
                                };
                                if let Some(kind) = kind {
                                    for arg in args {
                                        if let ExprKind::Sym(attr) = &arg.kind {
                                            self.accessors
                                                .insert((c.name.clone(), attr.clone()), kind);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                Item::Expr(_) => {}
            }
        }
    }

    fn ancestors(&self, class: &str) -> Vec<String> {
        let mut out = vec![class.to_string()];
        let mut current = class.to_string();
        let mut fuel = 64;
        while fuel > 0 {
            fuel -= 1;
            match self.superclasses.get(&current) {
                Some(sup) => {
                    out.push(sup.clone());
                    current = sup.clone();
                }
                None => break,
            }
        }
        // Builtin numeric tower fallbacks.
        match class {
            "Integer" | "Float" => out.push("Numeric".to_string()),
            _ => {}
        }
        if !out.contains(&"Object".to_string()) {
            out.push("Object".to_string());
        }
        out
    }

    fn lookup(&self, class: &str, singleton: bool, name: &str) -> Option<Rc<MethodDef>> {
        for anc in self.ancestors(class) {
            if let Some(m) = self.methods.get(&(anc, singleton, name.to_string())) {
                return Some(m.clone());
            }
        }
        None
    }

    fn accessor(&self, class: &str, name: &str) -> Option<(AccessorKind, String)> {
        let (attr, is_writer) = match name.strip_suffix('=') {
            Some(base) => (base.to_string(), true),
            None => (name.to_string(), false),
        };
        for anc in self.ancestors(class) {
            if let Some(kind) = self.accessors.get(&(anc, attr.clone())) {
                let ok = match kind {
                    AccessorKind::Both => true,
                    AccessorKind::Reader => !is_writer,
                    AccessorKind::Writer => is_writer,
                };
                if ok {
                    return Some((*kind, attr));
                }
            }
        }
        None
    }

    fn is_class(&self, name: &str) -> bool {
        self.superclasses.contains_key(name)
    }
}

/// A call frame: local variables, `self`, and the block passed to the
/// current method (for `yield`).
#[derive(Clone)]
pub struct Frame {
    /// Local variables, shared with any blocks created in this frame.
    pub locals: Rc<RefCell<HashMap<String, Value>>>,
    /// The current `self`.
    pub self_val: Value,
    /// The block passed to the current method, if any.
    pub block: Option<Rc<Closure>>,
}

impl Frame {
    /// A fresh top-level frame with `self` bound to the "main" object.
    pub fn top_level() -> Self {
        Frame {
            locals: Rc::new(RefCell::new(HashMap::new())),
            self_val: Value::new_object("Object"),
            block: None,
        }
    }
}

/// The Ruby-subset interpreter.
pub struct Interpreter {
    table: MethodTable,
    program: Program,
    globals: RefCell<HashMap<String, Value>>,
    constants: RefCell<HashMap<String, Value>>,
    class_ivars: RefCell<HashMap<(String, String), Value>>,
    hook: Option<Rc<dyn DynamicCheckHook>>,
    fuel: Cell<u64>,
    checks_performed: Cell<u64>,
    output: RefCell<Vec<String>>,
}

impl Interpreter {
    /// Creates an interpreter for `program` (class and method definitions
    /// are registered immediately; top-level expressions run when
    /// [`Interpreter::eval_program`] is called).
    pub fn new(program: Program) -> Self {
        Interpreter {
            table: MethodTable::from_program(&program),
            program,
            globals: RefCell::new(HashMap::new()),
            constants: RefCell::new(HashMap::new()),
            class_ivars: RefCell::new(HashMap::new()),
            hook: None,
            fuel: Cell::new(DEFAULT_FUEL),
            checks_performed: Cell::new(0),
            output: RefCell::new(Vec::new()),
        }
    }

    /// Installs the dynamic-check hook used at rewritten (checked) call
    /// sites.
    pub fn set_hook(&mut self, hook: Rc<dyn DynamicCheckHook>) {
        self.hook = Some(hook);
    }

    /// Removes any installed hook (runs the program unchecked).
    pub fn clear_hook(&mut self) {
        self.hook = None;
    }

    /// Overrides the evaluation fuel (number of AST nodes evaluated before
    /// the interpreter reports a timeout).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel.set(fuel);
    }

    /// Number of dynamic checks executed so far.
    pub fn checks_performed(&self) -> u64 {
        self.checks_performed.get()
    }

    /// Lines printed by `puts` during evaluation.
    pub fn output(&self) -> Vec<String> {
        self.output.borrow().clone()
    }

    /// Defines a global constant (e.g. a fixture object).
    pub fn define_constant(&self, name: &str, value: Value) {
        self.constants.borrow_mut().insert(name.to_string(), value);
    }

    /// Defines a global variable.
    pub fn define_global(&self, name: &str, value: Value) {
        self.globals.borrow_mut().insert(name.to_string(), value);
    }

    /// Evaluates every top-level expression of the program in order.
    ///
    /// # Errors
    ///
    /// Returns the first runtime error (including blame) encountered.
    pub fn eval_program(&self) -> Result<Value, RubyError> {
        let frame = Frame::top_level();
        let mut last = Value::Nil;
        for item in &self.program.items.clone() {
            if let Item::Expr(e) = item {
                match self.eval(&frame, e) {
                    Ok(v) => last = v,
                    Err(Control::Return(v)) => return Ok(v),
                    Err(c) => return Err(crate::error::into_error(c)),
                }
            }
        }
        Ok(last)
    }

    /// Calls a user-defined method by name, e.g. `call("User", true,
    /// "available?", args)` for `User.available?`.
    ///
    /// # Errors
    ///
    /// Returns runtime errors raised during the call.
    pub fn call(
        &self,
        class: &str,
        singleton: bool,
        name: &str,
        args: Vec<Value>,
    ) -> Result<Value, RubyError> {
        let recv =
            if singleton { Value::Class(class.to_string()) } else { Value::new_object(class) };
        self.invoke_method(Span::dummy(), &recv, name, args, None).map_err(crate::error::into_error)
    }

    // ---- evaluation -----------------------------------------------------

    fn burn(&self, span: Span) -> EvalResult<()> {
        let f = self.fuel.get();
        if f == 0 {
            return Err(Control::error(ErrorKind::Timeout, "evaluation fuel exhausted", span));
        }
        self.fuel.set(f - 1);
        Ok(())
    }

    /// Evaluates a single expression in the given frame.
    ///
    /// # Errors
    ///
    /// Returns runtime errors or control-flow signals.
    pub fn eval(&self, frame: &Frame, expr: &Expr) -> EvalResult {
        self.burn(expr.span)?;
        match &expr.kind {
            ExprKind::Nil => Ok(Value::Nil),
            ExprKind::True => Ok(Value::Bool(true)),
            ExprKind::False => Ok(Value::Bool(false)),
            ExprKind::Int(i) => Ok(Value::Int(*i)),
            ExprKind::Float(f) => Ok(Value::Float(*f)),
            ExprKind::Str(s) => Ok(Value::str(s.clone())),
            ExprKind::Sym(s) => Ok(Value::Sym(s.clone())),
            ExprKind::Array(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(frame, item)?);
                }
                Ok(Value::array(out))
            }
            ExprKind::Hash(pairs) => {
                let mut out = Vec::with_capacity(pairs.len());
                for (k, v) in pairs {
                    out.push((self.eval(frame, k)?, self.eval(frame, v)?));
                }
                Ok(Value::hash(out))
            }
            ExprKind::SelfExpr => Ok(frame.self_val.clone()),
            ExprKind::Ident(name) => {
                if let Some(v) = frame.locals.borrow().get(name) {
                    return Ok(v.clone());
                }
                self.invoke_method(expr.span, &frame.self_val, name, vec![], frame.block.clone())
            }
            ExprKind::IVar(name) => Ok(self.read_ivar(&frame.self_val, name)),
            ExprKind::GVar(name) => {
                Ok(self.globals.borrow().get(name).cloned().unwrap_or(Value::Nil))
            }
            ExprKind::Const(path) => self.read_const(expr.span, path),
            ExprKind::Assign { target, value } => {
                let v = self.eval(frame, value)?;
                self.assign(frame, expr.span, target, v.clone())?;
                Ok(v)
            }
            ExprKind::OpAssign { target, op, value } => {
                let current = self.read_lvalue(frame, expr.span, target)?;
                let new = match op.as_str() {
                    "||" => {
                        if current.truthy() {
                            current
                        } else {
                            self.eval(frame, value)?
                        }
                    }
                    other => {
                        let rhs = self.eval(frame, value)?;
                        self.invoke_method(expr.span, &current, other, vec![rhs], None)?
                    }
                };
                self.assign(frame, expr.span, target, new.clone())?;
                Ok(new)
            }
            ExprKind::Call { recv, name, args, block } => {
                let recv_val = match recv {
                    Some(r) => self.eval(frame, r)?,
                    None => frame.self_val.clone(),
                };
                let mut arg_vals = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(self.eval(frame, a)?);
                }
                let closure = block.as_ref().map(|b| self.make_closure(frame, b));
                // When there is no explicit receiver and no matching method,
                // fall back to kernel-level helpers (puts, raise, assert...).
                let checked = self.hook.as_ref().map(|h| h.has_check(expr.span)).unwrap_or(false);
                if checked {
                    self.checks_performed.set(self.checks_performed.get() + 1);
                    let hook = self.hook.as_ref().expect("checked implies hook");
                    hook.before_call(expr.span, &recv_val, &arg_vals)
                        .map_err(|msg| Control::error(ErrorKind::Blame, msg, expr.span))?;
                }
                let result = if recv.is_none() {
                    self.invoke_self_call(expr.span, frame, name, arg_vals, closure)?
                } else {
                    self.invoke_method(expr.span, &recv_val, name, arg_vals, closure)?
                };
                if checked {
                    let hook = self.hook.as_ref().expect("checked implies hook");
                    hook.after_call(expr.span, &result)
                        .map_err(|msg| Control::error(ErrorKind::Blame, msg, expr.span))?;
                }
                Ok(result)
            }
            ExprKind::BoolOp { op, lhs, rhs } => {
                let l = self.eval(frame, lhs)?;
                match op {
                    BinOp::And => {
                        if l.truthy() {
                            self.eval(frame, rhs)
                        } else {
                            Ok(l)
                        }
                    }
                    BinOp::Or => {
                        if l.truthy() {
                            Ok(l)
                        } else {
                            self.eval(frame, rhs)
                        }
                    }
                }
            }
            ExprKind::Not(inner) => {
                let v = self.eval(frame, inner)?;
                Ok(Value::Bool(!v.truthy()))
            }
            ExprKind::If { arms, else_body } => {
                for arm in arms {
                    if self.eval(frame, &arm.cond)?.truthy() {
                        return self.eval_body(frame, &arm.body);
                    }
                }
                self.eval_body(frame, else_body)
            }
            ExprKind::Case { subject, arms, else_body } => {
                let subject = self.eval(frame, subject)?;
                for arm in arms {
                    let cond = self.eval(frame, &arm.cond)?;
                    let matched = match &cond {
                        Value::Class(c) => self.value_is_a(&subject, c),
                        other => other.ruby_eq(&subject),
                    };
                    if matched {
                        return self.eval_body(frame, &arm.body);
                    }
                }
                self.eval_body(frame, else_body)
            }
            ExprKind::While { cond, body } => {
                let mut result = Value::Nil;
                while self.eval(frame, cond)?.truthy() {
                    self.burn(expr.span)?;
                    match self.eval_body(frame, body) {
                        Ok(v) => result = v,
                        Err(Control::Break(v)) => return Ok(v),
                        Err(Control::Next(_)) => continue,
                        Err(other) => return Err(other),
                    }
                }
                Ok(result)
            }
            ExprKind::Return(v) => {
                let value = match v {
                    Some(e) => self.eval(frame, e)?,
                    None => Value::Nil,
                };
                Err(Control::Return(value))
            }
            ExprKind::Yield(args) => {
                let mut arg_vals = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(self.eval(frame, a)?);
                }
                match &frame.block {
                    Some(closure) => self.call_closure(closure, &arg_vals, expr.span),
                    None => {
                        Err(Control::error(ErrorKind::Raised, "no block given (yield)", expr.span))
                    }
                }
            }
            ExprKind::Break => Err(Control::Break(Value::Nil)),
            ExprKind::Next => Err(Control::Next(Value::Nil)),
            ExprKind::Lambda(block) => Ok(Value::Lambda(self.make_closure(frame, block))),
            ExprKind::TypeCast { expr: inner, .. } => self.eval(frame, inner),
            // Recovery placeholder for source that failed to parse: evaluates
            // to nil so a poisoned method can still be *defined* (calling it
            // is the caller's bug, not the interpreter's).
            ExprKind::Error => Ok(Value::Nil),
        }
    }

    fn eval_body(&self, frame: &Frame, body: &[Expr]) -> EvalResult {
        let mut last = Value::Nil;
        for e in body {
            last = self.eval(frame, e)?;
        }
        Ok(last)
    }

    fn make_closure(&self, frame: &Frame, block: &Block) -> Rc<Closure> {
        Rc::new(Closure::from_block(block, frame.locals.clone(), frame.self_val.clone()))
    }

    /// Invokes a block/lambda closure with the given arguments.
    ///
    /// # Errors
    ///
    /// Propagates errors raised by the closure body.
    pub fn call_closure(&self, closure: &Closure, args: &[Value], span: Span) -> EvalResult {
        self.burn(span)?;
        {
            let mut locals = closure.locals.borrow_mut();
            for (i, p) in closure.params.iter().enumerate() {
                locals.insert(p.clone(), args.get(i).cloned().unwrap_or(Value::Nil));
            }
        }
        let frame = Frame {
            locals: closure.locals.clone(),
            self_val: closure.self_val.clone(),
            block: None,
        };
        let mut last = Value::Nil;
        for e in &closure.body {
            match self.eval(&frame, e) {
                Ok(v) => last = v,
                Err(Control::Next(v)) => return Ok(v),
                Err(other) => return Err(other),
            }
        }
        Ok(last)
    }

    // ---- variables ------------------------------------------------------

    fn read_ivar(&self, self_val: &Value, name: &str) -> Value {
        match self_val {
            Value::Object(o) => o.borrow().ivars.get(name).cloned().unwrap_or(Value::Nil),
            Value::Class(c) => self
                .class_ivars
                .borrow()
                .get(&(c.clone(), name.to_string()))
                .cloned()
                .unwrap_or(Value::Nil),
            _ => Value::Nil,
        }
    }

    fn write_ivar(&self, self_val: &Value, name: &str, value: Value) {
        match self_val {
            Value::Object(o) => {
                o.borrow_mut().ivars.insert(name.to_string(), value);
            }
            Value::Class(c) => {
                self.class_ivars.borrow_mut().insert((c.clone(), name.to_string()), value);
            }
            _ => {}
        }
    }

    fn read_const(&self, span: Span, path: &[String]) -> EvalResult {
        let joined = path.join("::");
        if let Some(v) = self.constants.borrow().get(&joined) {
            return Ok(v.clone());
        }
        if self.table.is_class(&joined) || BUILTIN_CLASSES.contains(&joined.as_str()) {
            return Ok(Value::Class(joined));
        }
        // Single-segment constant defined at top level?
        if path.len() == 1 {
            if let Some(v) = self.constants.borrow().get(&path[0]) {
                return Ok(v.clone());
            }
        }
        Err(Control::error(ErrorKind::Name, format!("uninitialized constant {joined}"), span))
    }

    fn read_lvalue(&self, frame: &Frame, span: Span, target: &LValue) -> EvalResult {
        match target {
            LValue::Local(name) => {
                Ok(frame.locals.borrow().get(name).cloned().unwrap_or(Value::Nil))
            }
            LValue::IVar(name) => Ok(self.read_ivar(&frame.self_val, name)),
            LValue::GVar(name) => {
                Ok(self.globals.borrow().get(name).cloned().unwrap_or(Value::Nil))
            }
            LValue::Const(name) => self.read_const(span, std::slice::from_ref(name)),
            LValue::Index { recv, index } => {
                let r = self.eval(frame, recv)?;
                let i = self.eval(frame, index)?;
                self.invoke_method(span, &r, "[]", vec![i], None)
            }
            LValue::Attr { recv, name } => {
                let r = self.eval(frame, recv)?;
                self.invoke_method(span, &r, name, vec![], None)
            }
        }
    }

    fn assign(&self, frame: &Frame, span: Span, target: &LValue, value: Value) -> EvalResult<()> {
        match target {
            LValue::Local(name) => {
                frame.locals.borrow_mut().insert(name.clone(), value);
            }
            LValue::IVar(name) => self.write_ivar(&frame.self_val, name, value),
            LValue::GVar(name) => {
                self.globals.borrow_mut().insert(name.clone(), value);
            }
            LValue::Const(name) => {
                self.constants.borrow_mut().insert(name.clone(), value);
            }
            LValue::Index { recv, index } => {
                let r = self.eval(frame, recv)?;
                let i = self.eval(frame, index)?;
                self.invoke_method(span, &r, "[]=", vec![i, value], None)?;
            }
            LValue::Attr { recv, name } => {
                let r = self.eval(frame, recv)?;
                self.invoke_method(span, &r, &format!("{name}="), vec![value], None)?;
            }
        }
        Ok(())
    }

    // ---- dispatch -------------------------------------------------------

    fn invoke_self_call(
        &self,
        span: Span,
        frame: &Frame,
        name: &str,
        args: Vec<Value>,
        block: Option<Rc<Closure>>,
    ) -> EvalResult {
        // Kernel-level helpers take priority only when the receiver class
        // does not define the method.
        let recv = frame.self_val.clone();
        match self.try_invoke(span, &recv, name, &args, &block)? {
            Some(v) => Ok(v),
            None => match self.kernel_call(span, name, &args, &block)? {
                Some(v) => Ok(v),
                None => Err(Control::error(
                    ErrorKind::NoMethod,
                    format!("undefined method `{name}` for {}", recv.inspect()),
                    span,
                )),
            },
        }
    }

    /// Invokes `name` on `recv`, raising `NoMethodError` if undefined.
    ///
    /// # Errors
    ///
    /// Returns runtime errors raised by the method body.
    pub fn invoke_method(
        &self,
        span: Span,
        recv: &Value,
        name: &str,
        args: Vec<Value>,
        block: Option<Rc<Closure>>,
    ) -> EvalResult {
        match self.try_invoke(span, recv, name, &args, &block)? {
            Some(v) => Ok(v),
            None => {
                if let Value::Object(_) | Value::Class(_) = recv {
                    if let Some(v) = self.kernel_call(span, name, &args, &block)? {
                        return Ok(v);
                    }
                }
                Err(Control::error(
                    ErrorKind::NoMethod,
                    format!("undefined method `{name}` for {}", recv.inspect()),
                    span,
                ))
            }
        }
    }

    fn try_invoke(
        &self,
        span: Span,
        recv: &Value,
        name: &str,
        args: &[Value],
        block: &Option<Rc<Closure>>,
    ) -> EvalResult<Option<Value>> {
        // `nil` receivers produce blame-like NoMethod errors except for the
        // few methods NilClass actually has (handled in corelib).
        match recv {
            Value::Class(class) => {
                // `new` constructs an instance and runs `initialize`.
                if name == "new" {
                    let obj = Value::new_object(class.clone());
                    if let Some(init) = self.table.lookup(class, false, "initialize") {
                        self.run_method_def(&init, obj.clone(), args, block.clone(), span)?;
                    }
                    return Ok(Some(obj));
                }
                if let Some(def) = self.table.lookup(class, true, name) {
                    return Ok(Some(self.run_method_def(
                        &def,
                        recv.clone(),
                        args,
                        block.clone(),
                        span,
                    )?));
                }
                // Generic object methods on the class object itself.
                corelib::dispatch(self, span, recv, name, args, block.as_deref())
            }
            Value::Object(obj) => {
                let class = obj.borrow().class.clone();
                if let Some(def) = self.table.lookup(&class, false, name) {
                    return Ok(Some(self.run_method_def(
                        &def,
                        recv.clone(),
                        args,
                        block.clone(),
                        span,
                    )?));
                }
                if let Some((_, attr)) = self.table.accessor(&class, name) {
                    if name.ends_with('=') {
                        let value = args.first().cloned().unwrap_or(Value::Nil);
                        self.write_ivar(recv, &attr, value.clone());
                        return Ok(Some(value));
                    }
                    return Ok(Some(self.read_ivar(recv, &attr)));
                }
                corelib::dispatch(self, span, recv, name, args, block.as_deref())
            }
            other => {
                // User code may monkey-patch builtin classes; check user
                // definitions first, then the native core library.
                let class = other.class_name();
                if let Some(def) = self.table.lookup(&class, false, name) {
                    if self.table.methods.contains_key(&(class, false, name.to_string())) {
                        return Ok(Some(self.run_method_def(
                            &def,
                            recv.clone(),
                            args,
                            block.clone(),
                            span,
                        )?));
                    }
                }
                corelib::dispatch(self, span, recv, name, args, block.as_deref())
            }
        }
    }

    fn run_method_def(
        &self,
        def: &MethodDef,
        self_val: Value,
        args: &[Value],
        block: Option<Rc<Closure>>,
        span: Span,
    ) -> EvalResult {
        let locals: HashMap<String, Value> = HashMap::new();
        let frame = Frame { locals: Rc::new(RefCell::new(locals)), self_val, block };
        // Bind parameters.
        let mut arg_iter = args.iter();
        for p in &def.params {
            if p.block {
                continue;
            }
            let value = match arg_iter.next() {
                Some(v) => v.clone(),
                None => match &p.default {
                    Some(d) => self.eval(&frame, d)?,
                    None => Value::Nil,
                },
            };
            frame.locals.borrow_mut().insert(p.name.clone(), value);
        }
        if args.len() > def.params.iter().filter(|p| !p.block).count() {
            return Err(Control::error(
                ErrorKind::Argument,
                format!(
                    "wrong number of arguments for `{}` (given {}, expected {})",
                    def.name,
                    args.len(),
                    def.params.len()
                ),
                span,
            ));
        }
        match self.eval_body(&frame, &def.body) {
            Ok(v) => Ok(v),
            Err(Control::Return(v)) => Ok(v),
            Err(other) => Err(other),
        }
    }

    fn kernel_call(
        &self,
        span: Span,
        name: &str,
        args: &[Value],
        block: &Option<Rc<Closure>>,
    ) -> EvalResult<Option<Value>> {
        match name {
            "puts" | "p" | "print" => {
                let line = args.iter().map(|a| a.to_display_string()).collect::<Vec<_>>().join("");
                self.output.borrow_mut().push(line);
                Ok(Some(Value::Nil))
            }
            "raise" => {
                let msg = args
                    .first()
                    .map(|a| a.to_display_string())
                    .unwrap_or_else(|| "RuntimeError".to_string());
                Err(Control::error(ErrorKind::Raised, msg, span))
            }
            "assert" => {
                let ok = args.first().map(|a| a.truthy()).unwrap_or(false);
                if ok {
                    Ok(Some(Value::Bool(true)))
                } else {
                    Err(Control::error(ErrorKind::AssertionFailed, "assertion failed", span))
                }
            }
            "assert_equal" => {
                let a = args.first().cloned().unwrap_or(Value::Nil);
                let b = args.get(1).cloned().unwrap_or(Value::Nil);
                if a.ruby_eq(&b) {
                    Ok(Some(Value::Bool(true)))
                } else {
                    Err(Control::error(
                        ErrorKind::AssertionFailed,
                        format!("expected {} but got {}", a.inspect(), b.inspect()),
                        span,
                    ))
                }
            }
            "refute" => {
                let ok = args.first().map(|a| a.truthy()).unwrap_or(false);
                if ok {
                    Err(Control::error(ErrorKind::AssertionFailed, "refute failed", span))
                } else {
                    Ok(Some(Value::Bool(true)))
                }
            }
            "require" | "require_relative" | "attr_accessor" | "attr_reader" | "attr_writer" => {
                Ok(Some(Value::Bool(true)))
            }
            "lambda" | "proc" => match block {
                Some(b) => Ok(Some(Value::Lambda(b.clone()))),
                None => Ok(Some(Value::Nil)),
            },
            "rand" => {
                // Deterministic "random" for reproducible tests.
                let max = args.first().and_then(|a| a.as_int()).unwrap_or(2);
                Ok(Some(Value::Int(if max > 0 { 42 % max } else { 0 })))
            }
            _ => Ok(None),
        }
    }

    /// True if `value` is an instance of `class` (or a subclass).
    pub fn value_is_a(&self, value: &Value, class: &str) -> bool {
        let actual = value.class_name();
        if actual == class || class == "Object" {
            return true;
        }
        // Boolean pseudo-class.
        if class == "Boolean" && matches!(value, Value::Bool(_)) {
            return true;
        }
        if class == "Numeric" && matches!(value, Value::Int(_) | Value::Float(_)) {
            return true;
        }
        self.table.ancestors(&actual).iter().any(|a| a == class)
    }
}

/// Builtin class names the interpreter recognizes as constants without a
/// user definition.
const BUILTIN_CLASSES: &[&str] = &[
    "Object",
    "String",
    "Integer",
    "Float",
    "Numeric",
    "Symbol",
    "Array",
    "Hash",
    "NilClass",
    "TrueClass",
    "FalseClass",
    "Boolean",
    "Proc",
    "Class",
    "RDL",
    "JSON",
    "Time",
    "ActiveRecord",
    "ActiveRecord::Base",
    "Sequel",
    "Sequel::Model",
    "StandardError",
    "ArgumentError",
    "RuntimeError",
];

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_syntax::parse_program_strict;

    fn run(src: &str) -> Result<Value, RubyError> {
        let prog = parse_program_strict(src).expect("parse");
        let interp = Interpreter::new(prog);
        interp.eval_program()
    }

    fn run_ok(src: &str) -> Value {
        run(src).expect("eval")
    }

    #[test]
    fn evaluates_arithmetic_and_locals() {
        assert_eq!(run_ok("x = 2\ny = x * 3 + 1\ny"), Value::Int(7));
        assert_eq!(run_ok("x = 10.0 / 4\nx"), Value::Float(2.5));
        assert_eq!(run_ok("x = 7 % 3\nx"), Value::Int(1));
    }

    #[test]
    fn evaluates_conditionals_and_booleans() {
        assert_eq!(run_ok("if 1 == 1\n 'yes'\nelse\n 'no'\nend"), Value::str("yes"));
        assert_eq!(run_ok("x = nil\nx = 5 unless false\nx"), Value::Int(5));
        assert_eq!(run_ok("(1 == 2) || 'fallback'"), Value::str("fallback"));
        assert_eq!(run_ok("true && false"), Value::Bool(false));
        assert_eq!(run_ok("!nil"), Value::Bool(true));
    }

    #[test]
    fn evaluates_while_loops() {
        assert_eq!(run_ok("i = 0\nwhile i < 5\n i = i + 1\nend\ni"), Value::Int(5));
        assert_eq!(
            run_ok("i = 0\nwhile true\n i = i + 1\n break if i == 3\nend\ni"),
            Value::Int(3)
        );
    }

    #[test]
    fn defines_and_calls_methods() {
        let v = run_ok("def add(a, b)\n a + b\nend\nadd(2, 3)");
        assert_eq!(v, Value::Int(5));
        let v = run_ok("def greet(name = 'world')\n 'hello ' + name\nend\ngreet()");
        assert_eq!(v, Value::str("hello world"));
    }

    #[test]
    fn classes_instances_and_ivars() {
        let src = r#"
class Point
  def initialize(x, y)
    @x = x
    @y = y
  end
  def sum()
    @x + @y
  end
end
p = Point.new(3, 4)
p.sum()
"#;
        assert_eq!(run_ok(src), Value::Int(7));
    }

    #[test]
    fn singleton_methods_and_class_ivars() {
        let src = r#"
class Counter
  def self.bump()
    @count = (@count || 0) + 1
  end
end
Counter.bump()
Counter.bump()
Counter.bump()
"#;
        assert_eq!(run_ok(src), Value::Int(3));
    }

    #[test]
    fn inheritance_dispatch() {
        let src = r#"
class Animal
  def speak()
    'generic'
  end
  def describe()
    speak() + '!'
  end
end
class Dog < Animal
  def speak()
    'woof'
  end
end
Dog.new().describe()
"#;
        assert_eq!(run_ok(src), Value::str("woof!"));
    }

    #[test]
    fn attr_accessors() {
        let src = r#"
class User
  attr_accessor(:name)
end
u = User.new()
u.name = 'alice'
u.name
"#;
        assert_eq!(run_ok(src), Value::str("alice"));
    }

    #[test]
    fn blocks_and_yield() {
        let src = r#"
def twice()
  yield(1) + yield(2)
end
twice() { |x| x * 10 }
"#;
        assert_eq!(run_ok(src), Value::Int(30));
    }

    #[test]
    fn case_expression() {
        let src = "x = 2\ncase x\nwhen 1\n 'one'\nwhen 2\n 'two'\nelse\n 'many'\nend";
        assert_eq!(run_ok(src), Value::str("two"));
        let src = "x = 'str'\ncase x\nwhen String\n 'a string'\nelse\n 'other'\nend";
        assert_eq!(run_ok(src), Value::str("a string"));
    }

    #[test]
    fn errors_are_reported() {
        assert_eq!(run("frobnicate(1)").unwrap_err().kind, ErrorKind::NoMethod);
        assert_eq!(run("UndefinedConst").unwrap_err().kind, ErrorKind::Name);
        assert_eq!(run("raise('boom')").unwrap_err().kind, ErrorKind::Raised);
        assert_eq!(run("assert(1 == 2)").unwrap_err().kind, ErrorKind::AssertionFailed);
    }

    #[test]
    fn infinite_loops_time_out() {
        let prog = parse_program_strict("while true\n x = 1\nend").unwrap();
        let mut interp = Interpreter::new(prog);
        interp.set_fuel(10_000);
        let err = interp.eval_program().unwrap_err();
        assert_eq!(err.kind, ErrorKind::Timeout);
    }

    #[test]
    fn op_assign_forms() {
        assert_eq!(run_ok("x = 1\nx += 4\nx"), Value::Int(5));
        assert_eq!(run_ok("x = nil\nx ||= 'default'\nx"), Value::str("default"));
        assert_eq!(run_ok("x = 'set'\nx ||= 'default'\nx"), Value::str("set"));
    }

    #[test]
    fn globals_and_constants() {
        assert_eq!(run_ok("$counter = 7\n$counter + 1"), Value::Int(8));
        assert_eq!(run_ok("MAX = 10\nMAX * 2"), Value::Int(20));
    }

    #[test]
    fn lambdas_are_values() {
        let src = "double = ->(x) { x * 2 }\ndouble.call(21)";
        assert_eq!(run_ok(src), Value::Int(42));
    }

    #[test]
    fn puts_is_captured() {
        let prog = parse_program_strict("puts('hello')\nputs(42)").unwrap();
        let interp = Interpreter::new(prog);
        interp.eval_program().unwrap();
        assert_eq!(interp.output(), vec!["hello".to_string(), "42".to_string()]);
    }

    #[test]
    fn call_entry_point() {
        let prog = parse_program_strict("class M\n def self.f(x)\n x + 1\n end\nend").unwrap();
        let interp = Interpreter::new(prog);
        assert_eq!(interp.call("M", true, "f", vec![Value::Int(41)]).unwrap(), Value::Int(42));
    }
}
