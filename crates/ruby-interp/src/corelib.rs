//! Native implementations of the Ruby core library methods used by the
//! subset (Array, Hash, String, Integer, Float, Symbol, NilClass, Proc and
//! the generic Object protocol).
//!
//! These are the very methods CompRDL annotates with comp types (paper
//! Table 1); at run time the interpreter executes these native bodies, and
//! the inserted dynamic checks validate their results against the computed
//! types.

use crate::error::{Control, ErrorKind, EvalResult};
use crate::interp::Interpreter;
use crate::value::{Closure, Value};
use ruby_syntax::Span;

/// Attempts to dispatch `recv.name(args)` to a native implementation.
/// Returns `Ok(None)` if no native method with that name exists for the
/// receiver.
///
/// # Errors
///
/// Propagates errors raised by block invocations and argument errors.
pub fn dispatch(
    interp: &Interpreter,
    span: Span,
    recv: &Value,
    name: &str,
    args: &[Value],
    block: Option<&Closure>,
) -> EvalResult<Option<Value>> {
    // Type-specific methods first, then the generic object protocol.
    let specific = match recv {
        Value::Array(_) => array_method(interp, span, recv, name, args, block)?,
        Value::Hash(_) => hash_method(interp, span, recv, name, args, block)?,
        Value::Str(_) => string_method(span, recv, name, args)?,
        Value::Int(_) | Value::Float(_) => numeric_method(span, recv, name, args, interp, block)?,
        Value::Sym(_) => symbol_method(recv, name)?,
        Value::Nil => nil_method(recv, name)?,
        Value::Lambda(l) => lambda_method(interp, span, l, name, args)?,
        _ => None,
    };
    if specific.is_some() {
        return Ok(specific);
    }
    object_method(interp, span, recv, name, args)
}

fn arg(args: &[Value], i: usize) -> Value {
    args.get(i).cloned().unwrap_or(Value::Nil)
}

fn int_arg(args: &[Value], i: usize, span: Span) -> EvalResult<i64> {
    match args.get(i) {
        Some(Value::Int(n)) => Ok(*n),
        Some(Value::Float(f)) => Ok(*f as i64),
        other => Err(Control::error(
            ErrorKind::Type,
            format!("expected an Integer argument, got {:?}", other.map(|v| v.class_name())),
            span,
        )),
    }
}

// ---------------------------------------------------------------------------
// Object protocol
// ---------------------------------------------------------------------------

fn object_method(
    interp: &Interpreter,
    _span: Span,
    recv: &Value,
    name: &str,
    args: &[Value],
) -> EvalResult<Option<Value>> {
    let v = match name {
        "==" => Value::Bool(recv.ruby_eq(&arg(args, 0))),
        "!=" => Value::Bool(!recv.ruby_eq(&arg(args, 0))),
        "equal?" => Value::Bool(recv.ruby_eq(&arg(args, 0))),
        "nil?" => Value::Bool(matches!(recv, Value::Nil)),
        "is_a?" | "kind_of?" | "instance_of?" => match arg(args, 0) {
            Value::Class(c) => Value::Bool(interp.value_is_a(recv, &c)),
            _ => Value::Bool(false),
        },
        "class" => Value::Class(recv.class_name()),
        "to_s" => Value::str(recv.to_display_string()),
        "inspect" => Value::str(recv.inspect()),
        "freeze" | "dup" | "clone" | "itself" => recv.clone(),
        "frozen?" => Value::Bool(false),
        "respond_to?" => Value::Bool(true),
        "hash" => Value::Int(recv.inspect().len() as i64),
        "tap" => recv.clone(),
        "present?" => Value::Bool(match recv {
            Value::Nil => false,
            Value::Str(s) => !s.borrow().is_empty(),
            Value::Array(a) => !a.borrow().is_empty(),
            Value::Hash(h) => !h.borrow().is_empty(),
            Value::Bool(b) => *b,
            _ => true,
        }),
        "blank?" => Value::Bool(match recv {
            Value::Nil => true,
            Value::Str(s) => s.borrow().is_empty(),
            Value::Array(a) => a.borrow().is_empty(),
            Value::Hash(h) => h.borrow().is_empty(),
            Value::Bool(b) => !*b,
            _ => false,
        }),
        _ => return Ok(None),
    };
    Ok(Some(v))
}

// ---------------------------------------------------------------------------
// Array
// ---------------------------------------------------------------------------

fn array_method(
    interp: &Interpreter,
    span: Span,
    recv: &Value,
    name: &str,
    args: &[Value],
    block: Option<&Closure>,
) -> EvalResult<Option<Value>> {
    let Value::Array(items_ref) = recv else { return Ok(None) };
    let items = items_ref.borrow().clone();
    let v = match name {
        "[]" | "at" | "slice" => {
            let idx = int_arg(args, 0, span)?;
            index_array(&items, idx)
        }
        "[]=" => {
            let idx = int_arg(args, 0, span)?;
            let value = arg(args, 1);
            let mut items = items_ref.borrow_mut();
            let idx =
                if idx < 0 { (items.len() as i64 + idx).max(0) as usize } else { idx as usize };
            while items.len() <= idx {
                items.push(Value::Nil);
            }
            items[idx] = value.clone();
            value
        }
        "first" => items.first().cloned().unwrap_or(Value::Nil),
        "last" => items.last().cloned().unwrap_or(Value::Nil),
        "length" | "size" | "count" => Value::Int(items.len() as i64),
        "empty?" => Value::Bool(items.is_empty()),
        "push" | "append" | "<<" => {
            items_ref.borrow_mut().extend(args.iter().cloned());
            recv.clone()
        }
        "pop" => items_ref.borrow_mut().pop().unwrap_or(Value::Nil),
        "shift" => {
            let mut items = items_ref.borrow_mut();
            if items.is_empty() {
                Value::Nil
            } else {
                items.remove(0)
            }
        }
        "unshift" | "prepend" => {
            let mut items = items_ref.borrow_mut();
            for (i, a) in args.iter().enumerate() {
                items.insert(i, a.clone());
            }
            recv.clone()
        }
        "include?" | "member?" => Value::Bool(items.iter().any(|v| v.ruby_eq(&arg(args, 0)))),
        "index" | "find_index" => match items.iter().position(|v| v.ruby_eq(&arg(args, 0))) {
            Some(i) => Value::Int(i as i64),
            None => Value::Nil,
        },
        "join" => {
            let sep = args.first().and_then(|a| a.as_str()).unwrap_or_default();
            Value::str(items.iter().map(|v| v.to_display_string()).collect::<Vec<_>>().join(&sep))
        }
        "reverse" => Value::array(items.iter().rev().cloned().collect()),
        "sort" => {
            let mut sorted = items.clone();
            sorted.sort_by(compare_values);
            Value::array(sorted)
        }
        "uniq" => {
            let mut out: Vec<Value> = Vec::new();
            for v in &items {
                if !out.iter().any(|o| o.ruby_eq(v)) {
                    out.push(v.clone());
                }
            }
            Value::array(out)
        }
        "compact" => {
            Value::array(items.iter().filter(|v| !matches!(v, Value::Nil)).cloned().collect())
        }
        "flatten" => {
            fn flat(items: &[Value], out: &mut Vec<Value>) {
                for v in items {
                    match v {
                        Value::Array(inner) => flat(&inner.borrow(), out),
                        other => out.push(other.clone()),
                    }
                }
            }
            let mut out = Vec::new();
            flat(&items, &mut out);
            Value::array(out)
        }
        "+" | "concat" => match arg(args, 0) {
            Value::Array(other) => {
                let mut out = items.clone();
                out.extend(other.borrow().iter().cloned());
                Value::array(out)
            }
            _ => {
                return Err(Control::error(
                    ErrorKind::Type,
                    "no implicit conversion into Array",
                    span,
                ))
            }
        },
        "-" => match arg(args, 0) {
            Value::Array(other) => {
                let other = other.borrow();
                Value::array(
                    items.iter().filter(|v| !other.iter().any(|o| o.ruby_eq(v))).cloned().collect(),
                )
            }
            _ => {
                return Err(Control::error(
                    ErrorKind::Type,
                    "no implicit conversion into Array",
                    span,
                ))
            }
        },
        "take" => {
            let n = int_arg(args, 0, span)?.max(0) as usize;
            Value::array(items.iter().take(n).cloned().collect())
        }
        "drop" => {
            let n = int_arg(args, 0, span)?.max(0) as usize;
            Value::array(items.iter().skip(n).cloned().collect())
        }
        "max" => items.iter().cloned().max_by(compare_values).unwrap_or(Value::Nil),
        "min" => items.iter().cloned().min_by(compare_values).unwrap_or(Value::Nil),
        "sum" => {
            let mut acc = Value::Int(0);
            for v in &items {
                acc = numeric_binop(&acc, v, "+", span)?;
            }
            acc
        }
        "delete" => {
            let target = arg(args, 0);
            items_ref.borrow_mut().retain(|v| !v.ruby_eq(&target));
            target
        }
        "to_a" => recv.clone(),
        "map" | "collect" => {
            let block = require_block(block, span, "map")?;
            let mut out = Vec::with_capacity(items.len());
            for v in &items {
                out.push(interp.call_closure(block, std::slice::from_ref(v), span)?);
            }
            Value::array(out)
        }
        "each" => {
            let block = require_block(block, span, "each")?;
            for v in &items {
                match interp.call_closure(block, std::slice::from_ref(v), span) {
                    Ok(_) => {}
                    Err(Control::Break(v)) => return Ok(Some(v)),
                    Err(other) => return Err(other),
                }
            }
            recv.clone()
        }
        "each_with_index" => {
            let block = require_block(block, span, "each_with_index")?;
            for (i, v) in items.iter().enumerate() {
                interp.call_closure(block, &[v.clone(), Value::Int(i as i64)], span)?;
            }
            recv.clone()
        }
        "select" | "filter" => {
            let block = require_block(block, span, "select")?;
            let mut out = Vec::new();
            for v in &items {
                if interp.call_closure(block, std::slice::from_ref(v), span)?.truthy() {
                    out.push(v.clone());
                }
            }
            Value::array(out)
        }
        "reject" => {
            let block = require_block(block, span, "reject")?;
            let mut out = Vec::new();
            for v in &items {
                if !interp.call_closure(block, std::slice::from_ref(v), span)?.truthy() {
                    out.push(v.clone());
                }
            }
            Value::array(out)
        }
        "find" | "detect" => {
            let block = require_block(block, span, "find")?;
            let mut found = Value::Nil;
            for v in &items {
                if interp.call_closure(block, std::slice::from_ref(v), span)?.truthy() {
                    found = v.clone();
                    break;
                }
            }
            found
        }
        "any?" => {
            let mut result = false;
            match block {
                Some(b) => {
                    for v in &items {
                        if interp.call_closure(b, std::slice::from_ref(v), span)?.truthy() {
                            result = true;
                            break;
                        }
                    }
                }
                None => result = !items.is_empty(),
            }
            Value::Bool(result)
        }
        "all?" => {
            let block = require_block(block, span, "all?")?;
            let mut result = true;
            for v in &items {
                if !interp.call_closure(block, std::slice::from_ref(v), span)?.truthy() {
                    result = false;
                    break;
                }
            }
            Value::Bool(result)
        }
        "none?" => {
            let block = require_block(block, span, "none?")?;
            let mut result = true;
            for v in &items {
                if interp.call_closure(block, std::slice::from_ref(v), span)?.truthy() {
                    result = false;
                    break;
                }
            }
            Value::Bool(result)
        }
        "reduce" | "inject" => {
            let block = require_block(block, span, "reduce")?;
            let mut acc = arg(args, 0);
            let mut iter = items.iter();
            if matches!(acc, Value::Nil) {
                acc = iter.next().cloned().unwrap_or(Value::Nil);
            }
            for v in iter {
                acc = interp.call_closure(block, &[acc.clone(), v.clone()], span)?;
            }
            acc
        }
        "sort_by" => {
            let block = require_block(block, span, "sort_by")?;
            let mut keyed: Vec<(Value, Value)> = Vec::with_capacity(items.len());
            for v in &items {
                keyed.push((interp.call_closure(block, std::slice::from_ref(v), span)?, v.clone()));
            }
            keyed.sort_by(|a, b| compare_values(&a.0, &b.0));
            Value::array(keyed.into_iter().map(|(_, v)| v).collect())
        }
        "group_by" => {
            let block = require_block(block, span, "group_by")?;
            let out = Value::hash(vec![]);
            for v in &items {
                let key = interp.call_closure(block, std::slice::from_ref(v), span)?;
                match out.hash_get(&key) {
                    Some(Value::Array(existing)) => existing.borrow_mut().push(v.clone()),
                    _ => out.hash_set(key, Value::array(vec![v.clone()])),
                }
            }
            out
        }
        _ => return Ok(None),
    };
    Ok(Some(v))
}

fn index_array(items: &[Value], idx: i64) -> Value {
    let idx = if idx < 0 { items.len() as i64 + idx } else { idx };
    if idx < 0 {
        return Value::Nil;
    }
    items.get(idx as usize).cloned().unwrap_or(Value::Nil)
}

fn require_block<'a>(
    block: Option<&'a Closure>,
    span: Span,
    what: &str,
) -> EvalResult<&'a Closure> {
    block.ok_or_else(|| {
        Control::error(ErrorKind::Argument, format!("`{what}` requires a block"), span)
    })
}

fn compare_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Float(x), Value::Float(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
        (Value::Int(x), Value::Float(y)) => (*x as f64).partial_cmp(y).unwrap_or(Ordering::Equal),
        (Value::Float(x), Value::Int(y)) => x.partial_cmp(&(*y as f64)).unwrap_or(Ordering::Equal),
        (Value::Str(x), Value::Str(y)) => x.borrow().cmp(&y.borrow()),
        (Value::Sym(x), Value::Sym(y)) => x.cmp(y),
        _ => a.inspect().cmp(&b.inspect()),
    }
}

// ---------------------------------------------------------------------------
// Hash
// ---------------------------------------------------------------------------

fn hash_method(
    interp: &Interpreter,
    span: Span,
    recv: &Value,
    name: &str,
    args: &[Value],
    block: Option<&Closure>,
) -> EvalResult<Option<Value>> {
    let Value::Hash(pairs_ref) = recv else { return Ok(None) };
    let pairs = pairs_ref.borrow().clone();
    let v = match name {
        "[]" => recv.hash_get(&arg(args, 0)).unwrap_or(Value::Nil),
        "[]=" | "store" => {
            let value = arg(args, 1);
            recv.hash_set(arg(args, 0), value.clone());
            value
        }
        "fetch" => match recv.hash_get(&arg(args, 0)) {
            Some(v) => v,
            None => {
                if args.len() > 1 {
                    arg(args, 1)
                } else {
                    return Err(Control::error(
                        ErrorKind::Raised,
                        format!("key not found: {}", arg(args, 0).inspect()),
                        span,
                    ));
                }
            }
        },
        "key?" | "has_key?" | "include?" | "member?" => {
            Value::Bool(recv.hash_get(&arg(args, 0)).is_some())
        }
        "keys" => Value::array(pairs.iter().map(|(k, _)| k.clone()).collect()),
        "values" => Value::array(pairs.iter().map(|(_, v)| v.clone()).collect()),
        "length" | "size" | "count" => Value::Int(pairs.len() as i64),
        "empty?" => Value::Bool(pairs.is_empty()),
        "delete" => {
            let key = arg(args, 0);
            let removed = recv.hash_get(&key).unwrap_or(Value::Nil);
            pairs_ref.borrow_mut().retain(|(k, _)| !k.ruby_eq(&key));
            removed
        }
        "merge" => {
            let out = Value::hash(pairs.clone());
            if let Value::Hash(other) = arg(args, 0) {
                for (k, v) in other.borrow().iter() {
                    out.hash_set(k.clone(), v.clone());
                }
            }
            out
        }
        "merge!" | "update" => {
            if let Value::Hash(other) = arg(args, 0) {
                for (k, v) in other.borrow().iter() {
                    recv.hash_set(k.clone(), v.clone());
                }
            }
            recv.clone()
        }
        "to_a" => Value::array(
            pairs.iter().map(|(k, v)| Value::array(vec![k.clone(), v.clone()])).collect(),
        ),
        "each" | "each_pair" => {
            let block = require_block(block, span, "each")?;
            for (k, v) in &pairs {
                interp.call_closure(block, &[k.clone(), v.clone()], span)?;
            }
            recv.clone()
        }
        "map" | "collect" => {
            let block = require_block(block, span, "map")?;
            let mut out = Vec::with_capacity(pairs.len());
            for (k, v) in &pairs {
                out.push(interp.call_closure(block, &[k.clone(), v.clone()], span)?);
            }
            Value::array(out)
        }
        "select" | "filter" => {
            let block = require_block(block, span, "select")?;
            let mut out = Vec::new();
            for (k, v) in &pairs {
                if interp.call_closure(block, &[k.clone(), v.clone()], span)?.truthy() {
                    out.push((k.clone(), v.clone()));
                }
            }
            Value::hash(out)
        }
        "any?" => match block {
            Some(b) => {
                let mut result = false;
                for (k, v) in &pairs {
                    if interp.call_closure(b, &[k.clone(), v.clone()], span)?.truthy() {
                        result = true;
                        break;
                    }
                }
                Value::Bool(result)
            }
            None => Value::Bool(!pairs.is_empty()),
        },
        "all?" => {
            let block = require_block(block, span, "all?")?;
            let mut result = true;
            for (k, v) in &pairs {
                if !interp.call_closure(block, &[k.clone(), v.clone()], span)?.truthy() {
                    result = false;
                    break;
                }
            }
            Value::Bool(result)
        }
        "none?" => {
            let block = require_block(block, span, "none?")?;
            let mut result = true;
            for (k, v) in &pairs {
                if interp.call_closure(block, &[k.clone(), v.clone()], span)?.truthy() {
                    result = false;
                    break;
                }
            }
            Value::Bool(result)
        }
        "dig" => {
            let mut current = recv.clone();
            for key in args {
                current = match current.hash_get(key) {
                    Some(v) => v,
                    None => return Ok(Some(Value::Nil)),
                };
            }
            current
        }
        _ => return Ok(None),
    };
    Ok(Some(v))
}

// ---------------------------------------------------------------------------
// String
// ---------------------------------------------------------------------------

fn string_method(
    span: Span,
    recv: &Value,
    name: &str,
    args: &[Value],
) -> EvalResult<Option<Value>> {
    let Value::Str(s_ref) = recv else { return Ok(None) };
    let s = s_ref.borrow().clone();
    let v = match name {
        "+" => match arg(args, 0) {
            Value::Str(other) => Value::str(format!("{}{}", s, other.borrow())),
            other => {
                return Err(Control::error(
                    ErrorKind::Type,
                    format!("no implicit conversion of {} into String", other.class_name()),
                    span,
                ))
            }
        },
        "*" => Value::str(s.repeat(int_arg(args, 0, span)?.max(0) as usize)),
        "<<" | "concat" => {
            if let Some(other) = arg(args, 0).as_str() {
                s_ref.borrow_mut().push_str(&other);
            }
            recv.clone()
        }
        "length" | "size" => Value::Int(s.chars().count() as i64),
        "empty?" => Value::Bool(s.is_empty()),
        "upcase" => Value::str(s.to_uppercase()),
        "downcase" => Value::str(s.to_lowercase()),
        "capitalize" => {
            let mut c = s.chars();
            match c.next() {
                Some(first) => Value::str(first.to_uppercase().collect::<String>() + c.as_str()),
                None => Value::str(""),
            }
        }
        "strip" => Value::str(s.trim().to_string()),
        "chomp" => Value::str(s.trim_end_matches('\n').to_string()),
        "reverse" => Value::str(s.chars().rev().collect::<String>()),
        "include?" => Value::Bool(arg(args, 0).as_str().map(|n| s.contains(&n)).unwrap_or(false)),
        "start_with?" => {
            Value::Bool(arg(args, 0).as_str().map(|n| s.starts_with(&n)).unwrap_or(false))
        }
        "end_with?" => Value::Bool(arg(args, 0).as_str().map(|n| s.ends_with(&n)).unwrap_or(false)),
        "split" => {
            let sep = args.first().and_then(|a| a.as_str()).unwrap_or_else(|| " ".to_string());
            Value::array(
                s.split(&sep as &str).filter(|part| !part.is_empty()).map(Value::str).collect(),
            )
        }
        "sub" | "gsub" => {
            let pattern = arg(args, 0).as_str().unwrap_or_default();
            let replacement = arg(args, 1).as_str().unwrap_or_default();
            if name == "sub" {
                Value::str(s.replacen(&pattern, &replacement, 1))
            } else {
                Value::str(s.replace(&pattern, &replacement))
            }
        }
        "[]" | "slice" => {
            let idx = int_arg(args, 0, span)?;
            let chars: Vec<char> = s.chars().collect();
            let idx = if idx < 0 { chars.len() as i64 + idx } else { idx };
            if idx < 0 || idx as usize >= chars.len() {
                Value::Nil
            } else if let Some(Value::Int(len)) = args.get(1) {
                let end = ((idx + *len).max(idx) as usize).min(chars.len());
                Value::str(chars[idx as usize..end].iter().collect::<String>())
            } else {
                Value::str(chars[idx as usize].to_string())
            }
        }
        "to_s" | "to_str" => recv.clone(),
        "to_i" => Value::Int(s.trim().parse::<i64>().unwrap_or(0)),
        "to_f" => Value::Float(s.trim().parse::<f64>().unwrap_or(0.0)),
        "to_sym" => Value::Sym(s),
        "chars" => Value::array(s.chars().map(|c| Value::str(c.to_string())).collect()),
        "==" => Value::Bool(recv.ruby_eq(&arg(args, 0))),
        "<=>" => match arg(args, 0).as_str() {
            Some(other) => Value::Int(match s.cmp(&other) {
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            }),
            None => Value::Nil,
        },
        "freeze" => recv.clone(),
        _ => return Ok(None),
    };
    Ok(Some(v))
}

// ---------------------------------------------------------------------------
// Numerics
// ---------------------------------------------------------------------------

fn numeric_binop(a: &Value, b: &Value, op: &str, span: Span) -> EvalResult {
    let as_f = |v: &Value| match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    };
    let (Some(x), Some(y)) = (as_f(a), as_f(b)) else {
        return Err(Control::error(
            ErrorKind::Type,
            format!("{} can't be coerced into {}", b.class_name(), a.class_name()),
            span,
        ));
    };
    let both_int = matches!((a, b), (Value::Int(_), Value::Int(_)));
    let result = match op {
        "+" => x + y,
        "-" => x - y,
        "*" => x * y,
        "/" => {
            if both_int {
                if y == 0.0 {
                    return Err(Control::error(ErrorKind::Raised, "divided by 0", span));
                }
                return Ok(Value::Int((x as i64).div_euclid(y as i64)));
            }
            x / y
        }
        "%" => {
            if both_int {
                if y == 0.0 {
                    return Err(Control::error(ErrorKind::Raised, "divided by 0", span));
                }
                return Ok(Value::Int((x as i64).rem_euclid(y as i64)));
            }
            x % y
        }
        "**" => x.powf(y),
        _ => {
            return Err(Control::error(ErrorKind::NoMethod, format!("unknown operator {op}"), span))
        }
    };
    if both_int && result.fract() == 0.0 && result.abs() < 9e15 {
        Ok(Value::Int(result as i64))
    } else {
        Ok(Value::Float(result))
    }
}

fn numeric_method(
    span: Span,
    recv: &Value,
    name: &str,
    args: &[Value],
    interp: &Interpreter,
    block: Option<&Closure>,
) -> EvalResult<Option<Value>> {
    let as_f = |v: &Value| match v {
        Value::Int(i) => *i as f64,
        Value::Float(f) => *f,
        _ => 0.0,
    };
    let x = as_f(recv);
    let v = match name {
        "+" | "-" | "*" | "/" | "%" | "**" => numeric_binop(recv, &arg(args, 0), name, span)?,
        "<" => Value::Bool(x < as_f(&arg(args, 0))),
        ">" => Value::Bool(x > as_f(&arg(args, 0))),
        "<=" => Value::Bool(x <= as_f(&arg(args, 0))),
        ">=" => Value::Bool(x >= as_f(&arg(args, 0))),
        "<=>" => {
            let y = as_f(&arg(args, 0));
            Value::Int(if x < y {
                -1
            } else if x > y {
                1
            } else {
                0
            })
        }
        "==" => Value::Bool(recv.ruby_eq(&arg(args, 0))),
        "abs" => match recv {
            Value::Int(i) => Value::Int(i.abs()),
            _ => Value::Float(x.abs()),
        },
        "zero?" => Value::Bool(x == 0.0),
        "positive?" => Value::Bool(x > 0.0),
        "negative?" => Value::Bool(x < 0.0),
        "even?" => Value::Bool((x as i64) % 2 == 0),
        "odd?" => Value::Bool((x as i64) % 2 != 0),
        "to_i" | "to_int" | "floor" | "truncate" => Value::Int(x.floor() as i64),
        "ceil" => Value::Int(x.ceil() as i64),
        "round" => Value::Int(x.round() as i64),
        "to_f" => Value::Float(x),
        "to_s" => Value::str(recv.to_display_string()),
        "succ" | "next" => Value::Int(x as i64 + 1),
        "times" => {
            let block = require_block(block, span, "times")?;
            let n = x as i64;
            let mut i = 0;
            while i < n {
                interp.call_closure(block, &[Value::Int(i)], span)?;
                i += 1;
            }
            recv.clone()
        }
        "upto" => {
            let block = require_block(block, span, "upto")?;
            let hi = int_arg(args, 0, span)?;
            let mut i = x as i64;
            while i <= hi {
                interp.call_closure(block, &[Value::Int(i)], span)?;
                i += 1;
            }
            recv.clone()
        }
        _ => return Ok(None),
    };
    Ok(Some(v))
}

// ---------------------------------------------------------------------------
// Symbol / Nil / Proc
// ---------------------------------------------------------------------------

fn symbol_method(recv: &Value, name: &str) -> EvalResult<Option<Value>> {
    let Value::Sym(s) = recv else { return Ok(None) };
    let v = match name {
        "to_s" => Value::str(s.clone()),
        "to_sym" => recv.clone(),
        "length" | "size" => Value::Int(s.chars().count() as i64),
        "upcase" => Value::Sym(s.to_uppercase()),
        "downcase" => Value::Sym(s.to_lowercase()),
        _ => return Ok(None),
    };
    Ok(Some(v))
}

fn nil_method(_recv: &Value, name: &str) -> EvalResult<Option<Value>> {
    let v = match name {
        "to_s" => Value::str(""),
        "to_a" => Value::array(vec![]),
        "to_i" => Value::Int(0),
        "nil?" => Value::Bool(true),
        _ => return Ok(None),
    };
    Ok(Some(v))
}

fn lambda_method(
    interp: &Interpreter,
    span: Span,
    closure: &std::rc::Rc<Closure>,
    name: &str,
    args: &[Value],
) -> EvalResult<Option<Value>> {
    match name {
        "call" | "()" | "yield" => Ok(Some(interp.call_closure(closure, args, span)?)),
        "arity" => Ok(Some(Value::Int(closure.params.len() as i64))),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use ruby_syntax::parse_program_strict;

    fn run(src: &str) -> Value {
        let prog = parse_program_strict(src).expect("parse");
        let interp = Interpreter::new(prog);
        interp.eval_program().expect("eval")
    }

    #[test]
    fn array_basics() {
        assert_eq!(run("[1, 2, 3].length()"), Value::Int(3));
        assert_eq!(run("[1, 2, 3].first"), Value::Int(1));
        assert_eq!(run("[1, 2, 3][-1]"), Value::Int(3));
        assert_eq!(run("[1, 2, 3][5]"), Value::Nil);
        assert_eq!(run("[1, 2, 2, 3].uniq().length()"), Value::Int(3));
        assert_eq!(run("[3, 1, 2].sort()"), run("[1, 2, 3]"));
        assert_eq!(run("[[1, [2]], [3]].flatten()"), run("[1, 2, 3]"));
        assert_eq!(run("[1, nil, 2].compact()"), run("[1, 2]"));
        assert_eq!(run("['a', 'b'].join('-')"), Value::str("a-b"));
        assert_eq!(run("[1, 2, 3].include?(2)"), Value::Bool(true));
        assert_eq!(run("[1, 2, 3].sum()"), Value::Int(6));
        assert_eq!(run("[1, 2] + [3]"), run("[1, 2, 3]"));
        assert_eq!(run("[1, 2, 3] - [2]"), run("[1, 3]"));
    }

    #[test]
    fn array_iterators() {
        assert_eq!(run("[1, 2, 3].map { |x| x * 2 }"), run("[2, 4, 6]"));
        assert_eq!(run("[1, 2, 3, 4].select { |x| x.even?() }"), run("[2, 4]"));
        assert_eq!(run("[1, 2, 3, 4].reject { |x| x.even?() }"), run("[1, 3]"));
        assert_eq!(run("[1, 2, 3].find { |x| x > 1 }"), Value::Int(2));
        assert_eq!(run("[1, 2, 3].any? { |x| x > 2 }"), Value::Bool(true));
        assert_eq!(run("[1, 2, 3].all? { |x| x > 0 }"), Value::Bool(true));
        assert_eq!(run("[1, 2, 3].reduce { |a, b| a + b }"), Value::Int(6));
        assert_eq!(
            run("total = 0\n[1, 2, 3].each { |x| total = total + x }\ntotal"),
            Value::Int(6)
        );
        assert_eq!(run("[3, 1, 2].sort_by { |x| 0 - x }"), run("[3, 2, 1]"));
    }

    #[test]
    fn array_mutation() {
        assert_eq!(run("a = [1]\na.push(2)\na.length()"), Value::Int(2));
        assert_eq!(run("a = [1, 'foo']\na[0] = 'one'\na[0]"), Value::str("one"));
        assert_eq!(run("a = [1, 2]\nb = a\nb.push(3)\na.length()"), Value::Int(3));
    }

    #[test]
    fn hash_basics() {
        assert_eq!(run("{ a: 1, b: 2 }[:a]"), Value::Int(1));
        assert_eq!(run("{ a: 1 }[:missing]"), Value::Nil);
        assert_eq!(run("{ a: 1, b: 2 }.keys().length()"), Value::Int(2));
        assert_eq!(run("{ a: 1, b: 2 }.values()"), run("[1, 2]"));
        assert_eq!(run("{ a: 1 }.key?(:a)"), Value::Bool(true));
        assert_eq!(run("{ a: 1 }.merge({ b: 2 })[:b]"), Value::Int(2));
        assert_eq!(run("h = { a: 1 }\nh[:b] = 5\nh[:b]"), Value::Int(5));
        assert_eq!(run("{ a: 1 }.fetch(:a)"), Value::Int(1));
        assert_eq!(run("{ a: 1 }.fetch(:b, 9)"), Value::Int(9));
        assert_eq!(run("{ a: { b: 3 } }.dig(:a, :b)"), Value::Int(3));
        assert_eq!(run("{ a: 1, b: 2 }.map { |k, v| v }"), run("[1, 2]"));
    }

    #[test]
    fn string_basics() {
        assert_eq!(run("'foo' + 'bar'"), Value::str("foobar"));
        assert_eq!(run("'hello'.upcase()"), Value::str("HELLO"));
        assert_eq!(run("'Hello World'.include?('World')"), Value::Bool(true));
        assert_eq!(run("'a,b,c'.split(',').length()"), Value::Int(3));
        assert_eq!(run("'hello'.length()"), Value::Int(5));
        assert_eq!(run("'  x  '.strip()"), Value::str("x"));
        assert_eq!(run("'42'.to_i()"), Value::Int(42));
        assert_eq!(run("'abc'.to_sym()"), Value::Sym("abc".into()));
        assert_eq!(run("'aaa'.gsub('a', 'b')"), Value::str("bbb"));
        assert_eq!(run("'hello'.start_with?('he')"), Value::Bool(true));
        assert_eq!(run("'hello'[1]"), Value::str("e"));
        assert_eq!(run("'hello'[1, 3]"), Value::str("ell"));
    }

    #[test]
    fn numeric_methods() {
        assert_eq!(run("(0 - 5).abs()"), Value::Int(5));
        assert_eq!(run("4.even?()"), Value::Bool(true));
        assert_eq!(run("2 ** 10"), Value::Int(1024));
        assert_eq!(run("7 / 2"), Value::Int(3));
        assert_eq!(run("7.0 / 2"), Value::Float(3.5));
        assert_eq!(run("3.7.floor()"), Value::Int(3));
        assert_eq!(run("total = 0\n3.times { |i| total = total + i }\ntotal"), Value::Int(3));
        assert_eq!(run("1 <=> 2"), Value::Int(-1));
    }

    #[test]
    fn object_protocol() {
        assert_eq!(run("1.is_a?(Integer)"), Value::Bool(true));
        assert_eq!(run("1.is_a?(String)"), Value::Bool(false));
        assert_eq!(run("1.is_a?(Numeric)"), Value::Bool(true));
        assert_eq!(run("nil.nil?()"), Value::Bool(true));
        assert_eq!(run("'x'.nil?()"), Value::Bool(false));
        assert_eq!(run("'x'.class()"), Value::Class("String".into()));
        assert_eq!(run("nil.blank?()"), Value::Bool(true));
        assert_eq!(run("'a'.present?()"), Value::Bool(true));
    }

    #[test]
    fn division_by_zero_raises() {
        let prog = parse_program_strict("1 / 0").unwrap();
        let interp = Interpreter::new(prog);
        assert!(interp.eval_program().is_err());
    }

    #[test]
    fn symbol_and_nil_methods() {
        assert_eq!(run(":abc.to_s()"), Value::str("abc"));
        assert_eq!(run("nil.to_a()"), run("[]"));
        assert_eq!(run("nil.to_s()"), Value::str(""));
    }
}
