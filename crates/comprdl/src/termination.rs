//! Termination and purity checking for type-level code (paper §4, Fig. 6).
//!
//! CompRDL guarantees that type checking terminates by restricting what
//! type-level code (comp-type expressions and their helper methods) may do:
//!
//! * no `while` loops,
//! * calls only to methods whose termination effect is `:+` (always
//!   terminates), or `:blockdep` iterators whose block is pure,
//! * pure methods may not write instance, class or global variables, and may
//!   only call other pure methods,
//! * recursion in type-level code is assumed absent (and cut off at run time
//!   by the evaluator's depth bound).

use rdl_types::{PurityEffect, TermEffect};
use ruby_syntax::{Expr, ExprKind, MethodDef, Span};
use std::collections::HashMap;
use std::fmt;

/// What kind of effect restriction a violation breaks; each kind has its
/// own stable diagnostic code so tooling can filter and count them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A looping construct (`while`) in type-level code → `TERM0001`.
    Loop,
    /// A call to a method not known to terminate → `TERM0002`.
    NonTerminatingCall,
    /// An impure write or impure call where purity is required (including
    /// inside a `:blockdep` iterator's block) → `TERM0003`.
    Impure,
}

impl ViolationKind {
    /// The stable diagnostic code for this violation kind.
    pub fn code(self) -> &'static str {
        match self {
            ViolationKind::Loop => "TERM0001",
            ViolationKind::NonTerminatingCall => "TERM0002",
            ViolationKind::Impure => "TERM0003",
        }
    }
}

/// A termination / purity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectViolation {
    /// Which restriction was broken (determines the diagnostic code).
    pub kind: ViolationKind,
    /// Description of what went wrong.
    pub message: String,
    /// Where the offending expression is.
    pub span: Span,
}

impl EffectViolation {
    /// 1-based source line of the violation.
    pub fn line(&self) -> u32 {
        self.span.line
    }
}

impl fmt::Display for EffectViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.span.line, self.message)
    }
}

impl From<EffectViolation> for diagnostics::Diagnostic {
    fn from(v: EffectViolation) -> Self {
        diagnostics::Diagnostic::error(v.kind.code(), v.message.clone())
            .with_label(v.span, "in type-level code")
            .with_note(
                "type-level computations must provably terminate and be pure (paper \u{a7}4)",
            )
    }
}

/// The effect environment: method name → (termination, purity).
///
/// Effects are looked up by bare method name, mirroring how the paper's
/// annotations attach `terminates:` / `pure:` labels to methods.
#[derive(Debug, Clone, Default)]
pub struct EffectEnv {
    effects: HashMap<String, (TermEffect, PurityEffect)>,
}

impl EffectEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        EffectEnv::default()
    }

    /// An environment pre-populated with the effects of the core library
    /// methods and type-level reflection methods used by the standard
    /// annotations.
    pub fn with_builtins() -> Self {
        let mut env = EffectEnv::new();
        // Pure, terminating reflection / query methods usable in type-level
        // code.
        for m in [
            "is_a?",
            "kind_of?",
            "instance_of?",
            "nil?",
            "==",
            "!=",
            "val",
            "value",
            "elts",
            "entries",
            "params",
            "param",
            "base",
            "value_type",
            "key_type",
            "elem_type",
            "elems",
            "merge",
            "[]",
            "keys",
            "values",
            "first",
            "last",
            "length",
            "size",
            "empty?",
            "include?",
            "key?",
            "has_key?",
            "to_s",
            "to_sym",
            "name",
            "new",
            "union",
            "subtype_of?",
            "canonical",
            "to_type",
            "upcase",
            "downcase",
            "+",
            "-",
            "*",
            "<",
            ">",
            "<=",
            ">=",
            "fetch",
            "dig",
            "freeze",
            "class",
        ] {
            env.set(m, TermEffect::Terminates, PurityEffect::Pure);
        }
        // Iterators terminate iff their block does and is pure.
        for m in [
            "map",
            "each",
            "select",
            "reject",
            "find",
            "detect",
            "collect",
            "all?",
            "any?",
            "none?",
            "reduce",
            "inject",
            "sort_by",
            "group_by",
            "each_pair",
            "each_with_index",
            "times",
            "upto",
        ] {
            env.set(m, TermEffect::BlockDep, PurityEffect::Pure);
        }
        // Mutators are impure (and must not appear inside pure blocks).
        for m in [
            "push", "<<", "pop", "shift", "unshift", "concat", "store", "[]=", "delete", "merge!",
            "update", "gsub!", "sub!", "clear",
        ] {
            env.set(m, TermEffect::Terminates, PurityEffect::Impure);
        }
        env
    }

    /// Sets the effects for a method name.
    pub fn set(&mut self, method: &str, term: TermEffect, purity: PurityEffect) {
        self.effects.insert(method.to_string(), (term, purity));
    }

    /// The termination effect for a method (unknown methods default to
    /// `:-`, may diverge).
    pub fn termination(&self, method: &str) -> TermEffect {
        self.effects.get(method).map(|(t, _)| *t).unwrap_or(TermEffect::MayDiverge)
    }

    /// The purity effect for a method (unknown methods default to impure).
    pub fn purity(&self, method: &str) -> PurityEffect {
        self.effects.get(method).map(|(_, p)| *p).unwrap_or(PurityEffect::Impure)
    }

    /// Number of annotated methods.
    pub fn len(&self) -> usize {
        self.effects.len()
    }

    /// True if no effects are registered.
    pub fn is_empty(&self) -> bool {
        self.effects.is_empty()
    }
}

/// The termination / purity checker.
#[derive(Debug, Clone)]
pub struct TerminationChecker {
    env: EffectEnv,
}

impl TerminationChecker {
    /// Creates a checker over the given effect environment.
    pub fn new(env: EffectEnv) -> Self {
        TerminationChecker { env }
    }

    /// Creates a checker with the builtin effect environment.
    pub fn with_builtins() -> Self {
        TerminationChecker::new(EffectEnv::with_builtins())
    }

    /// A mutable view of the effect environment (to register helper
    /// effects).
    pub fn env_mut(&mut self) -> &mut EffectEnv {
        &mut self.env
    }

    /// Checks that a type-level expression terminates; returns all
    /// violations found.
    pub fn check_expr(&self, expr: &Expr) -> Vec<EffectViolation> {
        let mut out = Vec::new();
        self.walk_termination(expr, &mut out);
        out
    }

    /// Checks a helper method definition: its body must terminate, and if
    /// `require_pure` is set it must also be pure.
    pub fn check_helper(&self, def: &MethodDef, require_pure: bool) -> Vec<EffectViolation> {
        let mut out = Vec::new();
        for e in &def.body {
            self.walk_termination(e, &mut out);
            if require_pure {
                self.walk_purity(e, &mut out);
            }
        }
        out
    }

    /// Checks that a block body is pure (no writes to non-local state and no
    /// impure calls) — the condition under which a `:blockdep` iterator
    /// terminates.
    pub fn check_block_purity(&self, body: &[Expr]) -> Vec<EffectViolation> {
        let mut out = Vec::new();
        for e in body {
            self.walk_purity(e, &mut out);
        }
        out
    }

    fn walk_termination(&self, expr: &Expr, out: &mut Vec<EffectViolation>) {
        expr.walk(&mut |e| match &e.kind {
            ExprKind::While { .. } => out.push(EffectViolation {
                kind: ViolationKind::Loop,
                message: "type-level code may not use looping constructs".to_string(),
                span: e.span,
            }),
            ExprKind::Call { name, block, .. } => match self.env.termination(name) {
                TermEffect::Terminates => {}
                TermEffect::MayDiverge => out.push(EffectViolation {
                    kind: ViolationKind::NonTerminatingCall,
                    message: format!(
                        "call to `{name}`, which is not known to terminate (`terminates: :-`)"
                    ),
                    span: e.span,
                }),
                TermEffect::BlockDep => {
                    if let Some(block) = block {
                        let impurities = self.check_block_purity(&block.body);
                        for v in impurities {
                            out.push(EffectViolation {
                                kind: ViolationKind::Impure,
                                message: format!(
                                    "iterator `{name}` requires a pure block: {}",
                                    v.message
                                ),
                                span: v.span,
                            });
                        }
                    }
                }
            },
            _ => {}
        });
        let _ = expr;
    }

    fn walk_purity(&self, expr: &Expr, out: &mut Vec<EffectViolation>) {
        expr.walk(&mut |e| match &e.kind {
            ExprKind::Assign { target, .. } | ExprKind::OpAssign { target, .. } => match target {
                ruby_syntax::LValue::IVar(name) => out.push(EffectViolation {
                    kind: ViolationKind::Impure,
                    message: format!("writes instance variable @{name}"),
                    span: e.span,
                }),
                ruby_syntax::LValue::GVar(name) => out.push(EffectViolation {
                    kind: ViolationKind::Impure,
                    message: format!("writes global variable ${name}"),
                    span: e.span,
                }),
                ruby_syntax::LValue::Const(name) => out.push(EffectViolation {
                    kind: ViolationKind::Impure,
                    message: format!("writes constant {name}"),
                    span: e.span,
                }),
                ruby_syntax::LValue::Index { .. } | ruby_syntax::LValue::Attr { .. } => {
                    out.push(EffectViolation {
                        kind: ViolationKind::Impure,
                        message: "mutates the receiver of an index/attribute assignment"
                            .to_string(),
                        span: e.span,
                    })
                }
                ruby_syntax::LValue::Local(_) => {}
            },
            ExprKind::Call { name, .. } if self.env.purity(name) == PurityEffect::Impure => {
                out.push(EffectViolation {
                    kind: ViolationKind::Impure,
                    message: format!("calls impure method `{name}`"),
                    span: e.span,
                });
            }
            _ => {}
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_syntax::{parse_expr, parse_program};

    fn checker() -> TerminationChecker {
        let mut c = TerminationChecker::with_builtins();
        // Figure 6 setup: m1/m2 terminate, m3 may diverge.
        c.env_mut().set("m1", TermEffect::Terminates, PurityEffect::Pure);
        c.env_mut().set("m2", TermEffect::Terminates, PurityEffect::Pure);
        c.env_mut().set("m3", TermEffect::MayDiverge, PurityEffect::Impure);
        c
    }

    #[test]
    fn terminating_calls_are_allowed() {
        let c = checker();
        assert!(c.check_expr(&parse_expr("m2()").unwrap()).is_empty());
        assert!(c.check_expr(&parse_expr("m1() == m2()").unwrap()).is_empty());
    }

    #[test]
    fn diverging_calls_are_rejected() {
        let c = checker();
        let violations = c.check_expr(&parse_expr("m3()").unwrap());
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("m3"));
    }

    #[test]
    fn loops_are_rejected() {
        let c = checker();
        let violations = c.check_expr(&parse_expr("while x\n m1()\nend").unwrap());
        assert!(violations.iter().any(|v| v.message.contains("looping")));
    }

    #[test]
    fn blockdep_iterator_with_pure_block_is_allowed() {
        let c = checker();
        let violations = c.check_expr(&parse_expr("array.map { |val| val + 1 }").unwrap());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn blockdep_iterator_with_impure_block_is_rejected() {
        // Figure 6 line 15: `array.map { |val| array.push(4) }` is rejected
        // because the block calls the impure method push.
        let c = checker();
        let violations = c.check_expr(&parse_expr("array.map { |val| array.push(4) }").unwrap());
        assert!(violations.iter().any(|v| v.message.contains("push")), "{violations:?}");
    }

    #[test]
    fn purity_rejects_state_writes() {
        let c = checker();
        let program = parse_program("def helper(t)\n  @cache = t\n  t\nend\n").unwrap();
        let (_, def) = &program.methods()[0];
        let violations = c.check_helper(def, true);
        assert!(violations.iter().any(|v| v.message.contains("@cache")));

        let program = parse_program("def helper(t)\n  $global = t\nend\n").unwrap();
        let (_, def) = &program.methods()[0];
        assert!(!c.check_helper(def, true).is_empty());

        let program = parse_program("def helper(t)\n  local = t\n  local\nend\n").unwrap();
        let (_, def) = &program.methods()[0];
        assert!(c.check_helper(def, true).is_empty());
    }

    #[test]
    fn nested_violations_are_found() {
        let c = checker();
        let e = parse_expr("if m1() then m3() else m2() end").unwrap();
        let violations = c.check_expr(&e);
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn effect_env_defaults() {
        let env = EffectEnv::with_builtins();
        assert_eq!(env.termination("unknown_method"), TermEffect::MayDiverge);
        assert_eq!(env.purity("unknown_method"), PurityEffect::Impure);
        assert_eq!(env.termination("map"), TermEffect::BlockDep);
        assert_eq!(env.purity("push"), PurityEffect::Impure);
        assert!(!env.is_empty());
    }

    /// Each violation kind has its own stable diagnostic code; pin the
    /// code/message pairs so downstream tooling can rely on them.
    #[test]
    fn violation_kinds_map_to_distinct_codes() {
        let c = checker();

        // Loop → TERM0001.
        let vs = c.check_expr(&parse_expr("while x\n m1()\nend").unwrap());
        let v = vs.iter().find(|v| v.kind == ViolationKind::Loop).expect("loop violation");
        assert_eq!(v.message, "type-level code may not use looping constructs");
        let d = diagnostics::Diagnostic::from(v.clone());
        assert_eq!(d.code, "TERM0001");

        // Non-terminating call → TERM0002.
        let vs = c.check_expr(&parse_expr("m3()").unwrap());
        let v = vs
            .iter()
            .find(|v| v.kind == ViolationKind::NonTerminatingCall)
            .expect("diverging-call violation");
        assert_eq!(v.message, "call to `m3`, which is not known to terminate (`terminates: :-`)");
        assert_eq!(diagnostics::Diagnostic::from(v.clone()).code, "TERM0002");

        // Impure write → TERM0003, both directly and wrapped by an iterator.
        let program = parse_program("def helper(t)\n  @cache = t\n  t\nend\n").unwrap();
        let (_, def) = &program.methods()[0];
        let vs = c.check_helper(def, true);
        let v = vs.iter().find(|v| v.kind == ViolationKind::Impure).expect("impure violation");
        assert_eq!(v.message, "writes instance variable @cache");
        assert_eq!(diagnostics::Diagnostic::from(v.clone()).code, "TERM0003");

        let vs = c.check_expr(&parse_expr("array.map { |val| array.push(4) }").unwrap());
        let v = vs.iter().find(|v| v.kind == ViolationKind::Impure).expect("blockdep violation");
        assert_eq!(v.message, "iterator `map` requires a pure block: calls impure method `push`");
        assert_eq!(diagnostics::Diagnostic::from(v.clone()).code, "TERM0003");
    }
}
