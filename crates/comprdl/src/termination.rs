//! Termination and purity checking for type-level code (paper §4, Fig. 6).
//!
//! CompRDL guarantees that type checking terminates by restricting what
//! type-level code (comp-type expressions and their helper methods) may do:
//!
//! * no `while` loops,
//! * calls only to methods whose termination effect is `:+` (always
//!   terminates), or `:blockdep` iterators whose block is pure,
//! * pure methods may not write instance, class or global variables, and may
//!   only call other pure methods,
//! * recursion in type-level code is assumed absent (and cut off at run time
//!   by the evaluator's depth bound).
//!
//! The effect environment has two layers: *explicit* effects (builtins,
//! `terminates:`/`pure:` annotations and registered helpers) and *inferred*
//! effects ([`InferredEffect`] summaries computed interprocedurally by the
//! `analysis` crate and installed via
//! [`EffectEnv::install_inferred`]).  Explicit entries always win; inferred
//! entries fill in for un-annotated methods; names present in neither layer
//! stay pessimistic (`:-` / impure), and their violations say so
//! ("no summary and no annotation for …") instead of reading like a proven
//! divergence.  When an explicit annotation claims a *stronger* effect than
//! the inferred summary, [`annotation_conflicts`] reports a `TERM0004`
//! warning rendering the inferred blame chain.

use rdl_types::{PurityEffect, TermEffect};
use ruby_syntax::{Expr, ExprKind, MethodDef, Span};
use std::collections::HashMap;
use std::fmt;

/// What kind of effect restriction a violation breaks; each kind has its
/// own stable diagnostic code so tooling can filter and count them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A looping construct (`while`) in type-level code → `TERM0001`.
    Loop,
    /// A call to a method not known to terminate → `TERM0002`.
    NonTerminatingCall,
    /// An impure write or impure call where purity is required (including
    /// inside a `:blockdep` iterator's block) → `TERM0003`.
    Impure,
    /// An explicit `terminates:`/`pure:` annotation claims a strictly
    /// stronger effect than the interprocedural summary inferred for the
    /// same method → `TERM0004` (rendered as a warning: the annotation is
    /// trusted, but the disagreement is surfaced with the inferred blame
    /// chain).
    AnnotationConflict,
}

impl ViolationKind {
    /// The stable diagnostic code for this violation kind.
    pub fn code(self) -> &'static str {
        match self {
            ViolationKind::Loop => "TERM0001",
            ViolationKind::NonTerminatingCall => "TERM0002",
            ViolationKind::Impure => "TERM0003",
            ViolationKind::AnnotationConflict => "TERM0004",
        }
    }
}

/// A termination / purity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectViolation {
    /// Which restriction was broken (determines the diagnostic code).
    pub kind: ViolationKind,
    /// Description of what went wrong.
    pub message: String,
    /// Where the offending expression is.
    pub span: Span,
}

impl EffectViolation {
    /// 1-based source line of the violation.
    pub fn line(&self) -> u32 {
        self.span.line
    }
}

impl fmt::Display for EffectViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.span.line, self.message)
    }
}

impl From<EffectViolation> for diagnostics::Diagnostic {
    fn from(v: EffectViolation) -> Self {
        let d = if v.kind == ViolationKind::AnnotationConflict {
            diagnostics::Diagnostic::warning(v.kind.code(), v.message.clone())
                .with_label(v.span, "annotation disagrees with the inferred summary")
                .with_note(
                    "the explicit annotation wins; re-check it or drop it to use the \
                     inferred effect",
                )
        } else {
            diagnostics::Diagnostic::error(v.kind.code(), v.message.clone())
                .with_label(v.span, "in type-level code")
        };
        d.with_note("type-level computations must provably terminate and be pure (paper \u{a7}4)")
    }
}

/// An interprocedurally inferred effect summary for one method name, as
/// produced by the `analysis` crate's call-graph fixpoint and handed to
/// [`EffectEnv::install_inferred`].
///
/// The blame chains start with the method itself and end with the
/// root-cause token (e.g. `["a", "b", "@x="]` renders as
/// `a → b → @x=`); they are empty when the corresponding effect is the
/// good verdict (terminates / pure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferredEffect {
    /// Bare method name the summary applies to (worst-case joined over all
    /// same-named definitions, matching how effects are looked up).
    pub name: String,
    /// Inferred termination effect.
    pub term: TermEffect,
    /// Inferred purity effect.
    pub purity: PurityEffect,
    /// Call chain to the divergence root cause (empty when `term` is not
    /// [`TermEffect::MayDiverge`]).
    pub term_blame: Vec<String>,
    /// Call chain to the impurity root cause (empty when `purity` is
    /// [`PurityEffect::Pure`]).
    pub purity_blame: Vec<String>,
}

/// Renders a blame chain as `a → b → @x=`.
fn render_chain(chain: &[String]) -> String {
    chain.join(" \u{2192} ")
}

/// Where an effect verdict for a name came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectSource {
    /// An explicit entry: builtin, annotation, or registered helper.
    Explicit,
    /// An installed interprocedural summary.
    Inferred,
    /// Neither layer knows the name; the pessimistic default applies.
    Unknown,
}

/// The effect environment: method name → (termination, purity).
///
/// Effects are looked up by bare method name, mirroring how the paper's
/// annotations attach `terminates:` / `pure:` labels to methods.  Lookup
/// precedence is explicit → inferred → pessimistic default.
#[derive(Debug, Clone, Default)]
pub struct EffectEnv {
    effects: HashMap<String, (TermEffect, PurityEffect)>,
    inferred: HashMap<String, InferredEffect>,
}

impl EffectEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        EffectEnv::default()
    }

    /// An environment pre-populated with the effects of the core library
    /// methods and type-level reflection methods used by the standard
    /// annotations.
    pub fn with_builtins() -> Self {
        let mut env = EffectEnv::new();
        // Pure, terminating reflection / query methods usable in type-level
        // code.
        for m in [
            "is_a?",
            "kind_of?",
            "instance_of?",
            "nil?",
            "==",
            "!=",
            "val",
            "value",
            "elts",
            "entries",
            "params",
            "param",
            "base",
            "value_type",
            "key_type",
            "elem_type",
            "elems",
            "merge",
            "[]",
            "keys",
            "values",
            "first",
            "last",
            "length",
            "size",
            "empty?",
            "include?",
            "key?",
            "has_key?",
            "to_s",
            "to_sym",
            "name",
            "new",
            "union",
            "subtype_of?",
            "canonical",
            "to_type",
            "upcase",
            "downcase",
            "+",
            "-",
            "*",
            "<",
            ">",
            "<=",
            ">=",
            "fetch",
            "dig",
            "freeze",
            "class",
        ] {
            env.set(m, TermEffect::Terminates, PurityEffect::Pure);
        }
        // Iterators terminate iff their block does and is pure.
        for m in [
            "map",
            "each",
            "select",
            "reject",
            "find",
            "detect",
            "collect",
            "all?",
            "any?",
            "none?",
            "reduce",
            "inject",
            "sort_by",
            "group_by",
            "each_pair",
            "each_with_index",
            "times",
            "upto",
        ] {
            env.set(m, TermEffect::BlockDep, PurityEffect::Pure);
        }
        // Mutators are impure (and must not appear inside pure blocks).
        for m in [
            "push", "<<", "pop", "shift", "unshift", "concat", "store", "[]=", "delete", "merge!",
            "update", "gsub!", "sub!", "clear",
        ] {
            env.set(m, TermEffect::Terminates, PurityEffect::Impure);
        }
        env
    }

    /// Sets the explicit effects for a method name.
    pub fn set(&mut self, method: &str, term: TermEffect, purity: PurityEffect) {
        self.effects.insert(method.to_string(), (term, purity));
    }

    /// Installs interprocedural effect summaries below the explicit layer.
    /// A duplicate name is joined pessimistically (worse termination /
    /// purity wins, keeping the blame of the entry that forced it).
    pub fn install_inferred(&mut self, effects: impl IntoIterator<Item = InferredEffect>) {
        for e in effects {
            match self.inferred.entry(e.name.clone()) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(e);
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let cur = o.get_mut();
                    if term_rank(e.term) > term_rank(cur.term) {
                        cur.term = e.term;
                        cur.term_blame = e.term_blame;
                    }
                    if cur.purity == PurityEffect::Pure && e.purity == PurityEffect::Impure {
                        cur.purity = PurityEffect::Impure;
                        cur.purity_blame = e.purity_blame;
                    }
                }
            }
        }
    }

    /// The termination effect for a method (explicit wins over inferred;
    /// unknown methods default to `:-`, may diverge).
    pub fn termination(&self, method: &str) -> TermEffect {
        self.effects
            .get(method)
            .map(|(t, _)| *t)
            .or_else(|| self.inferred.get(method).map(|e| e.term))
            .unwrap_or(TermEffect::MayDiverge)
    }

    /// The purity effect for a method (explicit wins over inferred;
    /// unknown methods default to impure).
    pub fn purity(&self, method: &str) -> PurityEffect {
        self.effects
            .get(method)
            .map(|(_, p)| *p)
            .or_else(|| self.inferred.get(method).map(|e| e.purity))
            .unwrap_or(PurityEffect::Impure)
    }

    /// Where the verdict for `method` comes from.
    pub fn source(&self, method: &str) -> EffectSource {
        if self.effects.contains_key(method) {
            EffectSource::Explicit
        } else if self.inferred.contains_key(method) {
            EffectSource::Inferred
        } else {
            EffectSource::Unknown
        }
    }

    /// True if either layer has an entry for `method` (a violation on an
    /// unknown name is worded differently — see module docs).
    pub fn knows(&self, method: &str) -> bool {
        self.source(method) != EffectSource::Unknown
    }

    /// The installed inferred summary for `method`, if any (the explicit
    /// layer may still shadow it for lookups).
    pub fn inferred(&self, method: &str) -> Option<&InferredEffect> {
        self.inferred.get(method)
    }

    /// Iterates the explicit entries (builtins, annotations, helpers) —
    /// used to seed the `analysis` crate's summary inference so both sides
    /// agree on the base environment.
    pub fn explicit_effects(&self) -> impl Iterator<Item = (&str, TermEffect, PurityEffect)> {
        self.effects.iter().map(|(n, (t, p))| (n.as_str(), *t, *p))
    }

    /// Number of explicitly annotated methods.
    pub fn len(&self) -> usize {
        self.effects.len()
    }

    /// Number of installed inferred summaries.
    pub fn inferred_len(&self) -> usize {
        self.inferred.len()
    }

    /// True if no explicit effects are registered.
    pub fn is_empty(&self) -> bool {
        self.effects.is_empty()
    }
}

/// Pessimism order for the join in [`EffectEnv::install_inferred`].
fn term_rank(t: TermEffect) -> u8 {
    match t {
        TermEffect::Terminates => 0,
        TermEffect::BlockDep => 1,
        TermEffect::MayDiverge => 2,
    }
}

/// Compares an explicit `terminates:`/`pure:` annotation against the
/// inferred summary for the same method and returns `TERM0004` violations
/// when the annotation claims a strictly stronger effect than inference
/// could establish (annotated `:+` but inferred `:-` / annotated pure but
/// inferred impure).  The messages render the inferred blame chain, e.g.
/// `inferred impure via a → b → @x=`.
pub fn annotation_conflicts(
    name: &str,
    claimed_term: TermEffect,
    claimed_purity: PurityEffect,
    inferred: &InferredEffect,
    span: Span,
) -> Vec<EffectViolation> {
    let mut out = Vec::new();
    if claimed_term != TermEffect::MayDiverge && inferred.term == TermEffect::MayDiverge {
        let claim = if claimed_term == TermEffect::Terminates { ":+" } else { ":blockdep" };
        out.push(EffectViolation {
            kind: ViolationKind::AnnotationConflict,
            message: format!(
                "`{name}` is annotated `terminates: {claim}` but inferred non-terminating \
                 via {}",
                render_chain(&inferred.term_blame)
            ),
            span,
        });
    }
    if claimed_purity == PurityEffect::Pure && inferred.purity == PurityEffect::Impure {
        out.push(EffectViolation {
            kind: ViolationKind::AnnotationConflict,
            message: format!(
                "`{name}` is annotated `pure: :+` but inferred impure via {}",
                render_chain(&inferred.purity_blame)
            ),
            span,
        });
    }
    out
}

/// The termination / purity checker.
#[derive(Debug, Clone)]
pub struct TerminationChecker {
    env: EffectEnv,
}

impl TerminationChecker {
    /// Creates a checker over the given effect environment.
    pub fn new(env: EffectEnv) -> Self {
        TerminationChecker { env }
    }

    /// Creates a checker with the builtin effect environment.
    pub fn with_builtins() -> Self {
        TerminationChecker::new(EffectEnv::with_builtins())
    }

    /// A mutable view of the effect environment (to register helper
    /// effects).
    pub fn env_mut(&mut self) -> &mut EffectEnv {
        &mut self.env
    }

    /// Checks that a type-level expression terminates; returns all
    /// violations found.
    pub fn check_expr(&self, expr: &Expr) -> Vec<EffectViolation> {
        let mut out = Vec::new();
        self.walk_termination(expr, &mut out);
        out
    }

    /// Checks a helper method definition: its body must terminate, and if
    /// `require_pure` is set it must also be pure.
    pub fn check_helper(&self, def: &MethodDef, require_pure: bool) -> Vec<EffectViolation> {
        let mut out = Vec::new();
        for e in &def.body {
            self.walk_termination(e, &mut out);
            if require_pure {
                self.walk_purity(e, &mut out);
            }
        }
        out
    }

    /// Checks that a block body is pure (no writes to non-local state and no
    /// impure calls) — the condition under which a `:blockdep` iterator
    /// terminates.
    pub fn check_block_purity(&self, body: &[Expr]) -> Vec<EffectViolation> {
        let mut out = Vec::new();
        for e in body {
            self.walk_purity(e, &mut out);
        }
        out
    }

    fn walk_termination(&self, expr: &Expr, out: &mut Vec<EffectViolation>) {
        expr.walk(&mut |e| match &e.kind {
            ExprKind::While { .. } => out.push(EffectViolation {
                kind: ViolationKind::Loop,
                message: "type-level code may not use looping constructs".to_string(),
                span: e.span,
            }),
            ExprKind::Call { name, block, .. } => match self.env.termination(name) {
                TermEffect::Terminates => {}
                TermEffect::MayDiverge => {
                    let message = match self.env.source(name) {
                        EffectSource::Unknown => format!(
                            "no summary and no annotation for `{name}`; the call is assumed \
                             non-terminating"
                        ),
                        EffectSource::Inferred => {
                            let chain = self
                                .env
                                .inferred(name)
                                .map(|i| render_chain(&i.term_blame))
                                .unwrap_or_default();
                            format!("call to `{name}`, inferred non-terminating via {chain}")
                        }
                        EffectSource::Explicit => format!(
                            "call to `{name}`, which is not known to terminate (`terminates: :-`)"
                        ),
                    };
                    out.push(EffectViolation {
                        kind: ViolationKind::NonTerminatingCall,
                        message,
                        span: e.span,
                    })
                }
                TermEffect::BlockDep => {
                    if let Some(block) = block {
                        let impurities = self.check_block_purity(&block.body);
                        for v in impurities {
                            out.push(EffectViolation {
                                kind: ViolationKind::Impure,
                                message: format!(
                                    "iterator `{name}` requires a pure block: {}",
                                    v.message
                                ),
                                span: v.span,
                            });
                        }
                    }
                }
            },
            _ => {}
        });
        let _ = expr;
    }

    fn walk_purity(&self, expr: &Expr, out: &mut Vec<EffectViolation>) {
        expr.walk(&mut |e| match &e.kind {
            ExprKind::Assign { target, .. } | ExprKind::OpAssign { target, .. } => match target {
                ruby_syntax::LValue::IVar(name) => out.push(EffectViolation {
                    kind: ViolationKind::Impure,
                    message: format!("writes instance variable @{name}"),
                    span: e.span,
                }),
                ruby_syntax::LValue::GVar(name) => out.push(EffectViolation {
                    kind: ViolationKind::Impure,
                    message: format!("writes global variable ${name}"),
                    span: e.span,
                }),
                ruby_syntax::LValue::Const(name) => out.push(EffectViolation {
                    kind: ViolationKind::Impure,
                    message: format!("writes constant {name}"),
                    span: e.span,
                }),
                ruby_syntax::LValue::Index { .. } | ruby_syntax::LValue::Attr { .. } => {
                    out.push(EffectViolation {
                        kind: ViolationKind::Impure,
                        message: "mutates the receiver of an index/attribute assignment"
                            .to_string(),
                        span: e.span,
                    })
                }
                ruby_syntax::LValue::Local(_) => {}
            },
            ExprKind::Call { name, .. } if self.env.purity(name) == PurityEffect::Impure => {
                let message = match self.env.source(name) {
                    EffectSource::Unknown => format!(
                        "no summary and no annotation for `{name}`; the call is assumed impure"
                    ),
                    EffectSource::Inferred => {
                        let chain = self
                            .env
                            .inferred(name)
                            .map(|i| render_chain(&i.purity_blame))
                            .unwrap_or_default();
                        format!("calls `{name}`, inferred impure via {chain}")
                    }
                    EffectSource::Explicit => format!("calls impure method `{name}`"),
                };
                out.push(EffectViolation { kind: ViolationKind::Impure, message, span: e.span });
            }
            _ => {}
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_syntax::{parse_expr, parse_program_strict};

    fn checker() -> TerminationChecker {
        let mut c = TerminationChecker::with_builtins();
        // Figure 6 setup: m1/m2 terminate, m3 may diverge.
        c.env_mut().set("m1", TermEffect::Terminates, PurityEffect::Pure);
        c.env_mut().set("m2", TermEffect::Terminates, PurityEffect::Pure);
        c.env_mut().set("m3", TermEffect::MayDiverge, PurityEffect::Impure);
        c
    }

    #[test]
    fn terminating_calls_are_allowed() {
        let c = checker();
        assert!(c.check_expr(&parse_expr("m2()").unwrap()).is_empty());
        assert!(c.check_expr(&parse_expr("m1() == m2()").unwrap()).is_empty());
    }

    #[test]
    fn diverging_calls_are_rejected() {
        let c = checker();
        let violations = c.check_expr(&parse_expr("m3()").unwrap());
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("m3"));
    }

    #[test]
    fn loops_are_rejected() {
        let c = checker();
        let violations = c.check_expr(&parse_expr("while x\n m1()\nend").unwrap());
        assert!(violations.iter().any(|v| v.message.contains("looping")));
    }

    #[test]
    fn blockdep_iterator_with_pure_block_is_allowed() {
        let c = checker();
        let violations = c.check_expr(&parse_expr("array.map { |val| val + 1 }").unwrap());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn blockdep_iterator_with_impure_block_is_rejected() {
        // Figure 6 line 15: `array.map { |val| array.push(4) }` is rejected
        // because the block calls the impure method push.
        let c = checker();
        let violations = c.check_expr(&parse_expr("array.map { |val| array.push(4) }").unwrap());
        assert!(violations.iter().any(|v| v.message.contains("push")), "{violations:?}");
    }

    #[test]
    fn purity_rejects_state_writes() {
        let c = checker();
        let program = parse_program_strict("def helper(t)\n  @cache = t\n  t\nend\n").unwrap();
        let (_, def) = &program.methods()[0];
        let violations = c.check_helper(def, true);
        assert!(violations.iter().any(|v| v.message.contains("@cache")));

        let program = parse_program_strict("def helper(t)\n  $global = t\nend\n").unwrap();
        let (_, def) = &program.methods()[0];
        assert!(!c.check_helper(def, true).is_empty());

        let program = parse_program_strict("def helper(t)\n  local = t\n  local\nend\n").unwrap();
        let (_, def) = &program.methods()[0];
        assert!(c.check_helper(def, true).is_empty());
    }

    #[test]
    fn nested_violations_are_found() {
        let c = checker();
        let e = parse_expr("if m1() then m3() else m2() end").unwrap();
        let violations = c.check_expr(&e);
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn effect_env_defaults() {
        let env = EffectEnv::with_builtins();
        assert_eq!(env.termination("unknown_method"), TermEffect::MayDiverge);
        assert_eq!(env.purity("unknown_method"), PurityEffect::Impure);
        assert_eq!(env.termination("map"), TermEffect::BlockDep);
        assert_eq!(env.purity("push"), PurityEffect::Impure);
        assert!(!env.is_empty());
    }

    /// Each violation kind has its own stable diagnostic code; pin the
    /// code/message pairs so downstream tooling can rely on them.
    #[test]
    fn violation_kinds_map_to_distinct_codes() {
        let c = checker();

        // Loop → TERM0001.
        let vs = c.check_expr(&parse_expr("while x\n m1()\nend").unwrap());
        let v = vs.iter().find(|v| v.kind == ViolationKind::Loop).expect("loop violation");
        assert_eq!(v.message, "type-level code may not use looping constructs");
        let d = diagnostics::Diagnostic::from(v.clone());
        assert_eq!(d.code, "TERM0001");

        // Non-terminating call → TERM0002.
        let vs = c.check_expr(&parse_expr("m3()").unwrap());
        let v = vs
            .iter()
            .find(|v| v.kind == ViolationKind::NonTerminatingCall)
            .expect("diverging-call violation");
        assert_eq!(v.message, "call to `m3`, which is not known to terminate (`terminates: :-`)");
        assert_eq!(diagnostics::Diagnostic::from(v.clone()).code, "TERM0002");

        // Impure write → TERM0003, both directly and wrapped by an iterator.
        let program = parse_program_strict("def helper(t)\n  @cache = t\n  t\nend\n").unwrap();
        let (_, def) = &program.methods()[0];
        let vs = c.check_helper(def, true);
        let v = vs.iter().find(|v| v.kind == ViolationKind::Impure).expect("impure violation");
        assert_eq!(v.message, "writes instance variable @cache");
        assert_eq!(diagnostics::Diagnostic::from(v.clone()).code, "TERM0003");

        let vs = c.check_expr(&parse_expr("array.map { |val| array.push(4) }").unwrap());
        let v = vs.iter().find(|v| v.kind == ViolationKind::Impure).expect("blockdep violation");
        assert_eq!(v.message, "iterator `map` requires a pure block: calls impure method `push`");
        assert_eq!(diagnostics::Diagnostic::from(v.clone()).code, "TERM0003");
    }

    /// Satellite: a violation on a name *neither* annotated nor summarized
    /// must say so, instead of reading identically to a proven violation.
    #[test]
    fn unknown_callees_say_there_is_no_summary_or_annotation() {
        let c = checker();

        let vs = c.check_expr(&parse_expr("mystery()").unwrap());
        assert_eq!(vs.len(), 1);
        assert_eq!(
            vs[0].message,
            "no summary and no annotation for `mystery`; the call is assumed non-terminating"
        );
        assert_eq!(vs[0].kind, ViolationKind::NonTerminatingCall);

        let vs = c.check_block_purity(&[parse_expr("mystery()").unwrap()]);
        assert_eq!(vs.len(), 1);
        assert_eq!(
            vs[0].message,
            "no summary and no annotation for `mystery`; the call is assumed impure"
        );
        assert_eq!(vs[0].kind, ViolationKind::Impure);

        // An explicitly annotated non-terminating method keeps the original
        // wording — the split is only for unknown names.
        let vs = c.check_expr(&parse_expr("m3()").unwrap());
        assert_eq!(
            vs[0].message,
            "call to `m3`, which is not known to terminate (`terminates: :-`)"
        );
    }

    /// Inferred summaries fill in below explicit annotations: a summarized
    /// helper becomes callable without an annotation, a bad summary renders
    /// its blame chain, and an explicit entry still shadows the summary.
    #[test]
    fn inferred_effects_fill_in_below_explicit_annotations() {
        let mut c = checker();
        c.env_mut().install_inferred([
            InferredEffect {
                name: "summed_helper".into(),
                term: TermEffect::Terminates,
                purity: PurityEffect::Pure,
                term_blame: Vec::new(),
                purity_blame: Vec::new(),
            },
            InferredEffect {
                name: "writer".into(),
                term: TermEffect::Terminates,
                purity: PurityEffect::Impure,
                term_blame: Vec::new(),
                purity_blame: vec!["writer".into(), "@x=".into()],
            },
            InferredEffect {
                name: "spinner".into(),
                term: TermEffect::MayDiverge,
                purity: PurityEffect::Pure,
                term_blame: vec!["spinner".into(), "while loop".into()],
                purity_blame: Vec::new(),
            },
            // The explicit layer says m3 diverges; this optimistic summary
            // must NOT override it.
            InferredEffect {
                name: "m3".into(),
                term: TermEffect::Terminates,
                purity: PurityEffect::Pure,
                term_blame: Vec::new(),
                purity_blame: Vec::new(),
            },
        ]);

        assert!(c.check_expr(&parse_expr("summed_helper()").unwrap()).is_empty());
        assert_eq!(c.env_mut().source("summed_helper"), EffectSource::Inferred);

        let vs = c.check_expr(&parse_expr("spinner()").unwrap());
        assert_eq!(
            vs[0].message,
            "call to `spinner`, inferred non-terminating via spinner \u{2192} while loop"
        );

        let vs = c.check_block_purity(&[parse_expr("writer()").unwrap()]);
        assert_eq!(vs[0].message, "calls `writer`, inferred impure via writer \u{2192} @x=");

        // Explicit wins: m3 still diverges despite the optimistic summary.
        let vs = c.check_expr(&parse_expr("m3()").unwrap());
        assert_eq!(vs.len(), 1);
        assert_eq!(
            vs[0].message,
            "call to `m3`, which is not known to terminate (`terminates: :-`)"
        );
    }

    /// Duplicate installs join pessimistically, keeping the forcing blame.
    #[test]
    fn duplicate_inferred_installs_join_worst_case() {
        let mut env = EffectEnv::new();
        env.install_inferred([
            InferredEffect {
                name: "h".into(),
                term: TermEffect::Terminates,
                purity: PurityEffect::Pure,
                term_blame: Vec::new(),
                purity_blame: Vec::new(),
            },
            InferredEffect {
                name: "h".into(),
                term: TermEffect::MayDiverge,
                purity: PurityEffect::Impure,
                term_blame: vec!["h".into(), "while loop".into()],
                purity_blame: vec!["h".into(), "$g=".into()],
            },
        ]);
        assert_eq!(env.termination("h"), TermEffect::MayDiverge);
        assert_eq!(env.purity("h"), PurityEffect::Impure);
        let i = env.inferred("h").unwrap();
        assert_eq!(i.term_blame, vec!["h".to_string(), "while loop".to_string()]);
        assert_eq!(i.purity_blame, vec!["h".to_string(), "$g=".to_string()]);
        assert_eq!(env.inferred_len(), 1);
    }

    /// TERM0004: an annotation claiming a strictly stronger effect than the
    /// inferred summary is surfaced as a *warning* with the inferred chain.
    #[test]
    fn annotation_conflicts_render_the_inferred_chain_as_term0004_warnings() {
        let inferred = InferredEffect {
            name: "a".into(),
            term: TermEffect::MayDiverge,
            purity: PurityEffect::Impure,
            term_blame: vec!["a".into(), "b".into(), "while loop".into()],
            purity_blame: vec!["a".into(), "b".into(), "@x=".into()],
        };
        let span = Span::new(0, 1, 1);
        let vs =
            annotation_conflicts("a", TermEffect::Terminates, PurityEffect::Pure, &inferred, span);
        assert_eq!(vs.len(), 2);
        assert_eq!(
            vs[0].message,
            "`a` is annotated `terminates: :+` but inferred non-terminating via a \u{2192} b \
             \u{2192} while loop"
        );
        assert_eq!(
            vs[1].message,
            "`a` is annotated `pure: :+` but inferred impure via a \u{2192} b \u{2192} @x="
        );
        for v in &vs {
            assert_eq!(v.kind, ViolationKind::AnnotationConflict);
            let d = diagnostics::Diagnostic::from(v.clone());
            assert_eq!(d.code, "TERM0004");
            assert_eq!(d.severity, diagnostics::Severity::Warning);
        }

        // Agreement (or an annotation weaker than inference) is silent.
        let good = InferredEffect {
            name: "a".into(),
            term: TermEffect::Terminates,
            purity: PurityEffect::Pure,
            term_blame: Vec::new(),
            purity_blame: Vec::new(),
        };
        assert!(annotation_conflicts("a", TermEffect::Terminates, PurityEffect::Pure, &good, span)
            .is_empty());
        assert!(annotation_conflicts(
            "a",
            TermEffect::MayDiverge,
            PurityEffect::Impure,
            &inferred,
            span
        )
        .is_empty());
    }
}
